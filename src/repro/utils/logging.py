"""Minimal logging setup shared across the library.

Library code never configures the root logger; it only creates namespaced
children under ``repro``.  ``configure()`` is an opt-in convenience for the
examples and benchmark harness.
"""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("attacks.binarized")`` → logger ``repro.attacks.binarized``.
    Passing a name already rooted at ``repro`` keeps it unchanged.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(level: int = logging.INFO, stream=None) -> None:
    """Attach a stream handler to the ``repro`` logger (idempotent)."""
    global _configured
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if _configured:
        return
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    logger.addHandler(handler)
    _configured = True

"""Input validation shared by the graph, oddball and attack layers.

All validators raise ``ValueError``/``TypeError`` with actionable messages;
they return the validated (possibly dtype-normalised) object so call sites can
chain them.
"""

from __future__ import annotations

import numpy as np


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Require a 2-D square array."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square 2-D, got shape {matrix.shape}")
    return matrix


def check_symmetric(matrix: np.ndarray, name: str = "matrix", *, atol: float = 1e-8) -> np.ndarray:
    """Require a symmetric square array."""
    matrix = check_square(matrix, name)
    if not np.allclose(matrix, matrix.T, atol=atol):
        raise ValueError(f"{name} must be symmetric")
    return matrix


def check_adjacency(matrix: np.ndarray, name: str = "adjacency") -> np.ndarray:
    """Validate a simple-graph adjacency matrix.

    Requirements: square, symmetric, binary entries, zero diagonal.  Returns
    the matrix as ``float64`` (the dtype used throughout the library so the
    same arrays feed numpy linear algebra and the autograd engine).
    """
    matrix = check_symmetric(np.asarray(matrix, dtype=np.float64), name)
    if matrix.size and not np.all((matrix == 0.0) | (matrix == 1.0)):
        bad = matrix[(matrix != 0.0) & (matrix != 1.0)]
        raise ValueError(f"{name} must be binary; found values like {bad.flat[0]!r}")
    if matrix.size and np.any(np.diagonal(matrix) != 0.0):
        raise ValueError(f"{name} must have a zero diagonal (no self-loops)")
    return matrix


def check_budget(budget: int, name: str = "budget") -> int:
    """Require a non-negative integer edge budget."""
    if not isinstance(budget, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(budget).__name__}")
    if budget < 0:
        raise ValueError(f"{name} must be non-negative, got {budget}")
    return int(budget)


def check_probability(p: float, name: str = "probability") -> float:
    """Require a float in [0, 1]."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {p}")
    return p

"""Shared utilities: RNG management, logging, timing, serialization, validation.

These helpers are deliberately dependency-free (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators
from repro.utils.serialization import load_json, load_npz, save_json, save_npz
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_adjacency,
    check_budget,
    check_probability,
    check_square,
    check_symmetric,
)

__all__ = [
    "SeedSequenceFactory",
    "Timer",
    "as_generator",
    "check_adjacency",
    "check_budget",
    "check_probability",
    "check_square",
    "check_symmetric",
    "get_logger",
    "load_json",
    "load_npz",
    "save_json",
    "save_npz",
    "spawn_generators",
    "timed",
]

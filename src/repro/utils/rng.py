"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps
experiments reproducible: a single root seed deterministically fans out into
independent streams for dataset generation, target sampling, attack
initialisation and model training.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(rng: "int | np.random.Generator | np.random.SeedSequence | None") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator; an ``int`` or
    :class:`numpy.random.SeedSequence` produces a deterministic one; an
    existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_generators(rng: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(rng)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class SeedSequenceFactory:
    """Named, reproducible seed streams derived from one root seed.

    The same ``(root_seed, name)`` pair always yields the same generator, no
    matter in which order streams are requested.  Experiment drivers use this
    to keep e.g. graph generation stable while varying attack seeds.

    Example
    -------
    >>> factory = SeedSequenceFactory(7)
    >>> g1 = factory.generator("dataset")
    >>> g2 = SeedSequenceFactory(7).generator("dataset")
    >>> int(g1.integers(1 << 30)) == int(g2.integers(1 << 30))
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def _seed_for(self, name: str) -> np.random.SeedSequence:
        # Stable hash: python's hash() is salted per-process, so fold the
        # name's bytes into the entropy explicitly.
        name_entropy = list(name.encode("utf-8"))
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=tuple(name_entropy))

    def generator(self, name: str) -> np.random.Generator:
        """Return the deterministic generator for stream ``name``."""
        return np.random.default_rng(self._seed_for(name))

    def seed(self, name: str) -> int:
        """Return a deterministic 63-bit integer seed for stream ``name``."""
        return int(self.generator(name).integers(0, 2**63 - 1))

    def generators(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dict of generators, one per name."""
        return {name: self.generator(name) for name in names}

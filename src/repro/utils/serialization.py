"""Serialization helpers for experiment artefacts.

Experiment drivers persist their numeric series (the rows of each paper table
and the x/y pairs of each figure) as JSON, and heavyweight arrays (adjacency
matrices, embeddings) as ``.npz``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(path: "str | Path", payload: Any, *, indent: int = 2) -> Path:
    """Write ``payload`` as JSON, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=indent, cls=_NumpyEncoder) + "\n")
    return path


def load_json(path: "str | Path") -> Any:
    """Read JSON written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_npz(path: "str | Path", arrays: Mapping[str, np.ndarray]) -> Path:
    """Write named arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in arrays.items()})
    return path


def load_npz(path: "str | Path") -> dict[str, np.ndarray]:
    """Read a ``.npz`` archive into a plain dict of arrays."""
    with np.load(Path(path)) as data:
        return {k: data[k] for k in data.files}

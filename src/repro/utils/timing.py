"""Wall-clock timing helpers used by the experiment drivers."""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from repro.utils.logging import get_logger

T = TypeVar("T")
_log = get_logger("utils.timing")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self, label: str = ""):
        self.label = label
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start
        if self.label:
            _log.debug("%s took %.3fs", self.label, self.elapsed)


def timed(fn: Callable[..., T]) -> Callable[..., T]:
    """Decorator logging the wall-clock duration of each call at DEBUG."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with Timer(fn.__qualname__):
            return fn(*args, **kwargs)

    return wrapper

"""Wall-clock timing helpers used by the experiment drivers.

When :mod:`repro.telemetry` is active, every labelled :class:`Timer`
additionally lands in the trace as a span (recorded at exit through
:meth:`~repro.telemetry.Tracer.record_span`, parented to whatever span
is open on the calling thread); otherwise the behaviour is unchanged —
one DEBUG log line per labelled timer.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from repro.utils.logging import get_logger

T = TypeVar("T")
_log = get_logger("utils.timing")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self, label: str = ""):
        self.label = label
        self.start = 0.0
        self.elapsed = 0.0
        self._start_ns = 0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        end_ns = time.perf_counter_ns()
        self.elapsed = time.perf_counter() - self.start
        if self.label:
            _log.debug("%s took %.3fs", self.label, self.elapsed)
            # Imported lazily: repro.telemetry depends on repro.utils, so a
            # module-level import here would be circular.
            from repro import telemetry

            tracer = telemetry.active_tracer()
            if tracer is not None:
                tracer.record_span(
                    self.label, self._start_ns, end_ns - self._start_ns
                )


def timed(fn: Callable[..., T]) -> Callable[..., T]:
    """Decorator logging (and, when telemetry is on, tracing) each call."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with Timer(fn.__qualname__):
            return fn(*args, **kwargs)

    return wrapper

"""repro.store — the out-of-core, memory-mapped graph storage layer.

Persists paper-scale graphs as read-only memory-mapped CSR arrays under a
content-addressed cache directory (:class:`GraphStore`), builds them with
streaming edge-chunk generators that never materialise a dense adjacency
(:func:`build_store`), and plugs them into the engine/campaign/executor
stack: ``to_sparse`` accepts stores zero-copy, ``EngineSpec`` ships a
``store``-kind payload (a path, not a graph) to parallel workers, and
``load_dataset`` resolves ``*-full`` names through
:func:`load_store_dataset`.

CLI::

    python -m repro.store build blogcatalog-full
    python -m repro.store info blogcatalog-full
    python -m repro.store campaign blogcatalog-full --budget 5 --workers 4
    python -m repro.store recipe-hash blogcatalog-full --scale 0.02

See ``docs/ARCHITECTURE.md`` §"Storage layer" for the manifest schema, the
mmap layout and the Δ-overlay invariant.
"""

from repro.store.builder import (
    DEFAULT_CHUNK_EDGES,
    STORE_RECIPES,
    build_store,
    default_cache_dir,
    store_recipe,
)
from repro.store.datasets import STORE_DATASET_NAMES, load_store_dataset
from repro.store.fingerprints import (
    ALIAS_TABLE_NAME,
    alias_fingerprints,
    alias_table_path,
    record_alias_group,
)
from repro.store.graphstore import GraphStore, MANIFEST_VERSION, recipe_hash

__all__ = [
    "ALIAS_TABLE_NAME",
    "DEFAULT_CHUNK_EDGES",
    "GraphStore",
    "MANIFEST_VERSION",
    "STORE_DATASET_NAMES",
    "STORE_RECIPES",
    "alias_fingerprints",
    "alias_table_path",
    "build_store",
    "default_cache_dir",
    "load_store_dataset",
    "record_alias_group",
    "recipe_hash",
    "store_recipe",
]

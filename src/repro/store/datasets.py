"""Paper-scale dataset names backed by graph stores.

The in-memory registry (:mod:`repro.graph.datasets`) tops out around 1000
nodes because :class:`~repro.graph.graph.Graph` is dense.  The names here —
``<table-I-name>-full`` — resolve to :class:`~repro.store.GraphStore`-backed
datasets built (once, then cached content-addressed) by the streaming
builder, so ``load_dataset("blogcatalog-full")`` hands back the paper's
88.8k-node scale without ever allocating a dense adjacency.
"""

from __future__ import annotations

from pathlib import Path

from repro.store.builder import build_store

__all__ = ["STORE_DATASET_NAMES", "load_store_dataset"]

#: ``load_dataset``-recognised store-backed names.  All five Table I graphs
#: get a ``-full`` variant; only Blogcatalog's differs in size from its
#: sampled counterpart in the paper (the others are included for symmetric
#: ``--scale`` sweeps).
STORE_DATASET_NAMES = (
    "er-full",
    "ba-full",
    "blogcatalog-full",
    "wikivote-full",
    "bitcoin-alpha-full",
)

#: The one genuinely paper-full recipe; the other ``-full`` names reuse the
#: Table I recipe scaled up by this factor (the paper samples ~1k nodes
#: from graphs 10–90× larger; 10× keeps the non-Blogcatalog variants
#: buildable in seconds while still being out-of-core-sized).
_FULL_SCALE_FACTOR = 10.0


def _recipe_name_and_scale(key: str, scale: float) -> tuple[str, float]:
    """Map a ``*-full`` dataset name onto a builder recipe + total scale."""
    base = key[: -len("-full")]
    if key == "blogcatalog-full":
        # Dedicated full-size recipe (88.8k nodes, ~2.1M edges).
        return key, scale
    return base, scale * _FULL_SCALE_FACTOR


def load_store_dataset(
    name: str,
    *,
    seed: int = 0,
    scale: float = 1.0,
    cache_dir: "str | Path | None" = None,
):
    """Build/open the store for a ``*-full`` name; return a ``Dataset``.

    The returned :class:`~repro.graph.datasets.Dataset` carries the
    :class:`GraphStore` itself in its ``graph`` slot (the store quacks like
    a graph everywhere the sparse pipeline looks), with the planted-anomaly
    ground truth recovered from the manifest.  ``seed`` must be an integer:
    the build is content-addressed, so the randomness source has to be part
    of the hashable recipe.
    """
    from repro.graph.datasets import Dataset

    key = name.lower().replace("_", "-")
    if key not in STORE_DATASET_NAMES:
        raise KeyError(
            f"unknown store dataset {name!r}; choose from {sorted(STORE_DATASET_NAMES)}"
        )
    recipe_name, total_scale = _recipe_name_and_scale(key, scale)
    store = build_store(
        recipe_name, cache_dir=cache_dir, scale=total_scale, seed=int(seed)
    )
    return Dataset(name=key, graph=store, planted=dict(store.planted))

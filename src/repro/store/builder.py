"""Streaming builders for paper-scale graph stores.

The in-memory generators (:mod:`repro.graph.generators`) allocate a dense
``n × n`` adjacency — 63 GB at Blogcatalog's full 88.8k nodes — so
paper-scale stand-ins need a different construction: edges are *sampled in
chunks*, canonicalised and deduplicated as integer pair keys, and only the
final CSR component arrays (O(m) memory, never O(n²)) are written into the
store's memory-mapped files.

Two edge-sampling families cover the Table I recipes:

``uniform``
    Chunked G(n, M)-style sampling — endpoints uniform over nodes — the
    streaming analogue of the ``er`` generator.
``chung_lu``
    Endpoints drawn proportional to per-node weights ``w_i ∝ (i + i0)^-α``
    (one inverse-CDF ``searchsorted`` per chunk), producing the heavy-tailed
    degree profile the ``ba`` generator and the real-dataset stand-ins need
    at a fraction of the cost of sequential preferential attachment.

Real-dataset stand-ins additionally plant the near-clique / near-star
egonets OddBall flags (same shapes as
:func:`repro.graph.anomaly.plant_anomalies`, built as explicit edge-key
chunks) and record the ground truth in the manifest.

Builds are **deterministic in the recipe**: the same
``(name, nodes, edges, seed, chunk_edges, …)`` always reproduces the same
byte-identical arrays, which is what makes the content-addressed cache
directory (``<name>-<recipe_hash[:12]>``) sound.  ``chunk_edges`` is part
of the recipe because it shapes the RNG draw sequence.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

import numpy as np

from repro import telemetry as _telemetry
from repro.store.graphstore import (
    _DATA_DTYPE,
    MANIFEST_VERSION,
    GraphStore,
    index_dtype,
    recipe_hash,
)
from repro.utils.logging import get_logger

__all__ = [
    "DEFAULT_CHUNK_EDGES",
    "STORE_RECIPES",
    "build_store",
    "default_cache_dir",
    "store_recipe",
]

_log = get_logger("store.builder")

#: Edge keys sampled per RNG chunk; part of the recipe (it shapes the draws).
DEFAULT_CHUNK_EDGES = 262_144

#: Environment variable overriding the default store cache directory.
CACHE_ENV = "REPRO_STORE_CACHE"

#: Paper-scale recipes: Table I's five graphs (streamed, buildable at any
#: ``scale``) plus the full-size Blogcatalog stand-in the paper attacks.
#: ``anomalies`` uses *absolute* shape sizes (clique size, star leaves) with
#: *fractional* counts, so scaling the graph scales how many anomalies are
#: planted but keeps each one paper-shaped.
STORE_RECIPES: dict[str, dict] = {
    "er": dict(nodes=1000, edges=9948, family="uniform"),
    "ba": dict(nodes=1000, edges=4975, family="chung_lu", alpha=0.85),
    "blogcatalog": dict(
        nodes=1000, edges=6190, family="chung_lu", alpha=0.75,
        anomalies=dict(clique_frac=0.012, star_frac=0.012,
                       clique_size=10, star_leaves=20),
    ),
    "wikivote": dict(
        nodes=1012, edges=4860, family="chung_lu", alpha=0.80,
        anomalies=dict(clique_frac=0.010, star_frac=0.015,
                       clique_size=9, star_leaves=18),
    ),
    "bitcoin-alpha": dict(
        nodes=1025, edges=2311, family="chung_lu", alpha=0.70,
        anomalies=dict(clique_frac=0.008, star_frac=0.015,
                       clique_size=7, star_leaves=14),
    ),
    "blogcatalog-full": dict(
        nodes=88_800, edges=2_100_000, family="chung_lu", alpha=0.75,
        anomalies=dict(clique_frac=0.002, star_frac=0.002,
                       clique_size=10, star_leaves=30),
    ),
}


def default_cache_dir() -> Path:
    """The store cache root: ``$REPRO_STORE_CACHE`` or ``./.repro-store-cache``."""
    return Path(os.environ.get(CACHE_ENV, ".repro-store-cache"))


def store_recipe(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> dict:
    """The canonical build recipe for a named dataset at a given scale.

    The returned dict is exactly what is hashed for content addressing and
    recorded in the manifest — every field that influences the generated
    bytes appears in it.
    """
    key = name.lower().replace("_", "-")
    if key not in STORE_RECIPES:
        raise KeyError(
            f"unknown store dataset {name!r}; choose from {sorted(STORE_RECIPES)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    base = STORE_RECIPES[key]
    nodes = max(int(round(base["nodes"] * scale)), 64)
    edges = max(int(round(base["edges"] * scale)), nodes)
    recipe = {
        "version": 1,
        "name": key,
        "family": base["family"],
        "nodes": nodes,
        "edges": edges,
        "alpha": base.get("alpha"),
        "anomalies": base.get("anomalies"),
        "seed": int(seed),
        "chunk_edges": int(chunk_edges),
    }
    return recipe


def build_store(
    name: str,
    *,
    cache_dir: "str | Path | None" = None,
    scale: float = 1.0,
    seed: int = 0,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    force: bool = False,
) -> GraphStore:
    """Build (or reopen) the store for ``name`` at ``scale``.

    The store lands in ``<cache_dir>/<name>-<recipe_hash[:12]>``; an
    existing directory with a valid manifest for the same recipe is
    reopened without rebuilding (``force=True`` rebuilds in place).
    Build memory is O(m) — edge keys, one lexsort, the CSR component
    arrays — independent of ``n²``.
    """
    recipe = store_recipe(name, scale=scale, seed=seed, chunk_edges=chunk_edges)
    digest = recipe_hash(recipe)
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    path = root / f"{recipe['name']}-{digest[:12]}"
    if (path / "manifest.json").exists() and not force:
        store = GraphStore.open(path)
        if store.digest == digest:
            _log.debug("store cache hit: %s", path)
            if (path / "payload-fingerprint.json").exists():
                # Cheap (sidecar hit): re-record the alias group in case
                # the cache directory was copied without its table.  Cold
                # stores skip it — computing the payload fingerprint would
                # page the whole graph in on every cache hit.
                store.register_fingerprint_aliases()
            return store
        raise ValueError(
            f"store directory {path} holds a different recipe "
            f"({store.digest[:12]} != {digest[:12]}); remove it to rebuild"
        )
    if path.exists():
        shutil.rmtree(path)
    path.mkdir(parents=True, exist_ok=True)

    start = time.perf_counter()
    with _telemetry.span(
        "store.build", name=recipe["name"], nodes=int(recipe["nodes"])
    ):
        keys, planted = _generate_edge_keys(recipe)
        nnz = _write_csr(path, recipe["nodes"], keys)
        _write_features(path, recipe["nodes"], nnz)
    build_seconds = time.perf_counter() - start

    manifest = {
        "version": MANIFEST_VERSION,
        "name": recipe["name"],
        "n_nodes": recipe["nodes"],
        "n_edges": int(keys.size),
        "nnz": int(nnz),
        "index_dtype": index_dtype(recipe["nodes"], nnz).name,
        "data_dtype": np.dtype(_DATA_DTYPE).name,
        "planted": planted,
        "recipe": recipe,
        "recipe_hash": digest,
        "build_seconds": round(build_seconds, 3),
        "validated": True,
    }
    # The manifest is written last (atomically, via rename): a crash mid-
    # build leaves a directory without manifest.json, which open() rejects
    # and the next build_store() call sweeps and rebuilds.
    tmp = path / "manifest.json.tmp"
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    tmp.rename(path / "manifest.json")
    _log.info(
        "built store %s: n=%d m=%d (%.2fs)",
        path, recipe["nodes"], keys.size, build_seconds,
    )
    store = GraphStore.open(path)
    # Record the token↔payload fingerprint equivalence while the arrays
    # are page-hot from the build — checkpoints written against this store
    # then resume payload-backed runs of the same graph and vice versa.
    store.register_fingerprint_aliases()
    return store


# --------------------------------------------------------------------- #
# Edge-key generation (streamed)
# --------------------------------------------------------------------- #


def _generate_edge_keys(recipe: dict) -> "tuple[np.ndarray, dict]":
    """All undirected edges as sorted unique ``u·n + v`` keys (u < v).

    The core is sampled in :data:`chunk_edges`-sized chunks and merged into
    a growing sorted key array; planted anomalies are appended as further
    key chunks.  Peak memory is O(m) int64 keys.
    """
    n, target = recipe["nodes"], recipe["edges"]
    rng = np.random.default_rng(recipe["seed"])
    anomalies = recipe.get("anomalies")

    planted: dict = {}
    planted_keys = np.empty(0, dtype=np.int64)
    if anomalies:
        planted_keys, planted = _plant_anomaly_keys(n, anomalies, rng)

    core_target = max(target - planted_keys.size, n)
    weights_cdf = None
    if recipe["family"] == "chung_lu":
        weights = (np.arange(n, dtype=np.float64) + 10.0) ** -float(recipe["alpha"])
        weights_cdf = np.cumsum(weights)
        weights_cdf /= weights_cdf[-1]

    keys = _ring_keys(n)  # a Hamiltonian ring seeds connectivity (no singletons)
    chunk = int(recipe["chunk_edges"])
    # Each round samples one chunk of endpoint pairs, keeps the novel keys,
    # and stops once the core target is met; the round cap bounds
    # pathological recipes (targets near the complete graph).
    for _ in range(500):
        if keys.size >= core_target:
            break
        u = _sample_endpoints(rng, n, chunk, weights_cdf)
        v = _sample_endpoints(rng, n, chunk, weights_cdf)
        mask = u != v
        u, v = u[mask], v[mask]
        new = np.unique(np.minimum(u, v).astype(np.int64) * n + np.maximum(u, v))
        novel = new[~np.isin(new, keys, assume_unique=True)]
        # Truncating the (sorted) novel keys keeps the edge count landing
        # on the target deterministically, whatever the chunk overlap was.
        keys = np.union1d(keys, novel[: core_target - keys.size])
    # checked after the loop (not for/else): the target may be reached by
    # the final round's draws
    if keys.size < core_target:
        raise RuntimeError(
            f"edge sampling did not reach {core_target} edges for {recipe['name']}"
        )

    if planted_keys.size:
        keys = np.union1d(keys, planted_keys)
    return keys, planted


def _sample_endpoints(rng, n: int, count: int, cdf: "np.ndarray | None") -> np.ndarray:
    """One chunk of endpoint draws: uniform, or inverse-CDF weighted."""
    if cdf is None:
        return rng.integers(0, n, size=count)
    return np.searchsorted(cdf, rng.random(count)).astype(np.int64)


def _ring_keys(n: int) -> np.ndarray:
    """Keys of the Hamiltonian ring ``0-1-…-(n−1)-0`` (sorted, unique)."""
    nodes = np.arange(n, dtype=np.int64)
    nxt = (nodes + 1) % n
    keys = np.minimum(nodes, nxt) * n + np.maximum(nodes, nxt)
    return np.unique(keys)


def _plant_anomaly_keys(
    n: int, anomalies: dict, rng: np.random.Generator
) -> "tuple[np.ndarray, dict]":
    """Near-clique and near-star edge keys plus the ground-truth dict.

    Mirrors :func:`repro.graph.anomaly.plant_anomalies` shapes without a
    Graph object: clique centers are drawn from the mid-index (mid-weight)
    band, star hubs from the low-weight tail, all disjoint.
    """
    n_cliques = max(int(round(anomalies["clique_frac"] * n)), 2)
    n_stars = max(int(round(anomalies["star_frac"] * n)), 2)
    clique_size = int(anomalies["clique_size"])
    star_leaves = int(anomalies["star_leaves"])

    # Disjoint center pools: cliques from the middle third of the index
    # range (mid-degree under the Zipf weights), stars from the top third
    # (low-degree), members/leaves from anywhere outside the center sets.
    mid = rng.choice(
        np.arange(n // 3, 2 * n // 3), size=n_cliques, replace=False
    )
    tail = rng.choice(
        np.arange(2 * n // 3, n), size=n_stars, replace=False
    )
    centers = set(int(c) for c in mid) | set(int(s) for s in tail)

    chunks: list[np.ndarray] = []
    for center in mid:
        members = _draw_outside(rng, n, clique_size - 1, centers)
        ring = np.concatenate(([center], members))
        i, j = np.triu_indices(ring.size, k=1)
        u, v = ring[i], ring[j]
        keys = np.minimum(u, v).astype(np.int64) * n + np.maximum(u, v)
        # near-clique: ~90% of the internal pairs, hub edges always kept
        keep = rng.random(keys.size) < 0.9
        keep[: ring.size - 1] = True  # the (center, member) pairs come first
        chunks.append(keys[keep])
    for hub in tail:
        leaves = _draw_outside(rng, n, star_leaves, centers)
        keys = (
            np.minimum(hub, leaves).astype(np.int64) * n
            + np.maximum(hub, leaves)
        )
        chunks.append(keys)

    planted = {
        "cliques": sorted(int(c) for c in mid),
        "stars": sorted(int(s) for s in tail),
    }
    all_keys = np.unique(np.concatenate(chunks)) if chunks else np.empty(0, np.int64)
    return all_keys, planted


def _draw_outside(
    rng: np.random.Generator, n: int, count: int, excluded: "set[int]"
) -> np.ndarray:
    """``count`` distinct node ids avoiding ``excluded`` (rejection draws)."""
    chosen: list[int] = []
    seen: set[int] = set()
    while len(chosen) < count:
        batch = rng.integers(0, n, size=4 * count)
        for node in batch:
            node = int(node)
            if node in excluded or node in seen:
                continue
            seen.add(node)
            chosen.append(node)
            if len(chosen) == count:
                break
    return np.asarray(chosen, dtype=np.int64)


# --------------------------------------------------------------------- #
# CSR materialisation (memmap write)
# --------------------------------------------------------------------- #


def _write_csr(path: Path, n: int, keys: np.ndarray) -> int:
    """Write the symmetric CSR of the edge keys into the store's bin files.

    Returns ``nnz`` (= 2 × edges).  The arrays are written through
    ``np.memmap`` in one pass: both edge directions are lexsorted by
    ``(row, col)``, which also sorts the indices *within* each row — the
    property :meth:`GraphStore.csr` relies on to skip scipy's in-place sort.
    """
    u = (keys // n).astype(np.int64)
    v = (keys % n).astype(np.int64)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    order = np.lexsort((cols, rows))
    nnz = rows.size
    idx_dtype = index_dtype(n, nnz)

    indptr = np.memmap(path / "indptr.bin", dtype=idx_dtype, mode="w+", shape=(n + 1,))
    indptr[0] = 0
    indptr[1:] = np.cumsum(np.bincount(rows, minlength=n))
    indptr.flush()

    indices = np.memmap(path / "indices.bin", dtype=idx_dtype, mode="w+", shape=(nnz,))
    indices[:] = cols[order]
    indices.flush()

    data = np.memmap(path / "data.bin", dtype=_DATA_DTYPE, mode="w+", shape=(nnz,))
    data[:] = 1.0
    data.flush()
    del indptr, indices, data  # drop the writable mappings before reopening
    return int(nnz)


def _write_features(path: Path, n: int, nnz: int) -> None:
    """Precompute and persist the clean egonet features ``(N, E)``.

    The triangle term of ``E`` costs O(Σ_v deg(v)²) — minutes at the full
    Blogcatalog scale with its multi-thousand-degree hubs.  Paying it once
    at build time (through the fill-bounded chunked kernel of
    :func:`repro.graph.sparse.egonet_features_sparse`, which also re-
    validates the freshly written adjacency) and shipping the 2 × n result
    in the store turns every engine construction from the dominant cost of
    a worker into an O(n) memmap read.
    """
    from scipy import sparse

    from repro.graph.sparse import egonet_features_sparse

    idx_dtype = index_dtype(n, nnz)
    indptr = np.fromfile(path / "indptr.bin", dtype=idx_dtype)
    indices = np.memmap(path / "indices.bin", dtype=idx_dtype, mode="r", shape=(nnz,))
    data = np.memmap(path / "data.bin", dtype=_DATA_DTYPE, mode="r", shape=(nnz,))
    matrix = sparse.csr_matrix((data, indices, indptr), shape=(n, n), copy=False)
    n_feature, e_feature = egonet_features_sparse(matrix)

    features = np.memmap(
        path / "features.bin", dtype=np.float64, mode="w+", shape=(2, n)
    )
    features[0] = n_feature
    features[1] = e_feature
    features.flush()
    del features

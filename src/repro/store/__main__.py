"""``python -m repro.store`` — see :mod:`repro.store.cli`."""

from repro.store.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""Fingerprint alias table: one graph, two checkpoint names, one identity.

:func:`repro.attacks.campaign.graph_fingerprint` names a checkpoint from
its graph.  A :class:`~repro.store.GraphStore` CSR is named from the
store's content-addressing *token* in O(1) (hashing 2.1M mmap'd edges just
to title a file would page the whole graph in); the byte-identical
detached payload is named from its coo arrays.  Same graph, different
fingerprints — so before this module a payload-backed checkpoint refused
to resume a store-backed run of the very same graph, and vice versa.

This module records the equivalence: a tiny JSON **alias table**
(``fingerprint-aliases.json``) living in each store cache directory, mapping
fingerprints into groups that name the same graph.  :func:`record_alias_group`
is called at store-build time (and by
:meth:`~repro.store.GraphStore.register_fingerprint_aliases`);
:func:`repro.attacks.campaign.checkpoint_aliases` reads it back so
:class:`~repro.attacks.campaign.CheckpointStore` accepts any fingerprint in
the group.  The table is advisory — when it is missing, resume simply
requires exact fingerprint equality, the pre-alias behaviour.

Schema (version 1)::

    {"version": 1, "groups": [["<fp_a>", "<fp_b>", ...], ...]}

Groups are disjoint sorted lists; recording a group that intersects
existing ones union-merges them.  Writes are atomic (temp file + rename)
under an ``flock`` on a sidecar lock file, so concurrent store builds
cannot tear or drop each other's entries.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable

try:  # Unix-only stdlib module; degrades to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.utils.logging import get_logger

__all__ = [
    "ALIAS_TABLE_NAME",
    "alias_fingerprints",
    "alias_table_path",
    "record_alias_group",
]

_log = get_logger("store.fingerprints")

_TABLE_VERSION = 1

#: File name of the alias table inside a store cache directory.
ALIAS_TABLE_NAME = "fingerprint-aliases.json"


def alias_table_path(cache_dir: "Path | str | None" = None) -> Path:
    """Where the alias table lives (``None`` → the default store cache dir)."""
    if cache_dir is None:
        from repro.store.builder import default_cache_dir

        cache_dir = default_cache_dir()
    return Path(cache_dir) / ALIAS_TABLE_NAME


def _load_groups(path: Path) -> "list[set[str]]":
    """The table's groups as sets; tolerant of absent or corrupt files.

    A torn table (killed mid-rename-window writer, hand edit) is treated as
    empty rather than failing the campaign that consulted it: aliases are
    an affordance, exact-fingerprint resume still works without them.
    """
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except (json.JSONDecodeError, OSError):
        _log.warning("fingerprint alias table %s is unreadable; ignoring it", path)
        return []
    if not isinstance(document, dict) or document.get("version") != _TABLE_VERSION:
        _log.warning(
            "fingerprint alias table %s has unsupported version %r; ignoring it",
            path, document.get("version") if isinstance(document, dict) else None,
        )
        return []
    groups = []
    for group in document.get("groups", []):
        if isinstance(group, list) and len(group) >= 2:
            groups.append({str(fp) for fp in group})
    return groups


@contextmanager
def _locked(path: Path):
    """Exclusive flock on the table's sidecar lock file (no-op sans fcntl)."""
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with lock_path.open("a") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def record_alias_group(
    fingerprints: Iterable[str],
    cache_dir: "Path | str | None" = None,
) -> Path:
    """Record that ``fingerprints`` all name the same graph; returns the path.

    Union-merges with any existing groups sharing a member (recording
    ``{a, b}`` then ``{b, c}`` yields one ``{a, b, c}`` group), writes the
    table atomically under the table lock, and is idempotent — re-recording
    an already-known group changes nothing.
    """
    group = {str(fp) for fp in fingerprints}
    if len(group) < 2:
        raise ValueError(
            f"an alias group needs at least two distinct fingerprints, got {group}"
        )
    path = alias_table_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _locked(path):
        merged: "list[set[str]]" = []
        for existing in _load_groups(path):
            if existing & group:
                group |= existing
            else:
                merged.append(existing)
        merged.append(group)
        table = {
            "version": _TABLE_VERSION,
            "groups": sorted(
                (sorted(g) for g in merged), key=lambda g: g[0]
            ),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(table, indent=2) + "\n")
        tmp.rename(path)
    return path


def alias_fingerprints(
    fingerprint: str,
    cache_dir: "Path | str | None" = None,
) -> frozenset:
    """Every recorded alias of ``fingerprint`` (itself excluded).

    Returns the union of all groups containing it — empty when the table
    is absent or the fingerprint is unknown, in which case callers fall
    back to exact-fingerprint matching.
    """
    fingerprint = str(fingerprint)
    aliases: set = set()
    for group in _load_groups(alias_table_path(cache_dir)):
        if fingerprint in group:
            aliases |= group
    return frozenset(aliases) - {fingerprint}

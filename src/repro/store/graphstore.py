"""GraphStore: an out-of-core, memory-mapped CSR graph on disk.

The paper evaluates on ~1000-node samples, but its *full* datasets are two
orders of magnitude larger (Blogcatalog: 88.8k nodes, ~2.1M edges).  At that
scale the in-memory pipeline has two costs the sampled graphs never see:

* every :class:`~repro.oddball.surrogate.EngineSpec` payload ships a full
  copy of the CSR arrays to every worker process (tens of MB per worker,
  multiplied by the worker count), and
* every validation/normalisation touch-point (`to_sparse`, engine
  construction) copies the arrays again.

A :class:`GraphStore` removes both: the graph lives on disk as raw
little-endian CSR component files that are **memory-mapped read-only**
(`np.memmap(mode="r")`), under a **content-addressed** directory whose name
includes a hash of the build recipe, next to a JSON manifest recording the
node/edge counts, array dtypes, the planted-anomaly ground truth and the
recipe itself.  Opening a store is O(1); the OS pages CSR data in on demand
and shares the pages between every process that maps the same files — N
parallel workers pay for ONE copy of the graph, not N.

Layout of one store directory (see ``docs/ARCHITECTURE.md`` §Storage
layer)::

    <cache_dir>/<name>-<recipe_hash[:12]>/
        manifest.json     # schema below, written last (a store without a
                          # manifest is an aborted build and is rebuilt)
        indptr.bin        # index_dtype[n + 1]
        indices.bin       # index_dtype[nnz], sorted within each row
        data.bin          # float64[nnz], all ones (binary adjacency)

(``index_dtype`` is int32 while both ``n`` and ``nnz`` fit, int64 beyond —
one shared dtype so scipy never copies an array to reconcile widths.)

**The Δ-overlay invariant**: nothing downstream ever writes to the mapped
arrays.  :class:`~repro.graph.incremental.IncrementalEgonetFeatures` keeps
edge flips in per-node override sets and folds them into *new* arrays when a
CSR must be materialised; the engines evaluate transient flips as a
``(base, delta)`` overlay.  The arrays are mapped read-only, so a violation
raises instead of corrupting the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry

__all__ = ["GraphStore", "MANIFEST_VERSION", "index_dtype", "recipe_hash"]

#: Manifest schema version; bump on any incompatible layout change.
MANIFEST_VERSION = 1

_DATA_DTYPE = np.float64


def recipe_hash(recipe: dict) -> str:
    """Deterministic content hash of a build recipe (the cache key).

    The recipe is canonicalised through sorted-key JSON, so two logically
    identical recipes always hash alike and *any* parameter change (node
    count, seed, generator, chunk size) re-addresses the store.
    """
    encoded = json.dumps(recipe, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(encoded.encode()).hexdigest()


def index_dtype(n_nodes: int, nnz: int) -> np.dtype:
    """One index dtype shared by ``indptr`` AND ``indices``.

    scipy unifies the two index arrays to a common dtype on construction;
    storing them in different widths would make it *copy* the large mapped
    ``indices`` array to reconcile them, defeating the zero-copy open.
    ``int32`` halves the on-disk/in-cache size whenever both the node count
    and the stored-entry count fit.
    """
    return np.dtype(np.int64 if max(n_nodes + 1, nnz) >= 2**31 else np.int32)


class GraphStore:
    """A read-only, memory-mapped CSR graph with manifest metadata.

    Instances are created by :func:`repro.store.build_store` (which writes
    the files) or :meth:`open` (which maps an existing directory).  A store
    quacks like a graph everywhere the sparse pipeline accepts one: it
    exposes ``adjacency_csr()`` (the hook :func:`repro.graph.sparse.to_sparse`
    dispatches on), ``number_of_nodes``/``number_of_edges``/``degrees()``/
    ``is_connected()`` (what :func:`repro.graph.datasets.dataset_statistics`
    consumes), and :meth:`engine_spec` (the ``store``-kind
    :class:`~repro.oddball.surrogate.EngineSpec` the parallel executor ships
    to workers instead of a multi-MB array payload).
    """

    def __init__(self, path: Path, manifest: dict):
        self.path = Path(path)
        self.manifest = manifest
        idx_dtype = np.dtype(manifest["index_dtype"])
        self._indptr = np.memmap(
            self.path / "indptr.bin", dtype=idx_dtype, mode="r",
            shape=(manifest["n_nodes"] + 1,),
        )
        self._indices = np.memmap(
            self.path / "indices.bin", dtype=idx_dtype, mode="r",
            shape=(manifest["nnz"],),
        )
        self._data = np.memmap(
            self.path / "data.bin", dtype=np.dtype(manifest["data_dtype"]),
            mode="r", shape=(manifest["nnz"],),
        )
        self._csr: "sparse.csr_matrix | None" = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: "str | Path", verify: bool = False) -> "GraphStore":
        """Map an existing store directory.

        Cheap structural sanity checks (manifest version, file sizes,
        monotone ``indptr``) always run; ``verify=True`` additionally
        re-validates the full adjacency contract (symmetric, binary, zero
        diagonal, sorted rows) in O(m) — use it after copying a store
        between machines.
        """
        path = Path(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{path} is not a graph store (no manifest.json); an aborted "
                "build leaves no manifest — rebuild with repro.store.build_store"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"store {path} has unsupported manifest version "
                f"{manifest.get('version')!r} (this build reads {MANIFEST_VERSION})"
            )
        store = cls(path, manifest)
        store._check_structure()
        if verify:
            store._verify_adjacency()
        _telemetry.event(
            "store.open",
            name=store.name,
            n=store.number_of_nodes,
            nnz=store.nnz,
            verified=bool(verify),
        )
        return store

    def _check_structure(self) -> None:
        """O(n) sanity checks tying the mapped arrays to the manifest."""
        n, nnz = self.manifest["n_nodes"], self.manifest["nnz"]
        if self._indptr.shape[0] != n + 1 or int(self._indptr[0]) != 0:
            raise ValueError(f"store {self.path}: indptr does not address {n} rows")
        if int(self._indptr[-1]) != nnz:
            raise ValueError(
                f"store {self.path}: indptr ends at {int(self._indptr[-1])}, "
                f"manifest says nnz={nnz}"
            )
        if np.any(np.diff(self._indptr) < 0):
            raise ValueError(f"store {self.path}: indptr is not monotone")

    def _verify_adjacency(self) -> None:
        """Full O(m) re-validation of the adjacency contract."""
        matrix = sparse.csr_matrix(
            (np.asarray(self._data), np.asarray(self._indices),
             np.asarray(self._indptr)),
            shape=(self.number_of_nodes, self.number_of_nodes),
        )
        if matrix.nnz and not np.all(matrix.data == 1.0):
            raise ValueError(f"store {self.path}: adjacency is not binary")
        if matrix.diagonal().sum() != 0.0:
            raise ValueError(f"store {self.path}: adjacency has diagonal entries")
        if (matrix != matrix.T).nnz != 0:
            raise ValueError(f"store {self.path}: adjacency is not symmetric")
        for row in range(self.number_of_nodes):
            row_indices = self._indices[self._indptr[row] : self._indptr[row + 1]]
            if row_indices.size and np.any(np.diff(row_indices) <= 0):
                raise ValueError(
                    f"store {self.path}: row {row} indices are not sorted/unique"
                )

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Dataset name recorded at build time."""
        return self.manifest["name"]

    @property
    def number_of_nodes(self) -> int:
        """Node count (Graph-compatible spelling)."""
        return int(self.manifest["n_nodes"])

    @property
    def number_of_edges(self) -> int:
        """Undirected edge count (``nnz / 2``)."""
        return int(self.manifest["n_edges"])

    @property
    def nnz(self) -> int:
        """Stored entries of the symmetric CSR (``2 × edges``)."""
        return int(self.manifest["nnz"])

    @property
    def planted(self) -> dict:
        """Planted-anomaly ground truth (``{"cliques": [...], "stars": [...]}``)."""
        return self.manifest.get("planted", {})

    @property
    def recipe(self) -> dict:
        """The build recipe the store was generated from."""
        return self.manifest["recipe"]

    @property
    def digest(self) -> str:
        """The recipe hash — the content address of this store."""
        return self.manifest["recipe_hash"]

    @property
    def shape(self) -> tuple[int, int]:
        """Adjacency shape, for shape-dispatching callers (resolve_backend)."""
        n = self.number_of_nodes
        return (n, n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphStore({self.name!r}, n={self.number_of_nodes}, "
            f"m={self.number_of_edges}, digest={self.digest[:12]}, "
            f"path={str(self.path)!r})"
        )

    # ------------------------------------------------------------------ #
    # Graph access
    # ------------------------------------------------------------------ #
    def csr(self) -> sparse.csr_matrix:
        """The adjacency as a CSR matrix over the *mapped* arrays (cached).

        Zero-copy: ``data``/``indices``/``indptr`` are the read-only memmaps
        themselves.  The matrix is tagged

        * ``_repro_validated`` — :func:`repro.graph.sparse.to_sparse`
          returns it as-is instead of copy-validating (the builder validated
          at write time; ``open(verify=True)`` re-checks), and
        * ``_repro_fingerprint`` — :func:`repro.attacks.campaign.graph_fingerprint`
          derives the checkpoint fingerprint from the recipe digest instead
          of hashing 2·m entries,

        and ``has_sorted_indices`` is set so scipy never attempts an
        in-place sort of the read-only buffers.
        """
        if self._csr is None:
            matrix = sparse.csr_matrix(
                (self._data, self._indices, self._indptr),
                shape=self.shape, copy=False,
            )
            matrix.has_sorted_indices = True
            matrix._repro_validated = True
            matrix._repro_fingerprint = f"graph-store:{self.digest}"
            # Lets the campaign layer find this store's fingerprint alias
            # table (checkpoint_aliases) without a global registry.
            matrix._repro_store_path = str(self.path)
            features = self.features()
            if features is not None:
                # IncrementalEgonetFeatures picks these up and skips its
                # O(Σ deg²) clean-feature pass — the dominant per-worker
                # cost at full Blogcatalog scale.
                matrix._repro_egonet_features = features
            self._csr = matrix
            _telemetry.event("store.mmap", name=self.name, nnz=self.nnz)
        return self._csr

    def features(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """Precomputed clean egonet features ``(N, E)`` (read-only memmaps).

        ``None`` for stores built before features were persisted; callers
        fall back to :func:`repro.graph.sparse.egonet_features_sparse`.
        """
        feature_path = self.path / "features.bin"
        if not feature_path.exists():
            return None
        mapped = np.memmap(
            feature_path, dtype=np.float64, mode="r",
            shape=(2, self.number_of_nodes),
        )
        return mapped[0], mapped[1]

    def adjacency_csr(self) -> sparse.csr_matrix:
        """Alias of :meth:`csr` — the duck-typing hook ``to_sparse`` uses."""
        return self.csr()

    def detached_csr(self) -> sparse.csr_matrix:
        """A plain in-memory CSR copy with **no** store tags or memmaps.

        The inverse of :meth:`csr` for comparison purposes: the payload-
        path benchmarks and the store parity tests feed this to the
        pipeline so it behaves exactly like a graph that never touched the
        store subsystem (re-validated, re-fingerprinted by bytes, features
        recomputed).
        """
        csr = self.csr()
        return sparse.csr_matrix(
            (np.array(csr.data), np.array(csr.indices), np.array(csr.indptr)),
            shape=csr.shape,
        )

    def payload_fingerprint(self) -> str:
        """The byte-derived fingerprint a payload-backed campaign computes.

        :func:`~repro.attacks.campaign.graph_fingerprint` names this
        store's CSR from its content-addressing token in O(1); the same
        graph fed through :meth:`detached_csr` (or built without the store
        subsystem at all) is named by hashing its coo arrays instead.  This
        method computes that second name — the one O(m) pass is paid once
        and cached in a ``payload-fingerprint.json`` sidecar inside the
        store directory (a sidecar, not a manifest field, so existing
        stores gain it without a manifest version bump).
        """
        sidecar = self.path / "payload-fingerprint.json"
        try:
            cached = json.loads(sidecar.read_text())
            if cached.get("version") == 1:
                return str(cached["fingerprint"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError):
            pass
        from repro.attacks.campaign import graph_fingerprint

        fingerprint = graph_fingerprint(self.detached_csr(), "sparse")
        tmp = self.path / f"payload-fingerprint.json.{os.getpid()}.tmp"
        tmp.write_text(
            json.dumps({"version": 1, "backend": "sparse",
                        "fingerprint": fingerprint}) + "\n"
        )
        tmp.rename(sidecar)
        return fingerprint

    def register_fingerprint_aliases(self) -> frozenset:
        """Record this store's token↔payload fingerprint equivalence.

        Writes the alias group into the ``fingerprint-aliases.json`` table
        of the cache directory holding this store (see
        :mod:`repro.store.fingerprints`), so checkpoints written against
        the store resume payload-backed runs of the same graph and vice
        versa.  Called automatically at :func:`~repro.store.build_store`
        time; idempotent.  Returns the recorded group.
        """
        from repro.attacks.campaign import graph_fingerprint
        from repro.store.fingerprints import record_alias_group

        token_fp = graph_fingerprint(self.csr(), "sparse")
        payload_fp = self.payload_fingerprint()
        group = frozenset({token_fp, payload_fp})
        if len(group) > 1:
            record_alias_group(group, cache_dir=self.path.parent)
        return group

    def degrees(self) -> np.ndarray:
        """Per-node degree vector, O(n) from ``indptr`` (no row scan)."""
        return np.diff(self._indptr).astype(np.float64)

    def top_targets(self, count: int) -> "list[int]":
        """The ``count`` highest OddBall-scored nodes (stable order).

        Scores come from the precomputed clean features (Eq. 3 over the
        refitted power law) in O(n) — the one target-selection rule the
        store CLI, the table1 store rows and the store benchmark all
        share, so they can never diverge on which nodes they attack.
        Falls back to the sparse feature kernels for pre-feature stores.
        """
        from repro.oddball.regression import fit_power_law
        from repro.oddball.scores import score_from_features

        features = self.features()
        if features is None:
            from repro.graph.sparse import egonet_features_sparse

            features = egonet_features_sparse(self.csr())
        n_feature = np.asarray(features[0])
        e_feature = np.asarray(features[1])
        scores = score_from_features(
            n_feature, e_feature, fit_power_law(n_feature, e_feature)
        )
        return np.argsort(-scores, kind="stable")[:count].tolist()

    def is_connected(self) -> bool:
        """Whether the graph is one connected component (O(n + m) BFS)."""
        if self.number_of_nodes == 0:
            return True
        from scipy.sparse.csgraph import connected_components

        count, _ = connected_components(self.csr(), directed=False)
        return int(count) == 1

    # ------------------------------------------------------------------ #
    # Engine / executor integration
    # ------------------------------------------------------------------ #
    def engine_spec(self, *, floor: float = 1.0, ridge: "float | None" = None):
        """A ``store``-kind :class:`~repro.oddball.surrogate.EngineSpec`.

        The payload is the store *path*, not the graph: a pickled spec is a
        few hundred bytes regardless of graph size, and every worker that
        builds from it maps the same files instead of unpickling its own
        CSR copy.  Store-backed engines are always sparse.
        """
        from repro.oddball.regression import DEFAULT_RIDGE
        from repro.oddball.surrogate import EngineSpec

        return EngineSpec.from_store(
            self, floor=floor,
            ridge=DEFAULT_RIDGE if ridge is None else float(ridge),
        )

"""Command-line entry points for the graph-store subsystem.

Usage::

    python -m repro.store build blogcatalog-full [--scale S] [--seed N]
    python -m repro.store info blogcatalog-full        # or a store path
    python -m repro.store recipe-hash blogcatalog-full --scale 0.02
    python -m repro.store campaign blogcatalog-full --budget 5 --workers 4
    python -m repro.store campaign blogcatalog-full --workers 4 --scheduler
    python -m repro.store campaign blogcatalog-full --budget 5 \\
        --candidates block --block-size 65536 --block-seed 1
    python -m repro.store campaign blogcatalog-full --workers 4 \\
        --scheduler --telemetry traces/run1

``build`` constructs (or reopens, on a cache hit) the content-addressed
store; ``info`` prints its manifest; ``recipe-hash`` prints only the digest
(CI uses it as a cache key); ``campaign`` runs an attack campaign
(``--attack``, default GradMaxSearch; ``--candidates`` picks the
decision-variable strategy, with ``block`` the PRBCD random block that keeps
memory O(block-size) on the *-full stores) over the top-scoring OddBall
targets end-to-end through the parallel executor,
with every worker opening the memory-mapped store via a ``store``-kind
:class:`~repro.oddball.surrogate.EngineSpec` (``--scheduler`` swaps the
static shards for the work-stealing queue of
:mod:`repro.attacks.scheduler`; ``--lease-ttl`` bounds crash-requeue
latency).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

__all__ = ["main"]


def _add_recipe_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("name", help="recipe name (e.g. blogcatalog-full) or, "
                                     "for info, an existing store directory")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="node/edge-count multiplier on the recipe")
    parser.add_argument("--seed", type=int, default=0,
                        help="build seed (part of the content address)")
    parser.add_argument("--cache", type=Path, default=None,
                        help="store cache directory (default: "
                             "$REPRO_STORE_CACHE or ./.repro-store-cache)")


def _resolve_store(args, build: bool = True):
    """Open ``args.name`` as a path, or build/open it as a recipe name.

    With ``build=False`` a recipe name whose store is not in the cache
    raises instead of triggering a (potentially minutes-long) build — the
    read-only ``info`` command uses this so it never builds as a side
    effect.
    """
    from repro.store import GraphStore, build_store
    from repro.store.datasets import STORE_DATASET_NAMES, load_store_dataset

    candidate = Path(args.name)
    if (candidate / "manifest.json").exists():
        return GraphStore.open(candidate)
    key = args.name.lower().replace("_", "-")
    if not build:
        from repro.store import default_cache_dir, recipe_hash, store_recipe
        from repro.store.datasets import _recipe_name_and_scale

        scale = args.scale
        if key in STORE_DATASET_NAMES:
            key, scale = _recipe_name_and_scale(key, scale)
        recipe = store_recipe(key, scale=scale, seed=args.seed)
        root = Path(args.cache) if args.cache is not None else default_cache_dir()
        path = root / f"{recipe['name']}-{recipe_hash(recipe)[:12]}"
        if not (path / "manifest.json").exists():
            raise SystemExit(
                f"store for {args.name!r} (seed={args.seed}, scale={args.scale}) "
                f"is not in the cache ({path}); build it first with "
                f"`python -m repro.store build {args.name}`"
            )
        return GraphStore.open(path)
    if key in STORE_DATASET_NAMES:
        dataset = load_store_dataset(
            key, seed=args.seed, scale=args.scale, cache_dir=args.cache
        )
        return dataset.graph
    return build_store(
        key, cache_dir=args.cache, scale=args.scale, seed=args.seed
    )


def _cmd_build(args) -> int:
    start = time.perf_counter()
    store = _resolve_store(args)
    seconds = time.perf_counter() - start
    print(
        f"{store.name}: n={store.number_of_nodes} m={store.number_of_edges} "
        f"digest={store.digest[:12]} ({seconds:.2f}s incl. cache lookup)"
    )
    print(f"path: {store.path}")
    return 0


def _cmd_info(args) -> int:
    store = _resolve_store(args, build=False)
    manifest = dict(store.manifest)
    # planted lists can be thousands of ids — summarise for the console
    planted = manifest.get("planted") or {}
    manifest["planted"] = {k: f"{len(v)} nodes" for k, v in planted.items()}
    print(json.dumps(manifest, indent=2))
    return 0


def _cmd_recipe_hash(args) -> int:
    from repro.store import recipe_hash, store_recipe
    from repro.store.datasets import STORE_DATASET_NAMES

    key = args.name.lower().replace("_", "-")
    if key in STORE_DATASET_NAMES:
        from repro.store.datasets import _recipe_name_and_scale

        key, args.scale = _recipe_name_and_scale(key, args.scale)
    print(recipe_hash(store_recipe(key, scale=args.scale, seed=args.seed)))
    return 0


def _cmd_campaign(args) -> int:
    from repro.attacks import grid_jobs
    from repro.attacks.executor import build_campaign

    store = _resolve_store(args)
    targets = store.top_targets(args.targets)
    params: dict[str, int] = {}
    if args.candidates == "block":
        if args.block_size is not None:
            params["block_size"] = args.block_size
        if args.block_seed:
            params["block_seed"] = args.block_seed
    elif args.block_size is not None or args.block_seed:
        raise SystemExit("--block-size/--block-seed need --candidates block")
    jobs = grid_jobs(
        args.attack,
        [[t] for t in targets],
        budgets=[args.budget],
        candidates=args.candidates,
        **params,
    )
    campaign = build_campaign(
        store, workers=args.workers, backend="sparse", kernels=args.kernels,
        checkpoint_path=args.checkpoint,
        scheduler=args.scheduler, lease_ttl=args.lease_ttl,
        telemetry=args.telemetry,
    )
    start = time.perf_counter()
    result = campaign.run(jobs)
    seconds = time.perf_counter() - start
    print(
        f"{store.name}: {len(result)} jobs (budget={args.budget}, "
        f"workers={args.workers}) in {seconds:.2f}s"
        + (f", {result.resumed_jobs} resumed" if result.resumed_jobs else "")
    )
    for outcome in result:
        target = outcome.job.targets[0]
        shift = outcome.rank_shifts.get(target, 0)
        print(
            f"  target {target}: tau={outcome.score_decrease:.3f} "
            f"rank-shift={shift:+d} ({outcome.seconds:.2f}s)"
        )
    if result.peak_rss_kb:
        print(f"  peak worker RSS: {result.peak_rss_kb / 1024:.0f} MiB")
    if result.requeues:
        print(f"  requeues: {result.requeues}")
    if result.dead_workers:
        print(
            f"  dead workers (jobs recovered): {list(result.dead_workers)}"
        )
    if args.telemetry is not None:
        from repro import telemetry as _telemetry

        _telemetry.shutdown()
        print(
            f"  telemetry: {args.telemetry} (inspect with "
            f"`python -m repro.telemetry report {args.telemetry}`)"
        )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI dispatcher (``python -m repro.store``)."""
    parser = argparse.ArgumentParser(prog="repro.store", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler in (
        ("build", _cmd_build),
        ("info", _cmd_info),
        ("recipe-hash", _cmd_recipe_hash),
    ):
        sub = commands.add_parser(name)
        _add_recipe_arguments(sub)
        sub.set_defaults(handler=handler)

    campaign = commands.add_parser("campaign")
    _add_recipe_arguments(campaign)
    campaign.add_argument("--budget", type=int, default=5)
    campaign.add_argument("--workers", type=int, default=1)
    campaign.add_argument("--targets", type=int, default=8,
                          help="attack the top-K OddBall-scored nodes")
    campaign.add_argument("--attack", default="gradmaxsearch",
                          choices=["gradmaxsearch", "binarizedattack",
                                   "continuousa", "random",
                                   "oddball-heuristic"],
                          help="attack registry name for the job grid")
    campaign.add_argument("--candidates", default="target_incident",
                          choices=["full", "target_incident", "two_hop",
                                   "adaptive", "adaptive_gradient", "block"],
                          help="candidate-pair strategy; 'block' is the "
                               "PRBCD random block (O(block-size) memory "
                               "regardless of n — the only strategy that "
                               "runs unconstrained attacks on *-full "
                               "stores)")
    campaign.add_argument("--block-size", type=int, default=None,
                          help="'block' strategy size cap (default: "
                               "budget-scaled)")
    campaign.add_argument("--block-seed", type=int, default=0,
                          help="'block' strategy sampling seed (content-"
                               "hashed into each job, so checkpoints "
                               "resume the exact same blocks)")
    campaign.add_argument("--checkpoint", type=Path, default=None,
                          help="resumable campaign checkpoint file")
    campaign.add_argument("--kernels", choices=["auto", "numpy", "compiled"],
                          default="auto",
                          help="hot-loop kernel backend (repro.kernels); "
                               "flips are identical either way")
    campaign.add_argument("--scheduler", action="store_true",
                          help="drain jobs through the work-stealing "
                               "scheduler instead of static round-robin "
                               "shards (same results; crash-requeue and "
                               "no idle workers on skewed grids)")
    campaign.add_argument("--lease-ttl", type=float, default=None,
                          help="scheduler lease TTL in seconds (default: "
                               "$REPRO_LEASE_TTL or 30)")
    campaign.add_argument("--telemetry", type=Path, default=None,
                          metavar="DIR",
                          help="write a structured trace (spans/events/"
                               "counters) under DIR; inspect afterwards "
                               "with `python -m repro.telemetry report DIR`"
                               " (default: $REPRO_TELEMETRY or off)")
    campaign.set_defaults(handler=_cmd_campaign)

    args = parser.parse_args(argv)
    return args.handler(args)

"""Dataset splitting and feature scaling helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["StandardScaler", "train_test_split_indices"]


def train_test_split_indices(
    n: int,
    test_fraction: float = 0.3,
    rng=None,
    stratify: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random (train, test) index arrays.

    With ``stratify`` (a label vector), each class is split with the same
    proportion — important for the transfer attacks where anomalies are a
    small minority.
    """
    if n <= 1:
        raise ValueError(f"need at least two samples to split, got {n}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    generator = as_generator(rng)
    if stratify is None:
        order = generator.permutation(n)
        n_test = max(int(round(test_fraction * n)), 1)
        return np.sort(order[n_test:]), np.sort(order[:n_test])

    stratify = np.asarray(stratify).ravel()
    if len(stratify) != n:
        raise ValueError(f"stratify length {len(stratify)} != n {n}")
    train_parts, test_parts = [], []
    for value in np.unique(stratify):
        members = np.flatnonzero(stratify == value)
        members = generator.permutation(members)
        n_test = max(int(round(test_fraction * len(members))), 1) if len(members) > 1 else 0
        test_parts.append(members[:n_test])
        train_parts.append(members[n_test:])
    return np.sort(np.concatenate(train_parts)), np.sort(np.concatenate(test_parts))


class StandardScaler:
    """Zero-mean / unit-variance feature scaling (constant columns pass through)."""

    def __init__(self):
        self.mean_: "np.ndarray | None" = None
        self.std_: "np.ndarray | None" = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

"""Classification metrics (AUC, F1, ...) implemented from scratch.

Used by the transfer-attack evaluation (Tables III and IV report AUC and F1
of GAL/ReFeX before and after poisoning).  ROC-AUC uses the rank statistic
(equivalent to the Mann–Whitney U) with average ranks for ties; the tests
cross-check it against an explicit pair-counting oracle.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "precision",
    "recall",
    "roc_auc_score",
]


def _validate_binary(y_true: np.ndarray, other: np.ndarray, other_name: str) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    other = np.asarray(other, dtype=np.float64).ravel()
    if y_true.shape != other.shape:
        raise ValueError(f"y_true and {other_name} must align, got {y_true.shape} vs {other.shape}")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("y_true must be binary (0/1)")
    return y_true.astype(np.int64), other


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via average ranks (ties handled)."""
    y_true, y_score = _validate_binary(y_true, y_score, "y_score")
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score needs both classes present")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=np.float64)
    sorted_scores = y_score[order]
    # Average ranks over tied groups (1-based ranks).
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = ranks[y_true == 1].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2×2 matrix ``[[tn, fp], [fn, tp]]``."""
    y_true, y_pred = _validate_binary(y_true, y_pred, "y_pred")
    if not np.isin(y_pred, (0, 1)).all():
        raise ValueError("y_pred must be binary (0/1)")
    y_pred = y_pred.astype(np.int64)
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fp = matrix[1, 1], matrix[0, 1]
    denominator = tp + fp
    return float(tp / denominator) if denominator else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FN); 0 when there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fn = matrix[1, 1], matrix[1, 0]
    denominator = tp + fn
    return float(tp / denominator) if denominator else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fp, fn = matrix[1, 1], matrix[0, 1], matrix[1, 0]
    denominator = 2 * tp + fp + fn
    return float(2 * tp / denominator) if denominator else 0.0


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    matrix = confusion_matrix(y_true, y_pred)
    return float((matrix[0, 0] + matrix[1, 1]) / matrix.sum())

"""Principal component analysis via singular value decomposition.

Used to initialise t-SNE (a common, deterministic choice) and available as a
cheaper alternative for the Fig. 8/9 embedding visualisations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Linear projection onto the top ``n_components`` principal axes.

    >>> import numpy as np
    >>> x = np.random.default_rng(0).normal(size=(100, 5))
    >>> z = PCA(2).fit_transform(x)
    >>> z.shape
    (100, 2)
    """

    def __init__(self, n_components: int = 2):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.mean_: "np.ndarray | None" = None
        self.components_: "np.ndarray | None" = None
        self.explained_variance_ratio_: "np.ndarray | None" = None

    def fit(self, features: np.ndarray) -> "PCA":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        if self.n_components > min(features.shape):
            raise ValueError(
                f"n_components={self.n_components} exceeds min(n, d)={min(features.shape)}"
            )
        self.mean_ = features.mean(axis=0)
        centered = features - self.mean_
        _, singular_values, rows = np.linalg.svd(centered, full_matrices=False)
        self.components_ = rows[: self.n_components]
        variance = singular_values**2
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[: self.n_components] / total if total > 0 else np.zeros(self.n_components)
        )
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before transform")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) @ self.components_.T

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

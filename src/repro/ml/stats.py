"""Statistical tests and density estimates for the side-effect analysis.

Table II of the paper reports Monte-Carlo permutation-test p-values checking
whether the attack shifted the distributions of the ego-features ``N`` and
``E``; Fig. 7 plots their densities before/after poisoning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["PermutationTestResult", "histogram_density", "permutation_test"]


@dataclass(frozen=True)
class PermutationTestResult:
    """Outcome of a two-sample permutation test."""

    statistic: float
    p_value: float
    n_resamples: int

    def rejects_at(self, significance: float) -> bool:
        """Whether the null (same distribution) is rejected at ``significance``."""
        return self.p_value < significance


def permutation_test(
    x: np.ndarray,
    y: np.ndarray,
    n_resamples: int = 100_000,
    rng=None,
) -> PermutationTestResult:
    """Monte-Carlo permutation test on ``t = |mean(x) − mean(y)|`` (Eq. 11).

    The two samples are concatenated; each resample splits the pool at random
    into groups of the original sizes and recomputes the statistic.  The
    p-value is the fraction of resamples with ``t ≥ t0`` (the paper uses
    ``M = 100000``; the +1/+1 correction keeps the estimate unbiased and
    strictly positive).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if len(x) == 0 or len(y) == 0:
        raise ValueError("both samples must be non-empty")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    generator = as_generator(rng)
    observed = abs(x.mean() - y.mean())
    pool = np.concatenate([x, y])
    n_x = len(x)

    # Vectorised resampling in blocks to bound memory.
    exceed = 0
    remaining = n_resamples
    block = max(min(remaining, 10_000_000 // max(len(pool), 1)), 1)
    while remaining > 0:
        take = min(block, remaining)
        stats = np.empty(take)
        for i in range(take):
            permuted = generator.permutation(pool)
            stats[i] = abs(permuted[:n_x].mean() - permuted[n_x:].mean())
        exceed += int((stats >= observed - 1e-15).sum())
        remaining -= take
    p_value = (exceed + 1) / (n_resamples + 1)
    return PermutationTestResult(statistic=float(observed), p_value=float(p_value),
                                 n_resamples=n_resamples)


def histogram_density(
    values: np.ndarray,
    bins: int = 40,
    value_range: "tuple[float, float] | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(bin centers, probability density) — the numeric series behind Fig. 7."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if len(values) == 0:
        raise ValueError("cannot build a density from an empty sample")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    density, edges = np.histogram(values, bins=bins, range=value_range, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density

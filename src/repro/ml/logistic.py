"""Binary logistic regression on the autograd engine.

Used by the embedding analysis (Figs. 8/9) to quantify linear separability of
the penultimate features: the paper argues the attack "breaks the linear
separable decision boundary", which we measure as the drop in a linear
probe's accuracy/AUC instead of eyeballing a scatter plot.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.nn import Linear, Module
from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor, no_grad
from repro.utils.rng import as_generator

__all__ = ["LogisticRegression"]


class LogisticRegression(Module):
    """L2-regularised binary logistic regression trained with Adam.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> x = rng.normal(size=(200, 2)); y = (x[:, 0] + x[:, 1] > 0).astype(int)
    >>> model = LogisticRegression(n_features=2, rng=0).fit(x, y)
    >>> (model.predict(x) == y).mean() > 0.9
    True
    """

    def __init__(self, n_features: int, l2: float = 1e-4, lr: float = 0.05,
                 epochs: int = 300, rng=None):
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        generator = as_generator(rng)
        self.linear = Linear(n_features, 1, rng=generator)
        self.l2 = l2
        self.lr = lr
        self.epochs = epochs
        self.loss_history_: list[float] = []

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x).reshape(-1)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be 2-D and aligned with labels")
        x = Tensor(features)
        y = Tensor(labels)
        optimizer = Adam(self.parameters(), lr=self.lr, weight_decay=self.l2)
        self.loss_history_ = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            logits = self.forward(x)
            loss = F.binary_cross_entropy_with_logits(logits, y)
            loss.backward()
            optimizer.step()
            self.loss_history_.append(float(loss.data))
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(y = 1 | x)."""
        with no_grad():
            logits = self.forward(Tensor(np.asarray(features, dtype=np.float64)))
            return logits.sigmoid().data

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at ``threshold``."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

"""ML toolkit: metrics, dimensionality reduction, statistics (sklearn substitute)."""

from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc_score,
)
from repro.ml.pca import PCA
from repro.ml.preprocessing import StandardScaler, train_test_split_indices
from repro.ml.stats import PermutationTestResult, histogram_density, permutation_test
from repro.ml.tsne import TSNE

__all__ = [
    "PCA",
    "TSNE",
    "LogisticRegression",
    "PermutationTestResult",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "histogram_density",
    "permutation_test",
    "precision",
    "recall",
    "roc_auc_score",
    "train_test_split_indices",
]

"""t-SNE (van der Maaten & Hinton 2008) from scratch.

Figures 8 and 9 of the paper visualise the penultimate MLP features of GAL
and ReFeX in 2-D with t-SNE.  This implementation follows the original
recipe: perplexity-calibrated Gaussian affinities (binary search on the
bandwidth), symmetrisation, early exaggeration, and momentum gradient
descent on the Kullback-Leibler divergence with Student-t low-dimensional
affinities.
"""

from __future__ import annotations

import numpy as np

from repro.ml.pca import PCA
from repro.utils.rng import as_generator

__all__ = ["TSNE"]

_EPS = 1e-12


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x * x).sum(axis=1)
    distances = norms[:, None] - 2.0 * (x @ x.T) + norms[None, :]
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(distances: np.ndarray, perplexity: float,
                               tol: float = 1e-5, max_steps: int = 50) -> np.ndarray:
    """Row-stochastic P(j|i) matching ``perplexity`` via bandwidth search."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    conditional = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = -np.inf, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(max_steps):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= _EPS:
                entropy = 0.0
                probabilities = np.zeros_like(row)
            else:
                probabilities = weights / total
                entropy = -(probabilities * np.log(probabilities + _EPS)).sum()
            difference = entropy - target_entropy
            if abs(difference) < tol:
                break
            if difference > 0:  # entropy too high -> narrow the kernel
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else 0.5 * (beta + beta_high)
            else:
                beta_high = beta
                beta = beta * 0.5 if beta_low == -np.inf else 0.5 * (beta + beta_low)
        conditional[i, np.arange(n) != i] = probabilities
    return conditional


class TSNE:
    """2-D (or k-D) t-SNE embedding.

    Parameters
    ----------
    n_components:
        Output dimensionality (2 for the paper's scatter plots).
    perplexity:
        Effective number of neighbours; must satisfy ``3·perplexity < n−1``.
    n_iter:
        Gradient-descent iterations (first quarter runs with early
        exaggeration 12× and momentum 0.5, then momentum 0.8).
    learning_rate:
        Step size of the Kullback-Leibler gradient descent.
    init:
        ``"pca"`` (deterministic, default) or ``"random"``.
    """

    def __init__(
        self,
        n_components: int = 2,
        perplexity: float = 30.0,
        n_iter: int = 500,
        learning_rate: float = 200.0,
        init: str = "pca",
        rng=None,
    ):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if perplexity <= 1.0:
            raise ValueError(f"perplexity must exceed 1, got {perplexity}")
        if n_iter < 10:
            raise ValueError(f"n_iter must be >= 10, got {n_iter}")
        if init not in ("pca", "random"):
            raise ValueError(f"init must be 'pca' or 'random', got {init!r}")
        self.n_components = n_components
        self.perplexity = perplexity
        self.n_iter = n_iter
        self.learning_rate = learning_rate
        self.init = init
        self.rng = rng
        self.kl_divergence_: "float | None" = None

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Embed ``features`` (n × d) into ``n_components`` dimensions."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {features.shape}")
        n = features.shape[0]
        if n < 4:
            raise ValueError("t-SNE needs at least 4 samples")
        perplexity = min(self.perplexity, (n - 2) / 3.0)
        generator = as_generator(self.rng)

        distances = _pairwise_squared_distances(features)
        conditional = _conditional_probabilities(distances, perplexity)
        joint = (conditional + conditional.T) / (2.0 * n)
        joint = np.maximum(joint, _EPS)

        if self.init == "pca" and features.shape[1] >= self.n_components:
            embedding = PCA(self.n_components).fit_transform(features)
            scale = embedding.std(axis=0).max()
            embedding = embedding / (scale if scale > 0 else 1.0) * 1e-2
        else:
            embedding = generator.normal(scale=1e-2, size=(n, self.n_components))

        exaggeration_steps = self.n_iter // 4
        velocity = np.zeros_like(embedding)
        gains = np.ones_like(embedding)
        for step in range(self.n_iter):
            p_matrix = joint * 12.0 if step < exaggeration_steps else joint
            momentum = 0.5 if step < exaggeration_steps else 0.8

            low_distances = _pairwise_squared_distances(embedding)
            student = 1.0 / (1.0 + low_distances)
            np.fill_diagonal(student, 0.0)
            q_matrix = np.maximum(student / max(student.sum(), _EPS), _EPS)

            coefficient = (p_matrix - q_matrix) * student
            gradient = 4.0 * (
                np.diag(coefficient.sum(axis=1)) - coefficient
            ) @ embedding

            same_sign = np.sign(gradient) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - self.learning_rate * gains * gradient
            embedding = embedding + velocity
            embedding = embedding - embedding.mean(axis=0)

        final_q = np.maximum(student / max(student.sum(), _EPS), _EPS)
        self.kl_divergence_ = float((joint * np.log(joint / final_q)).sum())
        return embedding

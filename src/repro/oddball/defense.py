"""Graph-purification defence: low-rank (SVD) approximation.

Section II of the paper points at Entezari et al. (WSDM 2020), "All you
need is low (rank)": structural poisoning tends to add high-frequency
perturbations, so truncating the adjacency spectrum and re-binarising can
scrub part of the poison before detection.  The paper lists this family of
defences but does not evaluate it against BinarizedAttack — this module
implements it as a reproduction extension so the defence benches can
compare it with the Huber/RANSAC estimators of Section VII.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_symmetric

__all__ = ["svd_purify", "purified_scores"]


def svd_purify(adjacency: np.ndarray, rank: int, threshold: float = 0.5) -> np.ndarray:
    """Rank-``rank`` spectral truncation of the adjacency, re-binarised.

    Steps: eigendecompose the (symmetric) adjacency, keep the ``rank``
    largest-magnitude eigenvalues, rebuild, then threshold entries at
    ``threshold`` to recover a valid simple graph (symmetric, binary, zero
    diagonal).

    Parameters
    ----------
    adjacency:
        Symmetric binary adjacency matrix (possibly poisoned).
    rank:
        Number of spectral components kept; Entezari et al. use small ranks
        (5–50) — poison concentrates in the discarded tail.
    threshold:
        Re-binarisation cutoff on the reconstructed entries.
    """
    adjacency = check_symmetric(np.asarray(adjacency, dtype=np.float64), "adjacency")
    n = adjacency.shape[0]
    if not 1 <= rank <= n:
        raise ValueError(f"rank must be in [1, {n}], got {rank}")
    eigenvalues, eigenvectors = np.linalg.eigh(adjacency)
    keep = np.argsort(-np.abs(eigenvalues))[:rank]
    reconstructed = (
        eigenvectors[:, keep] * eigenvalues[keep][None, :]
    ) @ eigenvectors[:, keep].T
    purified = (reconstructed >= threshold).astype(np.float64)
    purified = np.maximum(purified, purified.T)  # exact symmetry after thresholding
    np.fill_diagonal(purified, 0.0)
    return purified


def purified_scores(adjacency: np.ndarray, rank: int, threshold: float = 0.5) -> np.ndarray:
    """OddBall Eq. 3 scores computed on the SVD-purified graph.

    Nodes isolated by the purification receive score 0 (consistent with
    :func:`repro.oddball.scores.score_from_features`).
    """
    from repro.graph.features import egonet_features
    from repro.oddball.regression import fit_power_law
    from repro.oddball.scores import score_from_features

    purified = svd_purify(adjacency, rank=rank, threshold=threshold)
    n_feature, e_feature = egonet_features(purified)
    if ((n_feature >= 1.0) & (e_feature >= 1.0)).sum() < 2:
        raise ValueError(
            f"rank-{rank} purification left fewer than two non-isolated nodes; "
            "increase the rank or lower the threshold"
        )
    fit = fit_power_law(n_feature, e_feature)
    return score_from_features(n_feature, e_feature, fit)

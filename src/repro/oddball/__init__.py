"""OddBall: the target GAD system, its surrogate objective and robust variants."""

from repro.oddball.defense import purified_scores, svd_purify
from repro.oddball.detector import DetectionReport, OddBall
from repro.oddball.regression import (
    DEFAULT_RIDGE,
    PowerLawFit,
    fit_power_law,
    fit_power_law_tensor,
)
from repro.oddball.robust import fit_huber, fit_ransac, fit_with_estimator
from repro.oddball.scores import (
    anomaly_scores,
    anomaly_scores_with_fit,
    proxy_scores,
    score_from_features,
)
from repro.oddball.surrogate import (
    AUTO_SPARSE_NODE_THRESHOLD,
    SURROGATE_BACKENDS,
    DenseSurrogateEngine,
    SparseSurrogateEngine,
    SurrogateEngine,
    adjacency_gradient,
    feature_gradients,
    log_features,
    resolve_backend,
    surrogate_loss,
    surrogate_loss_from_features,
    surrogate_loss_numpy,
    target_residuals,
)

__all__ = [
    "AUTO_SPARSE_NODE_THRESHOLD",
    "DEFAULT_RIDGE",
    "DenseSurrogateEngine",
    "DetectionReport",
    "OddBall",
    "PowerLawFit",
    "SURROGATE_BACKENDS",
    "SparseSurrogateEngine",
    "SurrogateEngine",
    "adjacency_gradient",
    "anomaly_scores",
    "anomaly_scores_with_fit",
    "feature_gradients",
    "fit_huber",
    "fit_power_law",
    "fit_power_law_tensor",
    "fit_ransac",
    "fit_with_estimator",
    "log_features",
    "proxy_scores",
    "purified_scores",
    "resolve_backend",
    "score_from_features",
    "svd_purify",
    "surrogate_loss",
    "surrogate_loss_from_features",
    "surrogate_loss_numpy",
    "target_residuals",
]

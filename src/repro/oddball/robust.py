"""Robust power-law estimators — the paper's countermeasures (Section VII).

OLS is sensitive to the feature points the attacker drags around, so the
defence re-estimates the regression line with

* **Huber regression** (Huber 1964): IRLS with the Huber ψ-function, which
  penalises large residuals linearly instead of quadratically; and
* **RANSAC** (Fischler & Bolles 1981): repeated minimal-sample fits keeping
  the largest consensus set, final refit on the inliers.

Both expose the same ``(beta0, beta1)`` contract as the OLS fit so
:class:`~repro.oddball.detector.OddBall` can swap estimators.
"""

from __future__ import annotations

import numpy as np

from repro.oddball.regression import PowerLawFit, fit_power_law
from repro.utils.rng import as_generator

__all__ = ["fit_huber", "fit_ransac"]


def _prepare_log_features(
    n_feature: np.ndarray, e_feature: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    mask = (n_feature >= 1.0) & (e_feature >= 1.0)
    if mask.sum() < 2:
        raise ValueError("need at least two valid nodes for a robust fit")
    return np.log(n_feature[mask]), np.log(e_feature[mask])


def _weighted_line_fit(x: np.ndarray, y: np.ndarray, w: np.ndarray) -> tuple[float, float]:
    """Weighted least squares of y on [1, x]."""
    sw = w.sum()
    swx = (w * x).sum()
    swxx = (w * x * x).sum()
    swy = (w * y).sum()
    swxy = (w * x * y).sum()
    det = sw * swxx - swx * swx
    if abs(det) < 1e-12:
        return float(y.mean()), 0.0
    beta0 = (swxx * swy - swx * swxy) / det
    beta1 = (sw * swxy - swx * swy) / det
    return float(beta0), float(beta1)


def fit_huber(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    k: float = 1.345,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> PowerLawFit:
    """Huber M-estimation of the power law via IRLS.

    ``k`` is the Huber threshold in units of the residual scale (1.345 gives
    95% efficiency under Gaussian noise); the scale is re-estimated each
    iteration with the MAD.
    """
    if k <= 0:
        raise ValueError(f"Huber threshold k must be positive, got {k}")
    x, y = _prepare_log_features(n_feature, e_feature)
    beta0, beta1 = _weighted_line_fit(x, y, np.ones_like(x))
    for _ in range(max_iter):
        residuals = y - beta0 - beta1 * x
        scale = 1.4826 * np.median(np.abs(residuals - np.median(residuals)))
        scale = max(scale, 1e-9)
        standardized = np.abs(residuals) / scale
        weights = np.where(standardized <= k, 1.0, k / np.maximum(standardized, 1e-12))
        new_beta0, new_beta1 = _weighted_line_fit(x, y, weights)
        if abs(new_beta0 - beta0) < tol and abs(new_beta1 - beta1) < tol:
            beta0, beta1 = new_beta0, new_beta1
            break
        beta0, beta1 = new_beta0, new_beta1
    return PowerLawFit(beta0=beta0, beta1=beta1)


def fit_ransac(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    n_trials: int = 200,
    inlier_threshold: "float | None" = None,
    min_inliers: int = 2,
    rng=None,
) -> PowerLawFit:
    """RANSAC line fit in log-log space.

    Each trial fits a line through two random points and counts inliers
    within ``inlier_threshold`` (default: the MAD of OLS residuals); the
    consensus set of the best trial gets a final OLS refit.
    """
    generator = as_generator(rng)
    x, y = _prepare_log_features(n_feature, e_feature)
    n = len(x)
    if inlier_threshold is None:
        beta0, beta1 = _weighted_line_fit(x, y, np.ones_like(x))
        residuals = y - beta0 - beta1 * x
        inlier_threshold = max(1.4826 * np.median(np.abs(residuals)), 1e-6)

    best_mask: "np.ndarray | None" = None
    best_count = -1
    for _ in range(n_trials):
        i, j = generator.choice(n, size=2, replace=False)
        if abs(x[i] - x[j]) < 1e-12:
            continue
        slope = (y[j] - y[i]) / (x[j] - x[i])
        intercept = y[i] - slope * x[i]
        residuals = np.abs(y - intercept - slope * x)
        mask = residuals <= inlier_threshold
        count = int(mask.sum())
        if count > best_count:
            best_count = count
            best_mask = mask

    if best_mask is None or best_count < min_inliers:
        # Degenerate geometry (e.g. all x identical): fall back to OLS.
        beta0, beta1 = _weighted_line_fit(x, y, np.ones_like(x))
        return PowerLawFit(beta0=beta0, beta1=beta1)
    beta0, beta1 = _weighted_line_fit(x[best_mask], y[best_mask], np.ones(best_count))
    return PowerLawFit(beta0=beta0, beta1=beta1)


def fit_with_estimator(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    estimator: str = "ols",
    rng=None,
) -> PowerLawFit:
    """Dispatch to one of the supported estimators: ``ols``/``huber``/``ransac``."""
    estimator = estimator.lower()
    if estimator == "ols":
        return fit_power_law(n_feature, e_feature)
    if estimator == "huber":
        return fit_huber(n_feature, e_feature)
    if estimator == "ransac":
        return fit_ransac(n_feature, e_feature, rng=rng)
    raise ValueError(f"unknown estimator {estimator!r}; use 'ols', 'huber' or 'ransac'")

"""The OddBall detector — the paper's target GAD system (Section III).

Given a graph, :class:`OddBall` extracts egonet features, fits the Egonet
Density Power Law with a chosen estimator (OLS by default, Huber/RANSAC for
the robust countermeasure variants) and assigns each node the Eq. 3 anomaly
score.  Nodes exceeding a threshold (or in the top-k) are flagged anomalous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.features import egonet_features
from repro.graph.graph import Graph
from repro.oddball.regression import PowerLawFit
from repro.oddball.robust import fit_with_estimator
from repro.oddball.scores import score_from_features

__all__ = ["DetectionReport", "OddBall"]


@dataclass(frozen=True)
class DetectionReport:
    """Everything OddBall computed for one graph.

    The score ordering backing :meth:`top_k` and :meth:`rank_of` is computed
    lazily on first use and cached — callers that look up many ranks (the
    Fig. 5 case study walks every target at every budget) previously paid a
    fresh O(n log n) ``argsort`` per call.
    """

    scores: np.ndarray
    n_feature: np.ndarray
    e_feature: np.ndarray
    fit: PowerLawFit

    @property
    def _order(self) -> np.ndarray:
        """Node ids sorted by descending score (stable ties), cached."""
        cached = self.__dict__.get("_order_cache")
        if cached is None:
            cached = np.argsort(-self.scores, kind="stable")
            cached.flags.writeable = False
            object.__setattr__(self, "_order_cache", cached)
        return cached

    @property
    def _ranks(self) -> np.ndarray:
        """Inverse permutation of :attr:`_order` (node id -> rank), cached."""
        cached = self.__dict__.get("_ranks_cache")
        if cached is None:
            from repro.oddball.scores import rank_positions

            cached = rank_positions(self.scores, order=self._order)
            cached.flags.writeable = False
            object.__setattr__(self, "_ranks_cache", cached)
        return cached

    def top_k(self, k: int) -> np.ndarray:
        """Node ids of the k highest scores (descending, stable ties)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self._order[:k].copy()

    def rank_of(self, node: int) -> int:
        """Zero-based rank of ``node`` (0 = most anomalous)."""
        if not 0 <= node < len(self.scores):
            raise IndexError(
                f"node {node} out of range for {len(self.scores)} scored nodes"
            )
        return int(self._ranks[node])


class OddBall:
    """Regression-based egonet anomaly detector.

    Parameters
    ----------
    estimator:
        ``"ols"`` (the paper's default target), ``"huber"`` or ``"ransac"``
        (the Section VII countermeasures).
    rng:
        Seed/generator used only by the RANSAC estimator.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> graph = erdos_renyi(50, 0.2, rng=0)
    >>> report = OddBall().analyze(graph)
    >>> report.scores.shape
    (50,)
    """

    def __init__(self, estimator: str = "ols", rng=None):
        self.estimator = estimator
        self.rng = rng

    def analyze(self, graph: "Graph | np.ndarray") -> DetectionReport:
        """Score every node of ``graph`` (Graph or adjacency matrix)."""
        adjacency = graph.adjacency_view if isinstance(graph, Graph) else np.asarray(graph)
        n_feature, e_feature = egonet_features(adjacency)
        fit = fit_with_estimator(n_feature, e_feature, estimator=self.estimator, rng=self.rng)
        scores = score_from_features(n_feature, e_feature, fit)
        return DetectionReport(scores=scores, n_feature=n_feature, e_feature=e_feature, fit=fit)

    def scores(self, graph: "Graph | np.ndarray") -> np.ndarray:
        """Shorthand for ``analyze(graph).scores``."""
        return self.analyze(graph).scores

    def target_score_sum(self, graph: "Graph | np.ndarray", targets) -> float:
        """Σ of Eq. 3 scores over a target set — the attack's evaluation metric."""
        scores = self.scores(graph)
        targets = np.asarray(list(targets), dtype=np.intp)
        return float(scores[targets].sum())

    def label_anomalies(
        self,
        graph: "Graph | np.ndarray",
        fraction: "float | None" = None,
        threshold: "float | None" = None,
    ) -> np.ndarray:
        """Binary anomaly labels, by top-``fraction`` or absolute ``threshold``.

        This is the pre-processing step of the transfer attack (Section
        VI-B-1): OddBall scores become the supervision for GAL/ReFeX.
        """
        if (fraction is None) == (threshold is None):
            raise ValueError("provide exactly one of fraction or threshold")
        scores = self.scores(graph)
        labels = np.zeros(len(scores), dtype=np.int64)
        if fraction is not None:
            if not 0.0 < fraction < 1.0:
                raise ValueError(f"fraction must be in (0, 1), got {fraction}")
            k = max(int(round(fraction * len(scores))), 1)
            labels[np.argsort(-scores, kind="stable")[:k]] = 1
        else:
            labels[scores > threshold] = 1
        return labels

"""The differentiable attack objective (Eq. 5a / 8a).

Pipeline, entirely inside the autograd graph:

    adjacency A ──> (N, E) ──> (ln N, ln E) ──> closed-form OLS β ──>
    residuals (E_t − e^{β0} N_t^{β1}) on the target set ──> Σ residual².

``ln`` of the features is guarded by clamping at ``floor`` (default 1.0):
legitimate non-singleton nodes always have ``N ≥ 1`` and ``E ≥ N``, so the
clamp only activates on transient singleton states the optimiser may visit.

Two evaluation paths are provided:

* the **dense autograd path** (:func:`surrogate_loss`,
  :func:`adjacency_gradient` without ``candidates``) differentiates through
  the full ``(A @ A) ⊙ A`` egonet computation — exact but O(n³) per call;
* the **feature-space path** (:func:`surrogate_loss_from_features`,
  :func:`feature_gradients`, :func:`adjacency_gradient` *with*
  ``candidates``) works from precomputed ``(N, E)`` features — e.g. those
  maintained by :class:`repro.graph.incremental.IncrementalEgonetFeatures` —
  and scatters ∂loss/∂A only onto the requested candidate pairs using the
  closed-form chain rule, at O(m + |C|·deg) per call.  The two paths agree
  to floating-point round-off (verified in the tests).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from repro.autograd.ops import maximum
from repro.autograd.tensor import Tensor, as_tensor
from repro.graph.features import egonet_features_tensor
from repro.oddball.regression import DEFAULT_RIDGE, fit_power_law_tensor

__all__ = [
    "adjacency_gradient",
    "feature_gradients",
    "log_features",
    "surrogate_loss",
    "surrogate_loss_from_features",
    "surrogate_loss_numpy",
    "target_residuals",
]


def log_features(adjacency: Tensor, floor: float = 1.0) -> tuple[Tensor, Tensor, Tensor, Tensor]:
    """(N, E, ln N, ln E) from a (possibly relaxed) adjacency tensor."""
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature, e_feature = egonet_features_tensor(adjacency)
    floor_tensor_n = Tensor(np.full(n_feature.shape, floor))
    floor_tensor_e = Tensor(np.full(e_feature.shape, floor))
    log_n = maximum(n_feature, floor_tensor_n).log()
    log_e = maximum(e_feature, floor_tensor_e).log()
    return n_feature, e_feature, log_n, log_e


def target_residuals(
    adjacency: Tensor,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
) -> Tensor:
    """Vector of residuals ``E_t − e^{β0 + β1 ln N_t}`` over the target set."""
    targets = _validate_targets(targets, adjacency.shape[0])
    _, e_feature, log_n, log_e = log_features(adjacency, floor=floor)
    beta0, beta1 = fit_power_law_tensor(log_n, log_e, ridge=ridge)
    rho = beta0 + beta1 * log_n[targets]
    return e_feature[targets] - rho.exp()


def surrogate_loss(
    adjacency: Tensor,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> Tensor:
    """Scalar surrogate objective ``Σ_{t∈T} κ_t (E_t − e^{β0} N_t^{β1})²``.

    ``weights`` are the per-target importances κ of Section IV-B (the paper
    evaluates the equal-weight case κ ≡ 1, which is the default, and notes
    the extension to unequal weights — supported here).

    ``targets`` may be any iterable, including a one-shot generator: it is
    normalised to an index array once at entry and never consumed twice.
    """
    targets = _validate_targets(targets, adjacency.shape[0])
    residuals = target_residuals(adjacency, targets, floor=floor, ridge=ridge)
    squared = residuals * residuals
    if weights is not None:
        kappa = _validate_weights(weights, len(targets))
        squared = squared * Tensor(kappa)
    return squared.sum()


def surrogate_loss_numpy(
    adjacency: np.ndarray,
    targets: Sequence[int],
    weights: "Sequence[float] | None" = None,
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
) -> float:
    """Non-differentiable evaluation of the surrogate (for bookkeeping).

    ``floor`` must match the floor the caller optimises with — the attacks
    plumb their own ``floor`` through so candidate solutions are compared on
    the same objective they were produced by.
    """
    tensor = as_tensor(np.asarray(adjacency, dtype=np.float64))
    return float(
        surrogate_loss(tensor, targets, floor=floor, ridge=ridge, weights=weights).data
    )


def surrogate_loss_from_features(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> float:
    """Surrogate loss from precomputed egonet features, in O(n).

    Mirrors the tensor pipeline operation-for-operation so that, fed the
    exact integer-valued features maintained by the incremental engine, it
    returns bit-identical losses to :func:`surrogate_loss_numpy` on the
    materialised graph.
    """
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    targets = _validate_targets(targets, n_feature.shape[0])
    log_n = np.log(np.maximum(n_feature, floor))
    log_e = np.log(np.maximum(e_feature, floor))
    fit = _fit_power_law_numpy(log_n, log_e, ridge)
    rho = fit.beta0 + fit.beta1 * log_n[targets]
    residuals = e_feature[targets] - np.exp(rho)
    squared = residuals * residuals
    if weights is not None:
        squared = squared * _validate_weights(weights, len(targets))
    return float(squared.sum())


def feature_gradients(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form ``(∂L/∂N, ∂L/∂E)`` of the surrogate loss, in O(n).

    Differentiates the whole pipeline — log clamp, closed-form OLS β,
    residuals — with the same tie-splitting convention as the autograd
    ``maximum`` (gradient halves exactly at the clamp floor), so the result
    matches the autograd path to round-off.
    """
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    targets = _validate_targets(targets, n_feature.shape[0])
    kappa = (
        np.ones(len(targets))
        if weights is None
        else _validate_weights(weights, len(targets))
    )
    n = n_feature.shape[0]
    clamped_n = np.maximum(n_feature, floor)
    clamped_e = np.maximum(e_feature, floor)
    x = np.log(clamped_n)
    y = np.log(clamped_e)

    fit = _fit_power_law_numpy(x, y, ridge)
    sum_x, sum_xy, sum_y = fit.sum_x, fit.sum_xy, fit.sum_y
    a_term, c_term, det = fit.a_term, fit.c_term, fit.det
    num0, num1 = fit.num0, fit.num1
    beta0, beta1 = fit.beta0, fit.beta1

    rho = beta0 + beta1 * x[targets]
    exp_rho = np.exp(rho)
    residuals = e_feature[targets] - exp_rho

    d_residual = 2.0 * kappa * residuals
    d_rho = -d_residual * exp_rho
    d_beta0 = d_rho.sum()
    d_beta1 = (d_rho * x[targets]).sum()

    # β is a quotient of the feature sums; det depends on Sx and Sxx.
    det_sq = det * det
    d_sum_y = d_beta0 * (a_term / det) + d_beta1 * (-sum_x / det)
    d_sum_xy = d_beta0 * (-sum_x / det) + d_beta1 * (c_term / det)
    d_sum_x = (
        d_beta0 * (-sum_xy * det + 2.0 * sum_x * num0) / det_sq
        + d_beta1 * (-sum_y * det + 2.0 * sum_x * num1) / det_sq
    )
    d_sum_xx = (
        d_beta0 * (sum_y * det - num0 * c_term) / det_sq
        + d_beta1 * (-num1 * c_term) / det_sq
    )

    d_x = np.full(n, d_sum_x) + 2.0 * x * d_sum_xx + y * d_sum_xy
    d_y = np.full(n, d_sum_y) + x * d_sum_xy
    d_x[targets] += d_rho * beta1

    def clamp_chain(feature: np.ndarray, clamped: np.ndarray) -> np.ndarray:
        wins = (feature > floor).astype(np.float64)
        tie = (feature == floor).astype(np.float64) * 0.5
        return (wins + tie) / clamped

    d_n = d_x * clamp_chain(n_feature, clamped_n)
    d_e = d_y * clamp_chain(e_feature, clamped_e)
    d_e[targets] += d_residual
    return d_n, d_e


def adjacency_gradient(
    adjacency,
    targets: Sequence[int],
    floor: float = 1.0,
    weights: "Sequence[float] | None" = None,
    candidates=None,
    features: "tuple[np.ndarray, np.ndarray] | None" = None,
    ridge: float = DEFAULT_RIDGE,
) -> np.ndarray:
    """∂(surrogate loss)/∂A — dense matrix, or scattered onto candidates.

    Without ``candidates`` this evaluates the full differentiable pipeline
    at the *discrete* current graph and returns a dense, symmetrised
    gradient matrix with zeroed diagonal, as the seed implementation did.

    With ``candidates`` — a :class:`repro.attacks.candidates.CandidateSet`
    or a ``(rows, cols)`` pair of canonical index arrays — the gradient is
    computed sparsely: the closed-form per-feature gradients are scattered
    only onto the requested pairs via

        ``g_{uv} = ∂L/∂N_u + ∂L/∂N_v + (∂L/∂E_u + ∂L/∂E_v)(1 + c_{uv})
        + Σ_{w ∈ Γ(u) ∩ Γ(v)} ∂L/∂E_w``

    (``c_{uv}`` = common-neighbour count), returning a 1-D vector aligned
    with the candidate pairs that equals the dense matrix's entries at those
    positions.  ``adjacency`` may then be a scipy sparse matrix, and
    ``features`` may supply precomputed ``(N, E)`` (e.g. from the
    incremental engine) to skip the O(m) feature pass.
    """
    if candidates is None:
        tensor = Tensor(np.asarray(adjacency, dtype=np.float64), requires_grad=True)
        loss = surrogate_loss(tensor, targets, floor=floor, weights=weights, ridge=ridge)
        loss.backward()
        grad = tensor.grad
        assert grad is not None
        symmetric = grad + grad.T
        np.fill_diagonal(symmetric, 0.0)
        return symmetric

    from repro.graph.sparse import egonet_features_sparse, to_sparse

    rows, cols = _candidate_arrays(candidates)
    csr = to_sparse(adjacency)
    if features is None:
        n_feature, e_feature = egonet_features_sparse(csr)
    else:
        n_feature, e_feature = features
    d_n, d_e = feature_gradients(
        n_feature, e_feature, targets, floor=floor, ridge=ridge, weights=weights
    )
    return _scatter_pair_gradient(csr, d_n, d_e, rows, cols)


def _candidate_arrays(candidates) -> tuple[np.ndarray, np.ndarray]:
    """Normalise a CandidateSet-like object or (rows, cols) pair."""
    if hasattr(candidates, "rows") and hasattr(candidates, "cols"):
        rows, cols = candidates.rows, candidates.cols
    else:
        rows, cols = candidates
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError(
            f"candidate rows/cols must be aligned 1-D arrays, got {rows.shape}, {cols.shape}"
        )
    if rows.size and (rows.min() < 0 or np.any(rows >= cols)):
        raise ValueError("candidate pairs must be canonical (0 <= u < v)")
    return rows, cols


def _scatter_pair_gradient(
    csr, d_n: np.ndarray, d_e: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Evaluate the pair gradient at each candidate, grouping by hub endpoint.

    Pairs are grouped by their more-frequent endpoint; each group costs one
    O(m) sparse mat-vec, so target-incident candidate sets need only |T|
    passes over the edge list.
    """
    gradient = d_n[rows] + d_n[cols] + d_e[rows] + d_e[cols]
    if rows.size == 0:
        return gradient
    n = csr.shape[0]
    occurrences = np.bincount(rows, minlength=n) + np.bincount(cols, minlength=n)
    by_row = occurrences[rows] >= occurrences[cols]
    keys = np.where(by_row, rows, cols)
    others = np.where(by_row, cols, rows)
    # One stable sort groups the pairs by hub; walking the group boundaries
    # keeps the whole scatter at O(|C| log |C| + U·m) instead of re-scanning
    # all |C| pairs once per hub.
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    for group in np.split(order, boundaries):
        hub = int(keys[group[0]])
        hub_row = np.zeros(n)
        start, stop = csr.indptr[hub], csr.indptr[hub + 1]
        hub_row[csr.indices[start:stop]] = csr.data[start:stop]
        common_counts = csr @ hub_row
        common_weighted = csr @ (hub_row * d_e)
        partners = others[group]
        gradient[group] += (
            (d_e[hub] + d_e[partners]) * common_counts[partners]
            + common_weighted[partners]
        )
    return gradient


class _OLSFit(NamedTuple):
    """Closed-form ridge OLS with the intermediates the chain rule needs."""

    beta0: float
    beta1: float
    sum_x: float
    sum_xx: float
    sum_y: float
    sum_xy: float
    a_term: float  # sum_xx + ridge
    c_term: float  # count + ridge
    det: float
    num0: float  # beta0 numerator
    num1: float  # beta1 numerator


def _fit_power_law_numpy(log_n: np.ndarray, log_e: np.ndarray, ridge: float) -> _OLSFit:
    """Numpy mirror of :func:`fit_power_law_tensor` (same operation order).

    This is the single numpy copy of the closed-form fit: both the feature-
    space loss and :func:`feature_gradients` consume it, so the bit-for-bit
    agreement with the autograd path has exactly two expressions to keep in
    sync (this one and ``fit_power_law_tensor``), not three.
    """
    count = float(log_n.size)
    sum_x = log_n.sum()
    sum_xx = (log_n * log_n).sum()
    sum_y = log_e.sum()
    sum_xy = (log_n * log_e).sum()
    a_term = sum_xx + ridge
    c_term = count + ridge
    det = a_term * c_term - sum_x * sum_x
    num0 = a_term * sum_y - sum_x * sum_xy
    num1 = sum_xy * c_term - sum_x * sum_y
    return _OLSFit(
        beta0=num0 / det,
        beta1=num1 / det,
        sum_x=sum_x,
        sum_xx=sum_xx,
        sum_y=sum_y,
        sum_xy=sum_xy,
        a_term=a_term,
        c_term=c_term,
        det=det,
        num0=num0,
        num1=num1,
    )


def _validate_weights(weights: Sequence[float], n_targets: int) -> np.ndarray:
    kappa = np.asarray(list(weights), dtype=np.float64)
    if kappa.shape != (n_targets,):
        raise ValueError(
            f"weights must align with targets ({n_targets}), got shape {kappa.shape}"
        )
    if (kappa < 0).any():
        raise ValueError("target weights must be non-negative")
    return kappa


def _validate_targets(targets: Sequence[int], n: int) -> np.ndarray:
    targets = np.asarray(list(targets), dtype=np.intp)
    if targets.size == 0:
        raise ValueError("target set must not be empty")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError(f"target ids must lie in [0, {n}), got range "
                         f"[{targets.min()}, {targets.max()}]")
    if len(np.unique(targets)) != len(targets):
        raise ValueError("target ids must be unique")
    return targets

"""The differentiable attack objective (Eq. 5a / 8a).

Pipeline, entirely inside the autograd graph:

    adjacency A ──> (N, E) ──> (ln N, ln E) ──> closed-form OLS β ──>
    residuals (E_t − e^{β0} N_t^{β1}) on the target set ──> Σ residual².

``ln`` of the features is guarded by clamping at ``floor`` (default 1.0):
legitimate non-singleton nodes always have ``N ≥ 1`` and ``E ≥ N``, so the
clamp only activates on transient singleton states the optimiser may visit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd.ops import maximum
from repro.autograd.tensor import Tensor, as_tensor
from repro.graph.features import egonet_features_tensor
from repro.oddball.regression import DEFAULT_RIDGE, fit_power_law_tensor

__all__ = [
    "adjacency_gradient",
    "log_features",
    "surrogate_loss",
    "surrogate_loss_numpy",
    "target_residuals",
]


def log_features(adjacency: Tensor, floor: float = 1.0) -> tuple[Tensor, Tensor, Tensor, Tensor]:
    """(N, E, ln N, ln E) from a (possibly relaxed) adjacency tensor."""
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature, e_feature = egonet_features_tensor(adjacency)
    floor_tensor_n = Tensor(np.full(n_feature.shape, floor))
    floor_tensor_e = Tensor(np.full(e_feature.shape, floor))
    log_n = maximum(n_feature, floor_tensor_n).log()
    log_e = maximum(e_feature, floor_tensor_e).log()
    return n_feature, e_feature, log_n, log_e


def target_residuals(
    adjacency: Tensor,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
) -> Tensor:
    """Vector of residuals ``E_t − e^{β0 + β1 ln N_t}`` over the target set."""
    targets = _validate_targets(targets, adjacency.shape[0])
    _, e_feature, log_n, log_e = log_features(adjacency, floor=floor)
    beta0, beta1 = fit_power_law_tensor(log_n, log_e, ridge=ridge)
    rho = beta0 + beta1 * log_n[targets]
    return e_feature[targets] - rho.exp()


def surrogate_loss(
    adjacency: Tensor,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> Tensor:
    """Scalar surrogate objective ``Σ_{t∈T} κ_t (E_t − e^{β0} N_t^{β1})²``.

    ``weights`` are the per-target importances κ of Section IV-B (the paper
    evaluates the equal-weight case κ ≡ 1, which is the default, and notes
    the extension to unequal weights — supported here).
    """
    residuals = target_residuals(adjacency, targets, floor=floor, ridge=ridge)
    squared = residuals * residuals
    if weights is not None:
        kappa = _validate_weights(weights, len(list(targets)))
        squared = squared * Tensor(kappa)
    return squared.sum()


def surrogate_loss_numpy(
    adjacency: np.ndarray,
    targets: Sequence[int],
    weights: "Sequence[float] | None" = None,
) -> float:
    """Non-differentiable evaluation of the surrogate (for bookkeeping)."""
    tensor = as_tensor(np.asarray(adjacency, dtype=np.float64))
    return float(surrogate_loss(tensor, targets, weights=weights).data)


def adjacency_gradient(
    adjacency: np.ndarray,
    targets: Sequence[int],
    floor: float = 1.0,
    weights: "Sequence[float] | None" = None,
) -> np.ndarray:
    """∂(surrogate loss)/∂A, symmetrised, with zeroed diagonal.

    Convenience for GradMaxSearch: evaluates the full differentiable pipeline
    at the *discrete* current graph and returns a dense gradient matrix whose
    (i, j) entry is the sensitivity of the loss to the pair {i, j}.
    """
    tensor = Tensor(np.asarray(adjacency, dtype=np.float64), requires_grad=True)
    loss = surrogate_loss(tensor, targets, floor=floor, weights=weights)
    loss.backward()
    grad = tensor.grad
    assert grad is not None
    symmetric = grad + grad.T
    np.fill_diagonal(symmetric, 0.0)
    return symmetric


def _validate_weights(weights: Sequence[float], n_targets: int) -> np.ndarray:
    kappa = np.asarray(list(weights), dtype=np.float64)
    if kappa.shape != (n_targets,):
        raise ValueError(
            f"weights must align with targets ({n_targets}), got shape {kappa.shape}"
        )
    if (kappa < 0).any():
        raise ValueError("target weights must be non-negative")
    return kappa


def _validate_targets(targets: Sequence[int], n: int) -> np.ndarray:
    targets = np.asarray(list(targets), dtype=np.intp)
    if targets.size == 0:
        raise ValueError("target set must not be empty")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError(f"target ids must lie in [0, {n}), got range "
                         f"[{targets.min()}, {targets.max()}]")
    if len(np.unique(targets)) != len(targets):
        raise ValueError("target ids must be unique")
    return targets

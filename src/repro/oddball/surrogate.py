"""The differentiable attack objective (Eq. 5a / 8a).

Pipeline, entirely inside the autograd graph:

    adjacency A ──> (N, E) ──> (ln N, ln E) ──> closed-form OLS β ──>
    residuals (E_t − e^{β0} N_t^{β1}) on the target set ──> Σ residual².

``ln`` of the features is guarded by clamping at ``floor`` (default 1.0):
legitimate non-singleton nodes always have ``N ≥ 1`` and ``E ≥ N``, so the
clamp only activates on transient singleton states the optimiser may visit.

Two evaluation paths are provided:

* the **dense autograd path** (:func:`surrogate_loss`,
  :func:`adjacency_gradient` without ``candidates``) differentiates through
  the full ``(A @ A) ⊙ A`` egonet computation — exact but O(n³) per call;
* the **feature-space path** (:func:`surrogate_loss_from_features`,
  :func:`feature_gradients`, :func:`adjacency_gradient` *with*
  ``candidates``) works from precomputed ``(N, E)`` features — e.g. those
  maintained by :class:`repro.graph.incremental.IncrementalEgonetFeatures` —
  and scatters ∂loss/∂A only onto the requested candidate pairs using the
  closed-form chain rule, at O(m + |C|·deg) per call.  The two paths agree
  to floating-point round-off (verified in the tests).

Surrogate engines
-----------------

:class:`SurrogateEngine` packages the two paths behind one stateful
interface the attacks drive their optimisation loops through.  Two
interchangeable backends exist:

* :class:`DenseSurrogateEngine` (``backend="dense"``) replays the exact
  autograd op sequence the attacks historically used — it is the
  *reference* implementation, bit-for-bit identical to the pre-engine
  behaviour, but O(n³) per forward and O(n²) in memory;
* :class:`SparseSurrogateEngine` (``backend="sparse"``) never materialises
  a dense matrix: it maintains ``(N, E)`` with
  :class:`~repro.graph.incremental.IncrementalEgonetFeatures`, evaluates
  each discrete iterate by *applying* its flip set (O(deg) per flip),
  scoring from features (O(n)) and *rolling the flips back*, and produces
  the straight-through gradient by scattering the closed-form per-pair
  derivatives onto the candidate set only.  BinarizedAttack's whole λ-sweep
  runs on one engine instance at O(Σ deg + n + |C|) per PGD iteration,
  which is what makes the attack feasible on 10k+-node graphs.

``backend="auto"`` (the default everywhere) picks the sparse backend for
scipy-sparse inputs and for graphs with at least
:data:`AUTO_SPARSE_NODE_THRESHOLD` nodes, and the dense reference backend
otherwise — so small dense call sites keep their historical bit-for-bit
behaviour while large or sparse inputs transparently get the O(m) path.
The backends agree to floating-point round-off (loss values are
bit-identical; gradients differ only in summation order — see the
engine-parity suite in ``tests/oddball/test_engine.py``).
"""

from __future__ import annotations

import abc
import time
from typing import NamedTuple, Sequence

import numpy as np
from scipy import sparse as _sparse

from repro import telemetry as _telemetry
from repro.autograd.ops import apply_pair_flips, binarize_ste, maximum, symmetric_from_upper
from repro.autograd.tensor import Tensor, as_tensor
from repro.graph.features import egonet_features_tensor
from repro.kernels import validate_kernels
from repro.oddball.regression import DEFAULT_RIDGE, fit_power_law_tensor

__all__ = [
    "AUTO_SPARSE_NODE_THRESHOLD",
    "DenseSurrogateEngine",
    "EngineSpec",
    "SURROGATE_BACKENDS",
    "SparseSurrogateEngine",
    "SurrogateEngine",
    "adjacency_gradient",
    "feature_gradients",
    "log_features",
    "resolve_backend",
    "surrogate_loss",
    "surrogate_loss_from_features",
    "surrogate_loss_numpy",
    "target_residuals",
    "validate_backend",
]

#: Recognised values of the ``backend`` argument threaded through the attacks.
SURROGATE_BACKENDS = ("auto", "dense", "sparse")

#: ``backend="auto"`` switches to the sparse-incremental engine at this many
#: nodes (dense inputs below it keep the bit-for-bit dense reference path).
AUTO_SPARSE_NODE_THRESHOLD = 1500


def log_features(adjacency: Tensor, floor: float = 1.0) -> tuple[Tensor, Tensor, Tensor, Tensor]:
    """(N, E, ln N, ln E) from a (possibly relaxed) adjacency tensor."""
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature, e_feature = egonet_features_tensor(adjacency)
    floor_tensor_n = Tensor(np.full(n_feature.shape, floor))
    floor_tensor_e = Tensor(np.full(e_feature.shape, floor))
    log_n = maximum(n_feature, floor_tensor_n).log()
    log_e = maximum(e_feature, floor_tensor_e).log()
    return n_feature, e_feature, log_n, log_e


def target_residuals(
    adjacency: Tensor,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
) -> Tensor:
    """Vector of residuals ``E_t − e^{β0 + β1 ln N_t}`` over the target set."""
    targets = _validate_targets(targets, adjacency.shape[0])
    _, e_feature, log_n, log_e = log_features(adjacency, floor=floor)
    beta0, beta1 = fit_power_law_tensor(log_n, log_e, ridge=ridge)
    rho = beta0 + beta1 * log_n[targets]
    return e_feature[targets] - rho.exp()


def surrogate_loss(
    adjacency: Tensor,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> Tensor:
    """Scalar surrogate objective ``Σ_{t∈T} κ_t (E_t − e^{β0} N_t^{β1})²``.

    ``weights`` are the per-target importances κ of Section IV-B (the paper
    evaluates the equal-weight case κ ≡ 1, which is the default, and notes
    the extension to unequal weights — supported here).

    ``targets`` may be any iterable, including a one-shot generator: it is
    normalised to an index array once at entry and never consumed twice.
    """
    targets = _validate_targets(targets, adjacency.shape[0])
    residuals = target_residuals(adjacency, targets, floor=floor, ridge=ridge)
    squared = residuals * residuals
    if weights is not None:
        kappa = _validate_weights(weights, len(targets))
        squared = squared * Tensor(kappa)
    return squared.sum()


def surrogate_loss_numpy(
    adjacency: np.ndarray,
    targets: Sequence[int],
    weights: "Sequence[float] | None" = None,
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
) -> float:
    """Non-differentiable evaluation of the surrogate (for bookkeeping).

    ``floor`` must match the floor the caller optimises with — the attacks
    plumb their own ``floor`` through so candidate solutions are compared on
    the same objective they were produced by.

    ``adjacency`` may be a scipy sparse matrix: it is evaluated natively
    through the sparse feature kernels (``np.asarray`` on a sparse matrix
    would silently wrap it in a 0-d object array instead of densifying,
    which used to crash deep inside the tensor pipeline).
    """
    if _sparse.issparse(adjacency):
        from repro.graph.sparse import egonet_features_sparse

        n_feature, e_feature = egonet_features_sparse(adjacency)
        return surrogate_loss_from_features(
            n_feature, e_feature, targets, floor=floor, ridge=ridge, weights=weights
        )
    tensor = as_tensor(np.asarray(adjacency, dtype=np.float64))
    return float(
        surrogate_loss(tensor, targets, floor=floor, ridge=ridge, weights=weights).data
    )


def surrogate_loss_from_features(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> float:
    """Surrogate loss from precomputed egonet features, in O(n).

    Mirrors the tensor pipeline operation-for-operation so that, fed the
    exact integer-valued features maintained by the incremental engine, it
    returns bit-identical losses to :func:`surrogate_loss_numpy` on the
    materialised graph.
    """
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    targets = _validate_targets(targets, n_feature.shape[0])
    log_n = np.log(np.maximum(n_feature, floor))
    log_e = np.log(np.maximum(e_feature, floor))
    fit = _fit_power_law_numpy(log_n, log_e, ridge)
    rho = fit.beta0 + fit.beta1 * log_n[targets]
    residuals = e_feature[targets] - np.exp(rho)
    squared = residuals * residuals
    if weights is not None:
        squared = squared * _validate_weights(weights, len(targets))
    return float(squared.sum())


def feature_gradients(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    targets: Sequence[int],
    floor: float = 1.0,
    ridge: float = DEFAULT_RIDGE,
    weights: "Sequence[float] | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form ``(∂L/∂N, ∂L/∂E)`` of the surrogate loss, in O(n).

    Differentiates the whole pipeline — log clamp, closed-form OLS β,
    residuals — with the same tie-splitting convention as the autograd
    ``maximum`` (gradient halves exactly at the clamp floor), so the result
    matches the autograd path to round-off.
    """
    if floor <= 0.0:
        raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    targets = _validate_targets(targets, n_feature.shape[0])
    kappa = (
        np.ones(len(targets))
        if weights is None
        else _validate_weights(weights, len(targets))
    )
    n = n_feature.shape[0]
    clamped_n = np.maximum(n_feature, floor)
    clamped_e = np.maximum(e_feature, floor)
    x = np.log(clamped_n)
    y = np.log(clamped_e)

    fit = _fit_power_law_numpy(x, y, ridge)
    sum_x, sum_xy, sum_y = fit.sum_x, fit.sum_xy, fit.sum_y
    a_term, c_term, det = fit.a_term, fit.c_term, fit.det
    num0, num1 = fit.num0, fit.num1
    beta0, beta1 = fit.beta0, fit.beta1

    rho = beta0 + beta1 * x[targets]
    exp_rho = np.exp(rho)
    residuals = e_feature[targets] - exp_rho

    d_residual = 2.0 * kappa * residuals
    d_rho = -d_residual * exp_rho
    d_beta0 = d_rho.sum()
    d_beta1 = (d_rho * x[targets]).sum()

    # β is a quotient of the feature sums; det depends on Sx and Sxx.
    det_sq = det * det
    d_sum_y = d_beta0 * (a_term / det) + d_beta1 * (-sum_x / det)
    d_sum_xy = d_beta0 * (-sum_x / det) + d_beta1 * (c_term / det)
    d_sum_x = (
        d_beta0 * (-sum_xy * det + 2.0 * sum_x * num0) / det_sq
        + d_beta1 * (-sum_y * det + 2.0 * sum_x * num1) / det_sq
    )
    d_sum_xx = (
        d_beta0 * (sum_y * det - num0 * c_term) / det_sq
        + d_beta1 * (-num1 * c_term) / det_sq
    )

    d_x = np.full(n, d_sum_x) + 2.0 * x * d_sum_xx + y * d_sum_xy
    d_y = np.full(n, d_sum_y) + x * d_sum_xy
    d_x[targets] += d_rho * beta1

    def clamp_chain(feature: np.ndarray, clamped: np.ndarray) -> np.ndarray:
        """∂(log max(f, floor))/∂f with the autograd tie-split at the floor."""
        wins = (feature > floor).astype(np.float64)
        tie = (feature == floor).astype(np.float64) * 0.5
        return (wins + tie) / clamped

    d_n = d_x * clamp_chain(n_feature, clamped_n)
    d_e = d_y * clamp_chain(e_feature, clamped_e)
    d_e[targets] += d_residual
    return d_n, d_e


def adjacency_gradient(
    adjacency,
    targets: Sequence[int],
    floor: float = 1.0,
    weights: "Sequence[float] | None" = None,
    candidates=None,
    features: "tuple[np.ndarray, np.ndarray] | None" = None,
    ridge: float = DEFAULT_RIDGE,
) -> np.ndarray:
    """∂(surrogate loss)/∂A — dense matrix, or scattered onto candidates.

    Without ``candidates`` this evaluates the full differentiable pipeline
    at the *discrete* current graph and returns a dense, symmetrised
    gradient matrix with zeroed diagonal, as the seed implementation did.

    With ``candidates`` — a :class:`repro.attacks.candidates.CandidateSet`
    or a ``(rows, cols)`` pair of canonical index arrays — the gradient is
    computed sparsely: the closed-form per-feature gradients are scattered
    only onto the requested pairs via

        ``g_{uv} = ∂L/∂N_u + ∂L/∂N_v + (∂L/∂E_u + ∂L/∂E_v)(1 + c_{uv})
        + Σ_{w ∈ Γ(u) ∩ Γ(v)} ∂L/∂E_w``

    (``c_{uv}`` = common-neighbour count), returning a 1-D vector aligned
    with the candidate pairs that equals the dense matrix's entries at those
    positions.  ``adjacency`` may then be a scipy sparse matrix, and
    ``features`` may supply precomputed ``(N, E)`` (e.g. from the
    incremental engine) to skip the O(m) feature pass.
    """
    if candidates is None:
        tensor = Tensor(np.asarray(adjacency, dtype=np.float64), requires_grad=True)
        loss = surrogate_loss(tensor, targets, floor=floor, weights=weights, ridge=ridge)
        loss.backward()
        grad = tensor.grad
        assert grad is not None
        symmetric = grad + grad.T
        np.fill_diagonal(symmetric, 0.0)
        return symmetric

    from repro.graph.sparse import egonet_features_sparse, to_sparse

    rows, cols = _candidate_arrays(candidates)
    csr = to_sparse(adjacency)
    if features is None:
        n_feature, e_feature = egonet_features_sparse(csr)
    else:
        n_feature, e_feature = features
    d_n, d_e = feature_gradients(
        n_feature, e_feature, targets, floor=floor, ridge=ridge, weights=weights
    )
    return _scatter_pair_gradient(csr, d_n, d_e, rows, cols)


def _candidate_arrays(candidates) -> tuple[np.ndarray, np.ndarray]:
    """Normalise a CandidateSet-like object or (rows, cols) pair."""
    if hasattr(candidates, "rows") and hasattr(candidates, "cols"):
        rows, cols = candidates.rows, candidates.cols
    else:
        rows, cols = candidates
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError(
            f"candidate rows/cols must be aligned 1-D arrays, got {rows.shape}, {cols.shape}"
        )
    if rows.size and (rows.min() < 0 or np.any(rows >= cols)):
        raise ValueError("candidate pairs must be canonical (0 <= u < v)")
    return rows, cols


def _scatter_pair_gradient(
    csr,
    d_n: np.ndarray,
    d_e: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    delta: "Sequence[tuple[int, int, float]]" = (),
) -> np.ndarray:
    """Evaluate the pair gradient at each candidate, grouping by hub endpoint.

    Pairs are grouped by their more-frequent endpoint; each group costs one
    O(m) sparse mat-vec, so target-incident candidate sets need only |T|
    passes over the edge list.

    ``delta`` is an optional overlay of symmetric perturbations: each
    ``(u, v, d)`` entry means the evaluated adjacency is ``csr`` with
    ``A[u, v] = A[v, u] = csr[u, v] + d``.  The sparse engine uses it to
    evaluate the gradient at a transiently-flipped graph without rebuilding
    the CSR — the overlay is folded into the hub rows and mat-vec results
    in O(|delta|) extra work per hub.
    """
    gradient = d_n[rows] + d_n[cols] + d_e[rows] + d_e[cols]
    if rows.size == 0:
        return gradient
    n = csr.shape[0]
    occurrences = np.bincount(rows, minlength=n) + np.bincount(cols, minlength=n)
    by_row = occurrences[rows] >= occurrences[cols]
    keys = np.where(by_row, rows, cols)
    others = np.where(by_row, cols, rows)
    # One stable sort groups the pairs by hub; walking the group boundaries
    # keeps the whole scatter at O(|C| log |C| + U·m) instead of re-scanning
    # all |C| pairs once per hub.
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    for group in np.split(order, boundaries):
        hub = int(keys[group[0]])
        hub_row = np.zeros(n)
        start, stop = csr.indptr[hub], csr.indptr[hub + 1]
        hub_row[csr.indices[start:stop]] = csr.data[start:stop]
        for u, v, d in delta:
            if u == hub:
                hub_row[v] += d
            elif v == hub:
                hub_row[u] += d
        common_counts = csr @ hub_row
        common_weighted = csr @ (hub_row * d_e)
        # Fold the Δ part of (csr + Δ) @ x into the mat-vec results:
        # (Δ x)[u] = d·x[v] and (Δ x)[v] = d·x[u] for each overlay entry.
        for u, v, d in delta:
            common_counts[u] += d * hub_row[v]
            common_counts[v] += d * hub_row[u]
            common_weighted[u] += d * hub_row[v] * d_e[v]
            common_weighted[v] += d * hub_row[u] * d_e[u]
        partners = others[group]
        gradient[group] += (
            (d_e[hub] + d_e[partners]) * common_counts[partners]
            + common_weighted[partners]
        )
    return gradient


class _OLSFit(NamedTuple):
    """Closed-form ridge OLS with the intermediates the chain rule needs."""

    beta0: float
    beta1: float
    sum_x: float
    sum_xx: float
    sum_y: float
    sum_xy: float
    a_term: float  # sum_xx + ridge
    c_term: float  # count + ridge
    det: float
    num0: float  # beta0 numerator
    num1: float  # beta1 numerator


def _fit_power_law_numpy(log_n: np.ndarray, log_e: np.ndarray, ridge: float) -> _OLSFit:
    """Numpy mirror of :func:`fit_power_law_tensor` (same operation order).

    This is the single numpy copy of the closed-form fit: both the feature-
    space loss and :func:`feature_gradients` consume it, so the bit-for-bit
    agreement with the autograd path has exactly two expressions to keep in
    sync (this one and ``fit_power_law_tensor``), not three.
    """
    count = float(log_n.size)
    sum_x = log_n.sum()
    sum_xx = (log_n * log_n).sum()
    sum_y = log_e.sum()
    sum_xy = (log_n * log_e).sum()
    a_term = sum_xx + ridge
    c_term = count + ridge
    det = a_term * c_term - sum_x * sum_x
    num0 = a_term * sum_y - sum_x * sum_xy
    num1 = sum_xy * c_term - sum_x * sum_y
    return _OLSFit(
        beta0=num0 / det,
        beta1=num1 / det,
        sum_x=sum_x,
        sum_xx=sum_xx,
        sum_y=sum_y,
        sum_xy=sum_xy,
        a_term=a_term,
        c_term=c_term,
        det=det,
        num0=num0,
        num1=num1,
    )


def _validate_weights(weights: Sequence[float], n_targets: int) -> np.ndarray:
    kappa = np.asarray(list(weights), dtype=np.float64)
    if kappa.shape != (n_targets,):
        raise ValueError(
            f"weights must align with targets ({n_targets}), got shape {kappa.shape}"
        )
    if (kappa < 0).any():
        raise ValueError("target weights must be non-negative")
    return kappa


def _validate_targets(targets: Sequence[int], n: int) -> np.ndarray:
    targets = np.asarray(list(targets), dtype=np.intp)
    if targets.size == 0:
        raise ValueError("target set must not be empty")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError(f"target ids must lie in [0, {n}), got range "
                         f"[{targets.min()}, {targets.max()}]")
    if len(np.unique(targets)) != len(targets):
        raise ValueError("target ids must be unique")
    return targets


# --------------------------------------------------------------------- #
# Surrogate engines
# --------------------------------------------------------------------- #


def validate_backend(backend: str) -> str:
    """Check a ``backend`` argument (shared by every attack constructor)."""
    if backend not in SURROGATE_BACKENDS:
        raise ValueError(
            f"unknown surrogate backend {backend!r}; choose from {SURROGATE_BACKENDS}"
        )
    return backend


def resolve_backend(backend: str, graph) -> str:
    """Resolve a ``backend`` argument to ``"dense"`` or ``"sparse"``.

    ``"auto"`` picks ``"sparse"`` for scipy-sparse inputs and for graphs
    with at least :data:`AUTO_SPARSE_NODE_THRESHOLD` nodes; everything else
    keeps the bit-for-bit dense reference path.  ``graph`` may be a dense
    array, a scipy sparse matrix, or any object exposing ``shape`` or
    ``number_of_nodes``.
    """
    validate_backend(backend)
    if backend != "auto":
        return backend
    if _sparse.issparse(graph):
        return "sparse"
    if hasattr(graph, "shape"):
        n = int(graph.shape[0])
    else:
        n = int(graph.number_of_nodes)
    return "sparse" if n >= AUTO_SPARSE_NODE_THRESHOLD else "dense"


class EngineSpec(NamedTuple):
    """Picklable recipe for rebuilding a :class:`SurrogateEngine`.

    The parallel campaign executor ships one spec to every worker process;
    each worker calls :meth:`build` once and drains its whole job shard on
    the resulting engine.  The payload is the *graph itself* (dense array
    bytes or CSR component arrays) plus the scalar engine configuration —
    everything a child process needs, nothing it can recompute.

    Attributes
    ----------
    backend : str
        Resolved backend name (``"dense"`` or ``"sparse"`` — never
        ``"auto"``, so every worker builds the identical engine class).
    kind : str
        Graph payload encoding: ``"dense"`` (one ndarray), ``"csr"``
        (``(data, indices, indptr, shape)`` component tuple) or ``"store"``
        (one :class:`~repro.store.GraphStore` directory path — the worker
        memory-maps the graph instead of receiving a multi-MB array
        payload, so N workers share one page-cached copy).
    payload : tuple
        The encoded graph arrays (or the store path string).
    floor : float
        Log-clamp floor the engine was (or will be) configured with.
    ridge : float
        Ridge term of the closed-form power-law fit.
    fingerprint : str or None
        Graph-identity token (``_repro_fingerprint``) carried across the
        spec round-trip.  A store-tagged CSR fingerprints its checkpoints
        by this token; without re-applying it in :meth:`to_graph`, a
        worker rebuilding from byte payload would derive a *different*
        checkpoint fingerprint than its parent and every shard merge
        would be rejected.
    kernels : str
        The *requested* hot-kernel flag (``auto``/``numpy``/``compiled``
        — see :mod:`repro.kernels`).  Unlike ``backend``, this is
        deliberately NOT pre-resolved: availability of the compiled
        backend is a property of the executing host, so each worker
        resolves ``auto`` for itself at engine build (both backends are
        bit-identical, so a heterogeneous fleet still agrees on results).
        An explicit ``"compiled"`` is enforced — a worker without the
        toolchain raises instead of silently degrading.
    """

    backend: str
    kind: str
    payload: tuple
    floor: float
    ridge: float
    fingerprint: "str | None" = None
    kernels: str = "auto"

    @classmethod
    def from_graph(
        cls,
        graph,
        *,
        backend: str = "auto",
        floor: float = 1.0,
        ridge: float = DEFAULT_RIDGE,
        kernels: str = "auto",
    ) -> "EngineSpec":
        """Capture a graph (dense array or scipy sparse) as an engine spec.

        ``backend="auto"`` is resolved against the graph here, once, so
        every consumer of the spec agrees on the engine class.  ``kernels``
        is carried as requested and resolved per worker (see the class
        docstring).
        """
        resolved = resolve_backend(backend, graph)
        validate_kernels(kernels)
        if _sparse.issparse(graph):
            csr = graph.tocsr()
            payload = (
                np.asarray(csr.data, dtype=np.float64),
                np.asarray(csr.indices),
                np.asarray(csr.indptr),
                csr.shape,
            )
            kind = "csr"
        else:
            if hasattr(graph, "adjacency_view"):
                graph = graph.adjacency_view
            payload = (np.array(graph, dtype=np.float64, copy=True),)
            kind = "dense"
        return cls(
            backend=resolved, kind=kind, payload=payload,
            floor=float(floor), ridge=float(ridge),
            fingerprint=getattr(graph, "_repro_fingerprint", None),
            kernels=kernels,
        )

    @classmethod
    def from_store(
        cls,
        store,
        *,
        floor: float = 1.0,
        ridge: float = DEFAULT_RIDGE,
        kernels: str = "auto",
    ) -> "EngineSpec":
        """Capture a :class:`~repro.store.GraphStore` as a path-payload spec.

        The pickled spec is a few hundred bytes regardless of graph size;
        every worker that builds from it memory-maps the same store files
        (read-only) instead of unpickling its own CSR copy.  Store-backed
        engines are always sparse.
        """
        return cls(
            backend="sparse", kind="store", payload=(str(store.path),),
            floor=float(floor), ridge=float(ridge),
            fingerprint=f"graph-store:{store.digest}",
            kernels=validate_kernels(kernels),
        )

    def to_graph(self):
        """Materialise the graph payload (ndarray, ``csr_matrix``, or the
        memory-mapped CSR of a ``store``-kind spec).

        A captured :attr:`fingerprint` token is re-applied to the sparse
        result, so checkpoints a worker writes validate against the
        parent's regardless of which side carried the graph as bytes.
        """
        if self.kind == "dense":
            return np.array(self.payload[0], copy=True)
        if self.kind == "csr":
            data, indices, indptr, shape = self.payload
            matrix = _sparse.csr_matrix((data, indices, indptr), shape=shape)
            if self.fingerprint is not None:
                matrix._repro_fingerprint = self.fingerprint
            return matrix
        if self.kind == "store":
            from repro.store import GraphStore

            return GraphStore.open(self.payload[0]).csr()
        raise ValueError(f"unknown engine-spec payload kind {self.kind!r}")

    def build(
        self,
        targets: Sequence[int],
        candidates=None,
        weights: "Sequence[float] | None" = None,
    ) -> "SurrogateEngine":
        """Construct the engine this spec describes (alias of
        :meth:`SurrogateEngine.from_spec`)."""
        return SurrogateEngine.from_spec(
            self, targets, candidates=candidates, weights=weights
        )


class SurrogateEngine(abc.ABC):
    """Stateful surrogate evaluator the attacks drive their loops through.

    An engine owns one clean graph, one target set and one candidate-pair
    set, and answers every question the attacks' optimisation loops ask:

    * :meth:`current_loss` — the surrogate at the current graph;
    * :meth:`binarized_step` — BinarizedAttack's discrete forward +
      straight-through backward for one PGD iterate;
    * :meth:`relaxed_step` — ContinuousA's fractional forward/backward;
    * :meth:`candidate_gradient` — GradMaxSearch's per-pair gradient;
    * :meth:`push_flip` / :meth:`pop_flips` / :meth:`apply_flip` — transient
      (score-and-rollback) versus permanent graph mutation;
    * :meth:`score_flips` / :meth:`score_prefixes` — transient re-scoring of
      recorded flip sets, used by the λ-sweep bookkeeping.

    One engine instance serves a whole attack run: BinarizedAttack's λ-sweep
    rolls each iterate's flips back between steps instead of rebuilding
    adjacencies.  Construct through :meth:`create`, which resolves the
    ``auto`` backend rule.
    """

    backend: str = "abstract"

    def __init__(
        self,
        n: int,
        targets: Sequence[int],
        candidates=None,
        floor: float = 1.0,
        ridge: float = DEFAULT_RIDGE,
        weights: "Sequence[float] | None" = None,
        kernels: str = "auto",
    ):
        if floor <= 0.0:
            raise ValueError(f"floor must be positive to keep logs finite, got {floor}")
        self.n = int(n)
        self._targets = _validate_targets(targets, self.n)
        self.floor = float(floor)
        self.ridge = float(ridge)
        self._weights = weights
        #: The *requested* hot-kernel flag, exported unresolved by
        #: :meth:`engine_spec` so workers re-resolve ``auto`` per host.
        self.kernels_flag = validate_kernels(kernels)
        self.set_candidates(candidates)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        graph,
        targets: Sequence[int],
        candidates=None,
        *,
        backend: str = "auto",
        floor: float = 1.0,
        ridge: float = DEFAULT_RIDGE,
        weights: "Sequence[float] | None" = None,
        kernels: str = "auto",
    ) -> "SurrogateEngine":
        """Build the backend picked by :func:`resolve_backend`.

        ``graph`` may be a :class:`~repro.graph.graph.Graph`, dense array or
        scipy sparse matrix; ``candidates`` a
        :class:`~repro.attacks.candidates.CandidateSet`, a ``(rows, cols)``
        pair of canonical index arrays, or ``None`` for every upper-triangle
        pair.  ``kernels`` selects the hot-kernel backend for the sparse
        engine's flip/score/gradient primitives (:mod:`repro.kernels`).
        """
        resolved = resolve_backend(backend, graph)
        engine_cls = DenseSurrogateEngine if resolved == "dense" else SparseSurrogateEngine
        return engine_cls(
            graph, targets, candidates, floor=floor, ridge=ridge, weights=weights,
            kernels=kernels,
        )

    @classmethod
    def from_spec(
        cls,
        spec: "EngineSpec",
        targets: Sequence[int],
        candidates=None,
        weights: "Sequence[float] | None" = None,
        graph=None,
    ) -> "SurrogateEngine":
        """Rebuild an engine from an :class:`EngineSpec`.

        This is the child-process half of the spec round-trip: a worker
        receives a pickled spec, builds its engine once, and serves every
        job of its shard from it.  The rebuilt engine is state-identical to
        one constructed directly from the spec's graph (losses bit-for-bit,
        same features — round-trip-tested).

        ``graph`` may pass a pre-materialised ``spec.to_graph()`` result so
        a caller that needs the graph anyway (the executor's workers hand
        it to their campaign too) avoids a second payload copy.
        """
        if spec.backend not in ("dense", "sparse"):
            raise ValueError(
                f"engine spec must carry a resolved backend, got {spec.backend!r}"
            )
        engine_cls = (
            DenseSurrogateEngine if spec.backend == "dense" else SparseSurrogateEngine
        )
        return engine_cls(
            spec.to_graph() if graph is None else graph, targets, candidates,
            floor=spec.floor, ridge=spec.ridge, weights=weights,
            kernels=spec.kernels,
        )

    def engine_spec(self) -> "EngineSpec":
        """Export the engine's graph + configuration as an :class:`EngineSpec`.

        Captures the *current permanent* graph (applied flips included);
        raises if transient flips are pending, because a spec taken
        mid-probe would bake a half-evaluated state into every worker.
        """
        return EngineSpec(
            backend=self.backend,
            kind=self._spec_kind(),
            payload=self._spec_payload(),
            floor=self.floor,
            ridge=self.ridge,
            kernels=self.kernels_flag,
        )

    @abc.abstractmethod
    def _spec_kind(self) -> str:
        """Graph payload encoding of :meth:`engine_spec` (``dense``/``csr``)."""

    @abc.abstractmethod
    def _spec_payload(self) -> tuple:
        """Graph payload arrays of :meth:`engine_spec`."""

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def edge_values(self) -> np.ndarray:
        """Adjacency values at the candidate pairs, as of construction."""
        return self._edge_values.copy()

    @property
    def targets(self) -> np.ndarray:
        """The engine's current target node ids (copy)."""
        return self._targets.copy()

    @property
    def weights(self) -> "Sequence[float] | None":
        """Per-target κ importances (``None`` = the equal-weight case)."""
        return self._weights

    # ------------------------------------------------------------------ #
    # Reconfiguration (shared-engine / campaign support)
    # ------------------------------------------------------------------ #
    def set_candidates(self, candidates=None) -> None:
        """Repoint the engine at a new candidate-pair set.

        The graph state is untouched; only the decision variables change.
        ``candidates`` follows the constructor's convention (``None`` =
        every upper-triangle pair).  Per-pair caches (``edge_values``,
        ``flip_direction``) are recomputed against the *current* graph, so
        this is also how adaptive candidate sets are threaded mid-attack.
        """
        if candidates is None:
            rows, cols = np.triu_indices(self.n, k=1)
            self.rows = rows.astype(np.intp)
            self.cols = cols.astype(np.intp)
        else:
            self.rows, self.cols = _candidate_arrays(candidates)
        if self.rows.size and self.cols.max() >= self.n:
            raise ValueError(f"candidate pair indices out of range [0, {self.n})")
        self._refresh_pair_cache()
        self._on_state_reset()

    def retarget(
        self,
        targets: Sequence[int],
        candidates=None,
        *,
        floor: "float | None" = None,
        weights: "Sequence[float] | None" = None,
    ) -> None:
        """Reconfigure the engine for a new job on the SAME graph.

        This is the campaign primitive: one engine (one incremental feature
        state, one CSR cache) serves many ``(targets, budget, λ)`` jobs —
        switching jobs costs O(|C|) bookkeeping instead of the O(n + m)
        feature/neighbour rebuild a fresh engine would pay.  The caller is
        responsible for restoring the graph itself (see :meth:`checkpoint` /
        :meth:`restore`) before retargeting.
        """
        self._targets = _validate_targets(targets, self.n)
        if floor is not None:
            if floor <= 0.0:
                raise ValueError(
                    f"floor must be positive to keep logs finite, got {floor}"
                )
            self.floor = float(floor)
        self._weights = weights
        self.set_candidates(candidates)

    def _refresh_pair_cache(self) -> None:
        """Recompute per-pair values/directions against the current graph."""
        self._edge_values = self._pair_values(self.rows, self.cols)
        #: per-pair ``1 − 2·A0`` — +1 on non-edges (add), −1 on edges (delete)
        self.flip_direction = 1.0 - 2.0 * self._edge_values

    def _on_state_reset(self) -> None:
        """Hook for backends to drop caches keyed on candidates/graph state."""

    # ------------------------------------------------------------------ #
    # Backend-specific primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _pair_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Current adjacency values at the given canonical pairs."""

    @abc.abstractmethod
    def current_loss(self) -> float:
        """Surrogate loss of the current graph (matches
        :func:`surrogate_loss_numpy` on the materialised adjacency)."""

    @abc.abstractmethod
    def binarized_step(
        self, zdot_values: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """One BinarizedAttack iterate: ``(loss, ∂loss/∂Ż, flip mask)``.

        The forward pass evaluates the surrogate on the **discrete** graph
        obtained by flipping every candidate pair with ``Ż >= 0.5``; the
        gradient flows back to ``Ż`` through the straight-through estimator
        (identity inside the box).  Evaluated relative to the engine's
        construction-time graph — do not mix with :meth:`apply_flip`.
        """

    @abc.abstractmethod
    def relaxed_step(self, values: np.ndarray) -> tuple[float, np.ndarray]:
        """ContinuousA iterate: loss and gradient at the *fractional* graph
        whose candidate-pair entries are replaced by ``values``."""

    @abc.abstractmethod
    def candidate_gradient(self) -> np.ndarray:
        """∂(surrogate)/∂A of the current graph, at the candidate pairs."""

    @abc.abstractmethod
    def pair_gradient(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """∂(surrogate)/∂A of the current graph at *arbitrary* canonical pairs.

        Unlike :meth:`candidate_gradient` the queried pairs need not belong
        to the engine's candidate set — this is the probe the
        gradient-informed adaptive growth policy
        (:class:`~repro.attacks.candidates.AdaptiveCandidateSet` with
        ``growth="gradient"``) uses to rank would-be admissions by predicted
        |∂L/∂A| before committing them as decision variables.
        """

    @abc.abstractmethod
    def degrees(self) -> np.ndarray:
        """Current per-node degree vector."""

    @abc.abstractmethod
    def is_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the current graph."""

    @abc.abstractmethod
    def degree(self, u: int) -> float:
        """Current degree of node ``u``."""

    @abc.abstractmethod
    def push_flip(self, u: int, v: int) -> None:
        """Apply one transient flip (undone by :meth:`pop_flips`)."""

    @abc.abstractmethod
    def pop_flips(self, count: int) -> None:
        """Undo the last ``count`` transient flips exactly."""

    @abc.abstractmethod
    def apply_flip(self, u: int, v: int) -> None:
        """Permanently flip ``{u, v}`` (greedy attacks advance this way)."""

    @abc.abstractmethod
    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbour ids of ``u`` in the current graph."""

    @abc.abstractmethod
    def node_features(self) -> tuple[np.ndarray, np.ndarray]:
        """Egonet features ``(N, E)`` of the current graph.

        The campaign layer scores jobs straight from these (Eq. 3 needs
        only ``(N, E)`` plus the refitted power law), so per-job anomaly
        scoring costs O(n) on the sparse backend instead of materialising a
        poisoned adjacency.
        """

    @abc.abstractmethod
    def checkpoint(self) -> int:
        """Opaque token for the current *permanent* graph state.

        Take one before handing the engine to an attack; pass it to
        :meth:`restore` afterwards to undo every permanent flip the attack
        applied.  Transient flips must be balanced (pushed and popped) by
        the attack itself.
        """

    @abc.abstractmethod
    def restore(self, token: int) -> None:
        """Undo every permanent flip applied after :meth:`checkpoint`.

        O(deg) per undone flip; per-pair caches are refreshed so the engine
        is immediately reusable.  Transient flips still pending (an attack
        that died mid-probe) are rolled back first — restore always returns
        the engine to the exact checkpointed graph.
        """

    # ------------------------------------------------------------------ #
    # Shared transient scoring
    # ------------------------------------------------------------------ #
    def score_flips(self, flips: "Sequence[tuple[int, int]]") -> float:
        """Loss of the current graph with ``flips`` applied (then undone)."""
        count = 0
        for u, v in flips:
            self.push_flip(u, v)
            count += 1
        loss = self.current_loss()
        self.pop_flips(count)
        return loss

    def score_prefixes(self, flips: "Sequence[tuple[int, int]]") -> list[float]:
        """Loss after each prefix of ``flips`` (all undone on return)."""
        losses: list[float] = []
        count = 0
        for u, v in flips:
            self.push_flip(u, v)
            count += 1
            losses.append(self.current_loss())
        self.pop_flips(count)
        return losses


class DenseSurrogateEngine(SurrogateEngine):
    """Reference backend: the full dense autograd pipeline.

    Replays exactly the op sequence the attacks used before the engine
    existed, so its losses, gradients and flip decisions are bit-for-bit
    identical to the historical behaviour (the equivalence suite asserts
    this).  O(n³) per forward, O(n²) memory — the right choice below
    :data:`AUTO_SPARSE_NODE_THRESHOLD` nodes, and the oracle the sparse
    backend is tested against.
    """

    backend = "dense"

    def __init__(
        self,
        graph,
        targets: Sequence[int],
        candidates=None,
        *,
        floor: float = 1.0,
        ridge: float = DEFAULT_RIDGE,
        weights: "Sequence[float] | None" = None,
        kernels: str = "auto",
    ):
        if _sparse.issparse(graph):
            # repro: allow-densify(dense reference engine — densifying is the point)
            adjacency = graph.toarray()
        elif hasattr(graph, "adjacency_csr"):
            # store-backed graphs densify here — the dense reference engine
            # is for small graphs/tests, so the O(n²) copy is intentional
            # repro: allow-densify(dense reference engine — densifying is the point)
            adjacency = graph.adjacency_csr().toarray()
        elif hasattr(graph, "adjacency_view"):
            adjacency = np.array(graph.adjacency_view, dtype=np.float64)
        else:
            adjacency = np.array(graph, dtype=np.float64, copy=True)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
        self._adjacency = adjacency
        self._transient: list[tuple[int, int]] = []
        self._permanent: list[tuple[int, int]] = []
        self._frozen: "Tensor | None" = None
        #: The dense reference path has no compiled primitives — the flag is
        #: accepted (and round-tripped through specs) for API parity with
        #: the sparse engine, but evaluation is always the autograd oracle.
        self.kernels = "numpy"
        super().__init__(
            adjacency.shape[0], targets, candidates,
            floor=floor, ridge=ridge, weights=weights, kernels=kernels,
        )

    def _pair_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._adjacency[rows, cols]

    def current_loss(self) -> float:
        """Surrogate of the current dense graph (full O(n³) forward)."""
        return surrogate_loss_numpy(
            self._adjacency, self._targets, self._weights,
            floor=self.floor, ridge=self.ridge,
        )

    def binarized_step(
        self, zdot_values: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """One BinarizedAttack iterate via the full autograd pipeline."""
        zdot = Tensor(
            np.asarray(zdot_values, dtype=np.float64), requires_grad=True, name="zdot"
        )
        # Forward pass on the DISCRETE graph (Alg. 1 lines 5-8).
        z = binarize_ste(2.0 * zdot - 1.0)  # +1 => flip (this is −Z of Eq. 7)
        flip_indicator = (z + 1.0) * 0.5
        poisoned = apply_pair_flips(
            self._adjacency, flip_indicator, self.rows, self.cols,
            direction=self.flip_direction, base_values=self._edge_values,
        )
        adversarial = surrogate_loss(
            poisoned, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        adversarial.backward()
        gradient = zdot.grad
        assert gradient is not None
        return float(adversarial.data), gradient, flip_indicator.data > 0.5

    def relaxed_step(self, values: np.ndarray) -> tuple[float, np.ndarray]:
        """ContinuousA iterate: autograd loss/gradient at the fractional graph."""
        if self._frozen is None:
            # Non-candidate entries stay frozen at their clean values: the
            # relaxed variables are scattered ON TOP of the clean graph with
            # the candidate positions blanked.
            frozen_base = self._adjacency.copy()
            frozen_base[self.rows, self.cols] = frozen_base[self.cols, self.rows] = 0.0
            self._frozen = Tensor(frozen_base)
        relaxed = Tensor(
            np.asarray(values, dtype=np.float64),
            requires_grad=True,
            name="relaxed_adjacency",
        )
        matrix = self._frozen + symmetric_from_upper(relaxed, self.n, self.rows, self.cols)
        loss = surrogate_loss(
            matrix, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        loss.backward()
        gradient = relaxed.grad
        assert gradient is not None
        return float(loss.data), gradient

    def candidate_gradient(self) -> np.ndarray:
        """Full autograd adjacency gradient, gathered at the candidate pairs."""
        gradient = adjacency_gradient(
            self._adjacency, self._targets,
            floor=self.floor, weights=self._weights, ridge=self.ridge,
        )
        return gradient[self.rows, self.cols]

    def pair_gradient(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Full autograd adjacency gradient, gathered at arbitrary pairs."""
        rows, cols = _candidate_arrays((rows, cols))
        gradient = adjacency_gradient(
            self._adjacency, self._targets,
            floor=self.floor, weights=self._weights, ridge=self.ridge,
        )
        return gradient[rows, cols]

    def degrees(self) -> np.ndarray:
        """Per-node degrees (one O(n²) row sum)."""
        return self._adjacency.sum(axis=1)

    def is_edge(self, u: int, v: int) -> bool:
        """O(1) dense membership probe."""
        return self._adjacency[u, v] != 0.0

    def degree(self, u: int) -> float:
        """Degree of ``u`` (one O(n) row sum)."""
        return float(self._adjacency[u].sum())

    def push_flip(self, u: int, v: int) -> None:
        """Toggle ``{u, v}`` transiently (O(1); undone by :meth:`pop_flips`)."""
        self._adjacency[u, v] = self._adjacency[v, u] = 1.0 - self._adjacency[u, v]
        self._transient.append((u, v))

    def pop_flips(self, count: int) -> None:
        """Undo the last ``count`` transient flips exactly (O(1) each)."""
        if count > len(self._transient):
            raise ValueError(
                f"cannot pop {count} flips, only {len(self._transient)} pushed"
            )
        for _ in range(count):
            u, v = self._transient.pop()
            self._adjacency[u, v] = self._adjacency[v, u] = 1.0 - self._adjacency[u, v]

    def apply_flip(self, u: int, v: int) -> None:
        """Toggle ``{u, v}`` permanently (logged for :meth:`restore`)."""
        if self._transient:
            raise RuntimeError("cannot apply a permanent flip with transient flips pending")
        self._adjacency[u, v] = self._adjacency[v, u] = 1.0 - self._adjacency[u, v]
        self._permanent.append((u, v))

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbour ids of ``u`` in the current graph."""
        return np.flatnonzero(self._adjacency[int(u)]).astype(np.intp)

    def node_features(self) -> tuple[np.ndarray, np.ndarray]:
        """Egonet features ``(N, E)`` of the current graph (full recompute)."""
        from repro.graph.features import egonet_features

        return egonet_features(self._adjacency)

    def _spec_kind(self) -> str:
        return "dense"

    def _spec_payload(self) -> tuple:
        if self._transient:
            raise RuntimeError(
                "cannot export an engine spec with transient flips pending"
            )
        return (self._adjacency.copy(),)

    def checkpoint(self) -> int:
        """Permanent-flip log length — the O(1) restore token."""
        return len(self._permanent)

    def restore(self, token: int) -> None:
        """Unwind permanent (and stray transient) flips back to ``token``."""
        if not 0 <= token <= len(self._permanent):
            raise ValueError(
                f"invalid checkpoint token {token}; {len(self._permanent)} "
                "permanent flips applied"
            )
        dirty = bool(self._transient)
        if dirty:
            # an attack died mid-probe — unwind its transient flips first
            self.pop_flips(len(self._transient))
        if token < len(self._permanent):
            dirty = True
            while len(self._permanent) > token:
                u, v = self._permanent.pop()
                self._adjacency[u, v] = self._adjacency[v, u] = (
                    1.0 - self._adjacency[u, v]
                )
        if dirty:
            self._refresh_pair_cache()
            self._on_state_reset()

    def _on_state_reset(self) -> None:
        self._frozen = None


class SparseSurrogateEngine(SurrogateEngine):
    """Sparse-incremental backend: never materialises a dense matrix.

    Egonet features live in an
    :class:`~repro.graph.incremental.IncrementalEgonetFeatures` (exact
    integer maintenance, O(deg) per flip with apply → score → rollback);
    losses come from :func:`surrogate_loss_from_features` in O(n) and are
    bit-identical to the dense evaluation of the same graph; gradients are
    the closed-form :func:`feature_gradients` scattered onto the candidate
    pairs, with transient flip sets folded in as a Δ-overlay so the base
    CSR is built once per permanent state, not once per PGD iteration.
    """

    backend = "sparse"

    def __init__(
        self,
        graph,
        targets: Sequence[int],
        candidates=None,
        *,
        floor: float = 1.0,
        ridge: float = DEFAULT_RIDGE,
        weights: "Sequence[float] | None" = None,
        kernels: str = "auto",
    ):
        from repro.graph.incremental import IncrementalEgonetFeatures

        self._features = IncrementalEgonetFeatures(graph, kernels=kernels)
        #: Resolved hot-kernel backend ("numpy" or "compiled") in use for
        #: flip application, pair reads and the gradient scatter.
        self.kernels = self._features.kernels
        self._kt = self._features._kt
        # push_flip/apply_flip share one rollback stack; this counter is the
        # only record of which stack entries are *transient* (pushed, not
        # yet popped) — engine_spec() refuses to export around them.
        self._transient_count = 0
        super().__init__(
            self._features.n, targets, candidates,
            floor=floor, ridge=ridge, weights=weights, kernels=kernels,
        )

    def _pair_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        # Vectorised membership against the cached CSR plus the (tiny) net
        # overlay — a Python per-pair set lookup here was a measurable
        # per-job fixed cost at campaign scale (|C| ≈ n per retarget).
        if rows.size == 0:
            return np.empty(0, dtype=np.float64)
        tracer = _telemetry.active_tracer()
        start_ns = time.perf_counter_ns() if tracer is not None else 0
        base, delta = self._features.csr_with_delta()
        n = self.n
        pair_keys = rows * n + cols
        if not base.has_sorted_indices:
            # repro: allow-mmap-write-safety(unreachable for store CSRs — they arrive pre-sorted with has_sorted_indices set)
            base.sort_indices()
        if self._kt is not None:
            # Compiled path: one binary search per pair inside the base
            # CSR's rows — no O(m) edge-key array build per call.
            values = self._kt.pair_values(base, rows, cols)
        else:
            # Row-major CSR keys are strictly increasing, so membership is
            # one C-level binary search instead of a hash-based isin.
            edge_keys = (
                np.repeat(np.arange(n, dtype=np.intp), np.diff(base.indptr)) * n
                + base.indices
            )
            positions = np.searchsorted(edge_keys, pair_keys)
            positions_clipped = np.minimum(positions, max(edge_keys.size - 1, 0))
            values = np.zeros(pair_keys.size, dtype=np.float64)
            if edge_keys.size:
                values[edge_keys[positions_clipped] == pair_keys] = 1.0
        if delta:
            sorter = None
            if np.any(np.diff(pair_keys) < 0):
                sorter = np.argsort(pair_keys, kind="stable")
            for u, v, sign in delta:
                key = u * n + v if u < v else v * n + u
                pos = np.searchsorted(pair_keys, key, sorter=sorter)
                if pos < len(pair_keys):
                    idx = int(sorter[pos]) if sorter is not None else int(pos)
                    if pair_keys[idx] == key:
                        values[idx] = 1.0 if sign > 0 else 0.0
        if tracer is not None:
            tracer.count("kernels.pair_values", int(rows.size),
                         time.perf_counter_ns() - start_ns)
        return values

    def _scatter(
        self,
        csr,
        d_n: np.ndarray,
        d_e: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        delta=(),
    ) -> np.ndarray:
        """Gradient scatter through the selected kernel backend.

        The compiled kernel replicates the numpy reference's hub grouping
        and summation order, so both paths return bit-identical gradients
        (asserted by the kernel parity suite); unsorted-index matrices
        (never produced by the engine's own materialisations) fall back to
        the reference path, which tolerates them.
        """
        tracer = _telemetry.active_tracer()
        start_ns = time.perf_counter_ns() if tracer is not None else 0
        if self._kt is not None and csr.has_sorted_indices:
            gradient = self._kt.scatter_pair_gradient(
                csr, d_n, d_e, rows, cols, delta=delta
            )
        else:
            gradient = _scatter_pair_gradient(
                csr, d_n, d_e, rows, cols, delta=delta
            )
        if tracer is not None:
            tracer.count("kernels.scatter_gradient", int(rows.size),
                         time.perf_counter_ns() - start_ns)
        return gradient

    def current_loss(self) -> float:
        """Surrogate from the maintained features, in O(n)."""
        n_feature, e_feature = self._features.features()
        return surrogate_loss_from_features(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )

    def binarized_step(
        self, zdot_values: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """One BinarizedAttack iterate at O(Σ deg + n + |C|): apply the
        iterate's flips, score from features, scatter the closed-form
        straight-through gradient, roll the flips back."""
        zdot_values = np.asarray(zdot_values, dtype=np.float64)
        # binarized(2Ż − 1) = +1 ⇔ Ż >= 0.5 (binarized(0) = +1, Eq. 7).
        flip_mask = zdot_values >= 0.5
        flipped = np.flatnonzero(flip_mask)
        features = self._features
        base_csr = features.adjacency_csr()  # materialised BEFORE the flips
        pairs = [(int(self.rows[k]), int(self.cols[k])) for k in flipped]
        delta: list[tuple[int, int, float]] = [
            (u, v, float(self.flip_direction[k]))
            for (u, v), k in zip(pairs, flipped)
        ]
        # One batched call applies the whole iterate's flip set (compiled:
        # a single Python->C crossing; numpy: the historical per-flip loop).
        features.flip_batch(pairs)
        n_feature, e_feature = features.features()
        loss = surrogate_loss_from_features(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        d_n, d_e = feature_gradients(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        features.rollback(len(delta))
        pair_gradient = self._scatter(
            base_csr, d_n, d_e, self.rows, self.cols, delta=delta
        )
        # Straight-through chain: ∂L/∂Ż = (∂L/∂A_uv + ∂L/∂A_vu) · direction.
        return loss, pair_gradient * self.flip_direction, flip_mask

    def relaxed_step(self, values: np.ndarray) -> tuple[float, np.ndarray]:
        """ContinuousA iterate on the fractional graph ``A0 + Δ``, in CSR."""
        values = np.asarray(values, dtype=np.float64)
        base = self._features.adjacency_csr()
        if self.rows.size:
            delta = values - self._edge_values
            overlay = _sparse.coo_matrix(
                (
                    np.concatenate([delta, delta]),
                    (
                        np.concatenate([self.rows, self.cols]),
                        np.concatenate([self.cols, self.rows]),
                    ),
                ),
                shape=(self.n, self.n),
            )
            matrix = (base + overlay).tocsr()
        else:
            matrix = base
        # Weighted egonet features: N = row sums, E = N + ½ diag(A³); the
        # validated binary kernel cannot be used on a fractional matrix.
        n_feature = np.asarray(matrix.sum(axis=1)).ravel()
        two_paths = (matrix @ matrix).multiply(matrix)
        e_feature = n_feature + 0.5 * np.asarray(two_paths.sum(axis=1)).ravel()
        loss = surrogate_loss_from_features(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        d_n, d_e = feature_gradients(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        gradient = self._scatter(matrix, d_n, d_e, self.rows, self.cols)
        return float(loss), gradient

    def candidate_gradient(self) -> np.ndarray:
        """Closed-form gradient scattered onto the candidate pairs only."""
        # Evaluated as (cached CSR + net overlay): the incremental features
        # supply exact (N, E) for the current graph, and the few flips not
        # yet folded into the CSR ride along as a Δ-overlay in the scatter —
        # a greedy attack's per-step gradient does no CSR rebuild at all.
        features = self._features
        base, delta = features.csr_with_delta()
        n_feature, e_feature = features.features()
        d_n, d_e = feature_gradients(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        return self._scatter(base, d_n, d_e, self.rows, self.cols, delta=delta)

    def pair_gradient(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Closed-form gradient scattered onto arbitrary canonical pairs."""
        rows, cols = _candidate_arrays((rows, cols))
        features = self._features
        base, delta = features.csr_with_delta()
        n_feature, e_feature = features.features()
        d_n, d_e = feature_gradients(
            n_feature, e_feature, self._targets,
            floor=self.floor, ridge=self.ridge, weights=self._weights,
        )
        return self._scatter(base, d_n, d_e, rows, cols, delta=delta)

    def degrees(self) -> np.ndarray:
        """Maintained degree vector — an O(n) copy of the N feature.

        The values come straight from the maintained features (no
        recomputation), but the feature engine returns a defensive copy,
        so the call is O(n), not O(1).
        """
        return self._features.n_feature

    def is_edge(self, u: int, v: int) -> bool:
        """Edge membership probe against the lazily-overridden rows.

        Rows no flip has touched are answered by an O(log deg) binary
        search of the base CSR (which may be an out-of-core memmap);
        flip-touched rows have a materialised neighbour set, answered by
        an O(1) set probe.  No row is materialised just to ask.
        """
        return self._features.is_edge(int(u), int(v))

    def degree(self, u: int) -> float:
        """Maintained degree of ``u``, in O(1)."""
        return float(self._features.degree(int(u)))

    def push_flip(self, u: int, v: int) -> None:
        """Toggle ``{u, v}`` with an O(deg) exact feature update."""
        self._features.flip(u, v)
        self._transient_count += 1

    def pop_flips(self, count: int) -> None:
        """Roll back the last ``count`` flips bit-exactly (O(deg) each)."""
        self._features.rollback(count)
        self._transient_count = max(self._transient_count - count, 0)

    def apply_flip(self, u: int, v: int) -> None:
        """Toggle ``{u, v}`` permanently (same O(deg) incremental update)."""
        self._features.flip(u, v)

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbour ids of ``u`` in the current graph."""
        neigh = self._features.neighbors(int(u))
        return np.fromiter(sorted(neigh), dtype=np.intp, count=len(neigh))

    def node_features(self) -> tuple[np.ndarray, np.ndarray]:
        """Exact maintained egonet features ``(N, E)``, in O(1)."""
        return self._features.features()

    def _spec_kind(self) -> str:
        return "csr"

    def _spec_payload(self) -> tuple:
        if self._transient_count:
            raise RuntimeError(
                "cannot export an engine spec with transient flips pending"
            )
        csr = self._features.adjacency_csr()
        return (
            np.asarray(csr.data, dtype=np.float64),
            np.asarray(csr.indices),
            np.asarray(csr.indptr),
            csr.shape,
        )

    def checkpoint(self) -> int:
        """Flip-stack depth — the O(1) restore token."""
        return self._features.depth

    def restore(self, token: int) -> None:
        """Roll the flip stack back to ``token`` (O(deg) per undone flip)."""
        depth = self._features.depth
        if not 0 <= token <= depth:
            raise ValueError(
                f"invalid checkpoint token {token}; flip stack depth is {depth}"
            )
        if token == depth:
            return
        self._features.rollback(depth - token)
        # Anything transient sat above the token and is gone now.
        self._transient_count = 0
        self._refresh_pair_cache()
        self._on_state_reset()

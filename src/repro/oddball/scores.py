"""OddBall anomaly scores (Eq. 3) and the attack's surrogate (proxy) score.

The *true* score used for every evaluation in the paper is

.. math::

    S_i(A) = \\frac{\\max(E_i, \\hat E_i)}{\\min(E_i, \\hat E_i)}
             \\, \\ln(|E_i − \\hat E_i| + 1),
    \\qquad \\hat E_i = e^{β0} N_i^{β1}.

The attack never optimises this directly; it optimises the squared-residual
surrogate ``(E_i − \\hat E_i)²`` (Section IV-B), implemented in
:mod:`repro.oddball.surrogate`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.features import egonet_features
from repro.oddball.regression import PowerLawFit, fit_power_law

__all__ = [
    "anomaly_scores",
    "anomaly_scores_with_fit",
    "proxy_scores",
    "rank_positions",
    "score_from_features",
]

_EPS = 1e-12


def rank_positions(
    scores: np.ndarray, order: "np.ndarray | None" = None
) -> np.ndarray:
    """``rank[i]`` = position of node ``i`` in descending score order.

    Stable ties (``kind="stable"``), 0 = most anomalous.  The single
    definition of ranking semantics shared by the detector, the attack
    campaign's rank-shift bookkeeping and the benchmarks — a divergence in
    tie-breaking between those would silently change reported rank shifts.
    ``order`` may supply an already-computed descending argsort of
    ``scores`` (the detector caches one) to skip the sort.
    """
    if order is None:
        order = np.argsort(-np.asarray(scores), kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(len(order))
    return ranks


def score_from_features(
    n_feature: np.ndarray, e_feature: np.ndarray, fit: PowerLawFit
) -> np.ndarray:
    """Eq. 3 scores given features and a fitted power law.

    Nodes with ``N < 1`` (isolated) receive score 0 — they have no egonet to
    deviate with and the paper's pre-processing keeps graphs singleton-free.
    """
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    expected = fit.predict_e(n_feature)
    high = np.maximum(e_feature, expected)
    low = np.minimum(e_feature, expected)
    ratio = high / np.maximum(low, _EPS)
    distance = np.log(np.abs(e_feature - expected) + 1.0)
    scores = ratio * distance
    scores[n_feature < 1.0] = 0.0
    return scores


def anomaly_scores_with_fit(
    adjacency: np.ndarray, fit_kwargs: "dict | None" = None
) -> tuple[np.ndarray, PowerLawFit]:
    """Compute Eq. 3 scores for every node, returning the fit as well."""
    n_feature, e_feature = egonet_features(adjacency)
    fit = fit_power_law(n_feature, e_feature, **(fit_kwargs or {}))
    return score_from_features(n_feature, e_feature, fit), fit


def anomaly_scores(adjacency: np.ndarray) -> np.ndarray:
    """Eq. 3 scores for every node (OLS fit re-estimated on this graph).

    This re-estimation is what makes structural attacks *poisoning* attacks:
    scoring a modified graph moves the regression line too.
    """
    scores, _ = anomaly_scores_with_fit(adjacency)
    return scores


def proxy_scores(adjacency: np.ndarray) -> np.ndarray:
    """The un-normalised proxy ``ln(|E − Ê| + 1)`` (Section IV-B) per node."""
    n_feature, e_feature = egonet_features(adjacency)
    fit = fit_power_law(n_feature, e_feature)
    expected = fit.predict_e(n_feature)
    proxy = np.log(np.abs(e_feature - expected) + 1.0)
    proxy[n_feature < 1.0] = 0.0
    return proxy

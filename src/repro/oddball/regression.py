"""Ordinary least squares for the Egonet Density Power Law (Eq. 1–2).

OddBall fits ``ln E_i = β0 + β1 ln N_i`` across all nodes.  Both a numpy
implementation (detection/evaluation) and an autograd implementation
(inside the attack objective, where β must stay differentiable w.r.t. the
adjacency matrix) are provided.  The closed form of the 2×2 normal equations
is written out explicitly so the tensor version is a plain composition of
primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["PowerLawFit", "fit_power_law", "fit_power_law_tensor", "predict_log_e"]

#: Tikhonov ridge keeping the 2×2 system invertible on degenerate inputs
#: (e.g. perfectly regular graphs where all ln N coincide).
DEFAULT_RIDGE = 1e-8


@dataclass(frozen=True)
class PowerLawFit:
    """Fitted parameters of ``ln E = β0 + β1 ln N``."""

    beta0: float
    beta1: float

    def predict_e(self, n_feature: np.ndarray) -> np.ndarray:
        """Expected egonet edge count ``e^{β0} N^{β1}``."""
        n_feature = np.asarray(n_feature, dtype=np.float64)
        return np.exp(self.beta0) * np.power(np.maximum(n_feature, 1e-12), self.beta1)


def fit_power_law(
    n_feature: np.ndarray,
    e_feature: np.ndarray,
    mask: "np.ndarray | None" = None,
    ridge: float = DEFAULT_RIDGE,
) -> PowerLawFit:
    """Closed-form OLS of ``ln E`` on ``[1, ln N]`` (Eq. 2).

    Parameters
    ----------
    n_feature, e_feature:
        Per-node egonet features.
    mask:
        Optional boolean mask of the nodes included in the fit; defaults to
        ``N >= 1`` and ``E >= 1`` (isolated nodes have no defined log).
    ridge:
        Diagonal loading of the normal equations.
    """
    n_feature = np.asarray(n_feature, dtype=np.float64)
    e_feature = np.asarray(e_feature, dtype=np.float64)
    if n_feature.shape != e_feature.shape or n_feature.ndim != 1:
        raise ValueError(
            f"features must be aligned 1-D arrays, got {n_feature.shape} and {e_feature.shape}"
        )
    if mask is None:
        mask = (n_feature >= 1.0) & (e_feature >= 1.0)
    else:
        mask = np.asarray(mask, dtype=bool)
    if mask.sum() < 2:
        raise ValueError("need at least two valid nodes to fit the power law")

    x = np.log(n_feature[mask])
    y = np.log(e_feature[mask])
    count = float(len(x))
    sum_x = float(x.sum())
    sum_xx = float((x * x).sum())
    sum_y = float(y.sum())
    sum_xy = float((x * y).sum())
    det = (count + ridge) * (sum_xx + ridge) - sum_x * sum_x
    beta0 = ((sum_xx + ridge) * sum_y - sum_x * sum_xy) / det
    beta1 = ((count + ridge) * sum_xy - sum_x * sum_y) / det
    return PowerLawFit(beta0=beta0, beta1=beta1)


def fit_power_law_tensor(
    log_n: Tensor, log_e: Tensor, ridge: float = DEFAULT_RIDGE
) -> tuple[Tensor, Tensor]:
    """Differentiable OLS: β as a closed-form function of (ln N, ln E).

    This is the substitution of Eq. 2 into the attack objective (Eq. 5a):
    because β has a closed form, gradients flow from the surrogate loss all
    the way back to the adjacency matrix — the poisoning (bi-level) nature of
    the attack is captured exactly rather than by alternating optimisation.
    """
    count = float(log_n.size)
    sum_x = log_n.sum()
    sum_xx = (log_n * log_n).sum()
    sum_y = log_e.sum()
    sum_xy = (log_n * log_e).sum()
    det = (sum_xx + ridge) * (count + ridge) - sum_x * sum_x
    beta0 = ((sum_xx + ridge) * sum_y - sum_x * sum_xy) / det
    beta1 = (sum_xy * (count + ridge) - sum_x * sum_y) / det
    return beta0, beta1


def predict_log_e(beta0: Tensor, beta1: Tensor, log_n: Tensor) -> Tensor:
    """Differentiable regression prediction ``ρ = β0 + β1 ln N`` (Eq. 8b)."""
    return beta0 + beta1 * log_n

"""Compiled hot-kernel layer: ``kernels={auto,numpy,compiled}`` selection.

Every attack ultimately reduces to millions of executions of four O(deg)
primitives.  This package provides a compiled backend for them (C built
on demand via the system compiler, loaded through cffi ABI mode — see
:mod:`repro.kernels.capi`) behind a ``kernels`` flag that mirrors the
engine's ``backend={auto,dense,sparse}`` pattern:

- ``numpy``    — the pure numpy/Python reference paths, always available;
  they are the parity oracle the compiled kernels are tested against.
- ``compiled`` — the C kernels; raises :class:`KernelUnavailableError`
  with a clear message when cffi or a C compiler is missing.
- ``auto``     — ``compiled`` when the toolchain is present, otherwise
  ``numpy`` with a single :class:`RuntimeWarning` per process.

``auto`` first defers to the process default, settable via the
``REPRO_KERNELS`` environment variable or :func:`set_default_kernels`
(what ``runner --kernels`` uses), so one switch reaches every engine an
experiment builds.

:data:`KERNEL_REGISTRY` names the compiled primitives; the
``repro.analysis`` kernel-parity audit enforces that each entry is
exercised by a numpy-vs-compiled ``*Parity*`` test.
"""

from __future__ import annotations

import os
import warnings

from .capi import KernelBuildError, toolchain_available

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_REGISTRY",
    "KernelBuildError",
    "KernelUnavailableError",
    "compiled_available",
    "default_kernels",
    "kernel_table",
    "resolve_kernels",
    "set_default_kernels",
    "toolchain_available",
    "validate_kernels",
]

KERNEL_BACKENDS = ("auto", "numpy", "compiled")

# Names of the compiled primitives.  The repro.analysis kernel-parity
# audit requires a numpy-vs-compiled *Parity* test per entry, so adding a
# kernel here without parity coverage fails CI.
KERNEL_REGISTRY = (
    "toggle_batch",
    "pair_values",
    "scatter_gradient",
    "triangle_counts",
)


class KernelUnavailableError(RuntimeError):
    """``kernels="compiled"`` was requested but no compiled backend exists."""


def validate_kernels(kernels: str) -> str:
    """Validate a ``kernels`` flag value, returning it unchanged."""
    if kernels not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernels must be one of {KERNEL_BACKENDS}, got {kernels!r}"
        )
    return kernels


_DEFAULT: str | None = None


def set_default_kernels(kernels: str) -> None:
    """Set the process-wide default that ``kernels="auto"`` resolves to.

    CLI entry points call this once so the flag reaches every engine
    built downstream without threading a keyword through each call site.
    ``"auto"`` clears the override, restoring ``$REPRO_KERNELS`` /
    availability-based selection.
    """
    global _DEFAULT
    _DEFAULT = None if kernels == "auto" else validate_kernels(kernels)


def default_kernels() -> str:
    """Current process default: set_default_kernels > $REPRO_KERNELS > auto."""
    if _DEFAULT is not None:
        return _DEFAULT
    env = os.environ.get("REPRO_KERNELS")
    if env:
        return validate_kernels(env)
    return "auto"


# Cached load outcome: None = not attempted, a CompiledKernels instance on
# success, or the KernelBuildError that explains the failure.
_TABLE = None


def kernel_table():
    """Return the process-wide :class:`CompiledKernels`, building on first use.

    Raises :class:`KernelBuildError` (cached — the build is not retried)
    when the compiled backend cannot be produced.
    """
    global _TABLE
    if _TABLE is None:
        try:
            from .compiled import CompiledKernels

            _TABLE = CompiledKernels()
        except KernelBuildError as exc:
            _TABLE = exc
        except ImportError as exc:  # cffi missing
            _TABLE = KernelBuildError(str(exc))
    if isinstance(_TABLE, KernelBuildError):
        raise _TABLE
    return _TABLE


def compiled_available() -> bool:
    """True when the compiled backend can actually be loaded."""
    try:
        kernel_table()
    except KernelBuildError:
        return False
    return True


_warned_fallback = False


def _warn_fallback(reason: str) -> None:
    """Emit the once-per-process auto->numpy degradation warning."""
    global _warned_fallback
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            f"kernels='auto': compiled backend unavailable ({reason}); "
            "falling back to the numpy kernels",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_kernels(kernels: str = "auto") -> str:
    """Resolve a ``kernels`` flag to the concrete backend for this host.

    ``auto`` consults :func:`default_kernels` first, then availability:
    compiled when the toolchain works, else numpy plus one warning.
    An explicit ``"compiled"`` that cannot be satisfied raises
    :class:`KernelUnavailableError` with the underlying build failure.
    """
    kernels = validate_kernels(kernels)
    if kernels == "auto":
        kernels = default_kernels()
    if kernels == "numpy":
        return "numpy"
    if kernels == "auto":
        if not toolchain_available():
            _warn_fallback("no C compiler or cffi on this host")
            return "numpy"
        try:
            kernel_table()
        except KernelBuildError as exc:
            _warn_fallback(str(exc))
            return "numpy"
        return "compiled"
    try:
        kernel_table()
    except KernelBuildError as exc:
        raise KernelUnavailableError(
            "kernels='compiled' requested but the compiled backend is "
            f"unavailable: {exc}. Install cffi and a C compiler, or use "
            "kernels='numpy'/'auto'."
        ) from exc
    return "compiled"

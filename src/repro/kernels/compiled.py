"""numpy <-> C marshalling for the compiled kernel backend.

:class:`CompiledKernels` wraps the shared library built by
:mod:`repro.kernels.capi` with numpy-facing methods that mirror the pure
numpy/Python reference implementations exactly:

- ``pair_values``       — batch edge membership against a base CSR
  (:meth:`IncrementalEgonetFeatures.is_edge` / engine ``_pair_values``);
- ``triangle_counts``   — per-node diag(A^3), the triangle term of
  :func:`repro.graph.sparse.egonet_features_sparse`;
- ``toggle_batch`` / ``toggle_one`` — apply edge flips to the (N, E)
  feature arrays (``IncrementalEgonetFeatures`` hot loop), driven through
  :class:`ToggleState`, the persistent arena that keeps override rows and
  cffi pointers alive across calls so a single flip costs one C call;
- ``scatter_pair_gradient`` — the closed-form candidate-pair gradient,
  call-compatible with ``repro.oddball.surrogate._scatter_pair_gradient``
  including the Δ-overlay semantics.

All integer feature updates are exact in float64, and the gradient kernel
replicates the reference's summation order (see kernels.c), so results are
expected to be bit-identical to the numpy oracle — the property the parity
suites assert.

CSR inputs may be backed by read-only memory maps; this module never
writes to them (``indptr`` is copied to int64 when needed, ``indices`` and
``data`` are passed as const pointers in their native layout).
"""

from __future__ import annotations

import numpy as np

from .capi import load_kernel_lib


def _require_sorted(csr) -> None:
    """Reject CSRs without sorted column indices (merge kernels need them)."""
    if not csr.has_sorted_indices:
        raise ValueError(
            "compiled kernels require CSR matrices with sorted indices"
        )


class CompiledKernels:
    """Typed numpy front-end over the compiled kernel shared library."""

    def __init__(self):
        """Load (building if necessary) the shared library."""
        self._ffi, self._lib = load_kernel_lib()

    # -- small marshalling helpers ----------------------------------------

    def _in_i64(self, arr):
        """Const ``long long*`` view of an int64 array (no copy if aligned)."""
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        return self._ffi.from_buffer("long long[]", arr, require_writable=False), arr

    def _in_f64(self, arr):
        """Const ``double*`` view of a float64 array (no copy if aligned)."""
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        return self._ffi.from_buffer("double[]", arr, require_writable=False), arr

    def _out_f64(self, arr):
        """Writable ``double*`` view of a float64 output array."""
        if not (arr.dtype == np.float64 and arr.flags.c_contiguous):
            raise ValueError("output array must be contiguous float64")
        return self._ffi.from_buffer("double[]", arr, require_writable=True)

    def _csr_views(self, csr):
        """Return (indptr_ptr, indices_ptr, suffix, keepalive) for a CSR."""
        indptr = np.ascontiguousarray(csr.indptr, dtype=np.int64)
        indices = csr.indices
        if indices.dtype == np.int32 and indices.flags.c_contiguous:
            suffix = "i32"
            idx_ptr = self._ffi.from_buffer(
                "int[]", indices, require_writable=False
            )
        else:
            indices = np.ascontiguousarray(indices, dtype=np.int64)
            suffix = "i64"
            idx_ptr = self._ffi.from_buffer(
                "long long[]", indices, require_writable=False
            )
        ptr_ptr = self._ffi.from_buffer(
            "long long[]", indptr, require_writable=False
        )
        return ptr_ptr, idx_ptr, suffix, (indptr, indices)

    # -- kernels ----------------------------------------------------------

    def pair_values(self, csr, rows, cols) -> np.ndarray:
        """Base-CSR edge membership (1.0/0.0) for each canonical pair."""
        _require_sorted(csr)
        rows_ptr, rows_keep = self._in_i64(rows)
        cols_ptr, cols_keep = self._in_i64(cols)
        out = np.empty(rows_keep.size, dtype=np.float64)
        if rows_keep.size:
            ptr_ptr, idx_ptr, suffix, keep = self._csr_views(csr)
            fn = getattr(self._lib, f"repro_pair_values_{suffix}")
            fn(ptr_ptr, idx_ptr, rows_ptr, cols_ptr, rows_keep.size,
               self._out_f64(out))
            del keep
        return out

    def triangle_counts(self, csr) -> np.ndarray:
        """``diag(A^3)`` per node — twice the triangle count at each node."""
        _require_sorted(csr)
        n = csr.shape[0]
        out = np.empty(n, dtype=np.float64)
        ptr_ptr, idx_ptr, suffix, keep = self._csr_views(csr)
        fn = getattr(self._lib, f"repro_triangle_counts_{suffix}")
        fn(ptr_ptr, idx_ptr, n, self._out_f64(out))
        del keep
        return out

    def toggle_state(self, base_csr, n_feat, e_feat, registry) -> "ToggleState":
        """Create the persistent flip state backing one feature engine."""
        return ToggleState(self._ffi, self._lib, base_csr, n_feat, e_feat,
                           registry)

    def scatter_pair_gradient(
        self,
        csr,
        d_n: np.ndarray,
        d_e: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        delta=(),
    ) -> np.ndarray:
        """Compiled mirror of ``surrogate._scatter_pair_gradient``.

        Hub selection (more-frequent endpoint via occurrence counts) and
        the Δ-overlay fold replicate the numpy reference; pairs are
        grouped by hub with a stable argsort — like the reference — so
        the kernel scatters each hub's effective row into its dense
        workspace once per group, and per-pair sums run in ascending
        column order to match the CSR mat-vec. See kernels.c for the
        order-equivalence argument.
        """
        _require_sorted(csr)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        gradient = d_n[rows] + d_n[cols] + d_e[rows] + d_e[cols]
        if rows.size == 0:
            return gradient
        n = csr.shape[0]
        occurrences = (
            np.bincount(rows, minlength=n) + np.bincount(cols, minlength=n)
        )
        by_row = occurrences[rows] >= occurrences[cols]
        order = np.argsort(np.where(by_row, rows, cols), kind="stable")
        by_row = by_row[order]
        rows_g, cols_g = rows[order], cols[order]
        hubs = np.ascontiguousarray(np.where(by_row, rows_g, cols_g))
        partners = np.ascontiguousarray(np.where(by_row, cols_g, rows_g))

        delta = list(delta)
        eff_off = np.full(rows.size, -1, dtype=np.int64)
        eff_len = np.zeros(rows.size, dtype=np.int64)
        aux_idx = np.empty(0, dtype=np.int64)
        aux_val = np.empty(0, dtype=np.float64)
        if delta:
            aux_idx, aux_val = self._fold_hub_rows(
                csr, delta, hubs, eff_off, eff_len
            )
        if delta:
            du = np.array([u for u, _, _ in delta], dtype=np.int64)
            dv = np.array([v for _, v, _ in delta], dtype=np.int64)
            dd = np.array([d for _, _, d in delta], dtype=np.float64)
        else:
            du = np.empty(0, dtype=np.int64)
            dv = np.empty(0, dtype=np.int64)
            dd = np.empty(0, dtype=np.float64)

        grad_grouped = np.ascontiguousarray(gradient[order])
        work = np.zeros(n, dtype=np.float64)  # kernel restores to zeros
        ptr_ptr, idx_ptr, suffix, keep = self._csr_views(csr)
        data_ptr, data_keep = self._in_f64(csr.data)
        de_ptr, de_keep = self._in_f64(d_e)
        hubs_ptr, hubs_keep = self._in_i64(hubs)
        part_ptr, part_keep = self._in_i64(partners)
        off_ptr, off_keep = self._in_i64(eff_off)
        len_ptr, len_keep = self._in_i64(eff_len)
        aidx_ptr, aidx_keep = self._in_i64(aux_idx)
        aval_ptr, aval_keep = self._in_f64(aux_val)
        du_ptr, du_keep = self._in_i64(du)
        dv_ptr, dv_keep = self._in_i64(dv)
        dd_ptr, dd_keep = self._in_f64(dd)
        fn = getattr(self._lib, f"repro_scatter_gradient_{suffix}")
        fn(
            ptr_ptr, idx_ptr, data_ptr, de_ptr, hubs_ptr, part_ptr,
            off_ptr, len_ptr, aidx_ptr, aval_ptr, du_ptr, dv_ptr, dd_ptr,
            len(delta), rows.size, self._out_f64(work),
            self._out_f64(grad_grouped),
        )
        del (keep, data_keep, de_keep, hubs_keep, part_keep, off_keep,
             len_keep, aidx_keep, aval_keep, du_keep, dv_keep, dd_keep)
        gradient[order] = grad_grouped
        return gradient

    @staticmethod
    def _fold_hub_rows(csr, delta, hubs, eff_off, eff_len):
        """Materialise Δ-folded effective rows for Δ-touched hubs.

        For every hub that appears as a Δ endpoint, builds a sorted
        (index, value) sparse row equal to the reference's dense
        ``hub_row`` after the ``hub_row[other] += d`` fold (base CSR
        values plus cumulative Δ adjustments, zero-valued entries kept so
        the merge adds the same ±0.0 terms the mat-vec does).  Writes the
        per-pair (offset, length) table in place and returns the
        concatenated aux arrays.
        """
        touched = {}
        for u, v, _ in delta:
            touched.setdefault(int(u), None)
            touched.setdefault(int(v), None)
        indptr = csr.indptr
        chunks_idx, chunks_val = [], []
        offsets = {}
        total = 0
        for hub in touched:
            start, stop = int(indptr[hub]), int(indptr[hub + 1])
            base_idx = np.asarray(csr.indices[start:stop], dtype=np.int64)
            base_val = np.asarray(csr.data[start:stop], dtype=np.float64)
            adjust = {}
            for u, v, d in delta:
                if u == hub:
                    other = int(v)
                elif v == hub:
                    other = int(u)
                else:
                    continue
                adjust[other] = adjust.get(other, 0.0) + d
            if adjust:
                # Equivalent to np.setdiff1d(adjust keys, base_idx) but a
                # binary search against the already-sorted base row instead
                # of two sorts: adj_keys is sorted unique, so the filtered
                # result is too.
                adj_keys = np.fromiter(
                    sorted(adjust), dtype=np.int64, count=len(adjust)
                )
                pos = np.searchsorted(base_idx, adj_keys)
                present = np.zeros(adj_keys.size, dtype=bool)
                inb = pos < base_idx.size
                present[inb] = base_idx[pos[inb]] == adj_keys[inb]
                extra = adj_keys[~present]
                idx = np.concatenate([base_idx, extra])
                val = np.concatenate(
                    [base_val, np.zeros(extra.size, dtype=np.float64)]
                )
                order = np.argsort(idx, kind="stable")
                idx, val = idx[order], val[order]
                positions = np.searchsorted(idx, sorted(adjust))
                for pos, key in zip(positions, sorted(adjust)):
                    val[pos] += adjust[key]
            else:
                idx, val = base_idx, base_val
            offsets[hub] = (total, idx.size)
            chunks_idx.append(idx)
            chunks_val.append(val)
            total += idx.size
        if offsets:
            # Scatter the (offset, length) table onto the pair list with a
            # sorted lookup — the pair list can be tens of thousands of
            # entries while only the Δ-touched hubs (a handful) fold, so a
            # per-pair Python loop would dominate the whole gradient call.
            t_nodes = np.fromiter(offsets, dtype=np.int64, count=len(offsets))
            t_entries = np.array(list(offsets.values()), dtype=np.int64)
            order = np.argsort(t_nodes)
            t_sorted = t_nodes[order]
            pos = np.minimum(
                np.searchsorted(t_sorted, hubs), t_sorted.size - 1
            )
            match = t_sorted[pos] == hubs
            sel = order[pos[match]]
            eff_off[match] = t_entries[sel, 0]
            eff_len[match] = t_entries[sel, 1]
        if chunks_idx:
            return (
                np.ascontiguousarray(np.concatenate(chunks_idx)),
                np.ascontiguousarray(np.concatenate(chunks_val)),
            )
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)


class ToggleState:
    """Persistent arena backing the compiled flip path of one engine.

    Override neighbour rows (sorted int64 column lists) live in a single
    growing arena; per-slot ``offs``/``lens``/``caps`` tables describe
    each row's window.  All cffi pointers — arena, tables, the (N, E)
    feature arrays, the base CSR — are created once and refreshed only on
    (re)allocation, so the steady-state cost of a flip is one C call with
    zero per-flip numpy marshalling.  Rows get slack capacity
    (``len + 2*occurrences + 2``) when placed, so the canonical
    apply-then-rollback cycle of the attack loop never relocates a row.

    The engine's ``_rows`` dict is passed in as ``registry`` and kept in
    sync (node -> slot index), preserving the membership semantics the
    engine's read paths and the test-suite rely on.
    """

    def __init__(self, ffi, lib, base_csr, n_feat, e_feat, registry):
        """Wrap ``base_csr`` + the engine's feature arrays and rows dict."""
        self._ffi = ffi
        self._lib = lib
        self._registry = registry
        n = int(base_csr.shape[0])
        self._base_indptr = np.ascontiguousarray(base_csr.indptr,
                                                 dtype=np.int64)
        indices = base_csr.indices
        if indices.dtype == np.int32 and indices.flags.c_contiguous:
            self._base_indices = indices
            self._idx_c = ffi.from_buffer("int[]", indices,
                                          require_writable=False)
            self._place = lib.repro_place_rows_i32
        else:
            self._base_indices = np.ascontiguousarray(indices,
                                                      dtype=np.int64)
            self._idx_c = ffi.from_buffer("long long[]", self._base_indices,
                                          require_writable=False)
            self._place = lib.repro_place_rows_i64
        self._ptr_c = ffi.from_buffer("long long[]", self._base_indptr,
                                      require_writable=False)
        self._n_feat = n_feat
        self._e_feat = e_feat
        self._nf_c = ffi.from_buffer("double[]", n_feat,
                                     require_writable=True)
        self._ef_c = ffi.from_buffer("double[]", e_feat,
                                     require_writable=True)
        self.slot_of = np.full(n, -1, dtype=np.int64)
        self._nslots = 0
        self.offs = np.zeros(256, dtype=np.int64)
        self.lens = np.zeros(256, dtype=np.int64)
        self.caps = np.zeros(256, dtype=np.int64)
        self._offs_c = self._wr_i64(self.offs)
        self._lens_c = self._wr_i64(self.lens)
        self._caps_c = self._wr_i64(self.caps)
        self._arena = np.empty(4096, dtype=np.int64)
        self._arena_c = self._wr_i64(self._arena)
        self._free = 0

    # -- pointer helpers ---------------------------------------------------

    def _wr_i64(self, arr):
        """Writable ``long long*`` over a contiguous int64 array."""
        return self._ffi.from_buffer("long long[]", arr,
                                     require_writable=True)

    def _in_i64(self, arr):
        """Const ``long long*`` view plus its keepalive array."""
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        return (
            self._ffi.from_buffer("long long[]", arr,
                                  require_writable=False),
            arr,
        )

    # -- row access (engine read paths) ------------------------------------

    def row(self, slot) -> np.ndarray:
        """Sorted int64 neighbour row stored in slot ``slot`` (a view)."""
        off = int(self.offs[slot])
        return self._arena[off:off + int(self.lens[slot])]

    # -- capacity management -----------------------------------------------

    def _ensure_tables(self, min_slots: int) -> None:
        """Grow the per-slot tables to hold at least ``min_slots`` rows."""
        if min_slots <= self.offs.size:
            return
        new_cap = max(2 * self.offs.size, min_slots)
        for name in ("offs", "lens", "caps"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[:old.size] = old
            setattr(self, name, grown)
        self._offs_c = self._wr_i64(self.offs)
        self._lens_c = self._wr_i64(self.lens)
        self._caps_c = self._wr_i64(self.caps)

    def _ensure_arena(self, needed: int) -> None:
        """Make room for ``needed`` arena slots, compacting or growing."""
        if needed <= self._arena.size:
            return
        live = int(self.caps[:self._nslots].sum())
        incoming = needed - self._free
        if 2 * (live + incoming) <= self._arena.size:
            self._compact()
            return
        new_size = max(2 * self._arena.size, 2 * (live + incoming))
        grown = np.empty(new_size, dtype=np.int64)
        grown[:self._free] = self._arena[:self._free]
        self._arena = grown
        self._arena_c = self._wr_i64(grown)

    def _compact(self) -> None:
        """Repack every slot's capacity window to the arena's start."""
        ns = self._nslots
        if ns == 0:
            self._free = 0
            return
        caps = self.caps[:ns]
        new_offs = np.zeros(ns, dtype=np.int64)
        np.cumsum(caps[:-1], out=new_offs[1:])
        total = int(caps.sum())
        src = (
            np.repeat(self.offs[:ns] - new_offs, caps)
            + np.arange(total, dtype=np.int64)
        )
        packed = self._arena[src]
        self._arena[:total] = packed
        self.offs[:ns] = new_offs
        self._free = total

    def _ensure_rows(self, uniq: np.ndarray, need: np.ndarray) -> None:
        """Guarantee slots for ``uniq`` nodes with ``need`` spare capacity.

        Creates slots for nodes seen for the first time (materialising
        their base-CSR rows in C), and relocates rows whose spare
        capacity cannot absorb ``need`` additional entries.  New windows
        get ``len + 2*need + 2`` capacity so the subsequent toggles plus
        their rollback fit without another relocation.
        """
        slots = self.slot_of[uniq]
        new_mask = slots < 0
        if new_mask.any():
            new_nodes = uniq[new_mask]
            k = int(new_nodes.size)
            self._ensure_tables(self._nslots + k)
            new_slots = np.arange(self._nslots, self._nslots + k,
                                  dtype=np.int64)
            self.slot_of[new_nodes] = new_slots
            self._nslots += k
            self._registry.update(
                zip(new_nodes.tolist(), new_slots.tolist())
            )
            slots = self.slot_of[uniq]
        cur_len = np.where(
            new_mask,
            self._base_indptr[uniq + 1] - self._base_indptr[uniq],
            self.lens[slots],
        )
        spare = np.where(new_mask, np.int64(-1), self.caps[slots] - cur_len)
        place = spare < need
        if not place.any():
            return
        p_slots = slots[place]
        p_caps = cur_len[place] + 2 * need[place] + 2
        p_src = np.where(new_mask[place], uniq[place], np.int64(-1))
        total = int(p_caps.sum())
        self._ensure_arena(self._free + total)
        dst = self._free + np.concatenate(
            ([np.int64(0)], np.cumsum(p_caps[:-1]))
        )
        self._free += total
        slots_ptr, slots_keep = self._in_i64(p_slots)
        dst_ptr, dst_keep = self._in_i64(dst)
        caps_ptr, caps_keep = self._in_i64(p_caps)
        src_ptr, src_keep = self._in_i64(p_src)
        self._place(
            self._arena_c, self._offs_c, self._lens_c, self._caps_c,
            slots_ptr, dst_ptr, caps_ptr, src_ptr, slots_keep.size,
            self._ptr_c, self._idx_c,
        )
        del slots_keep, dst_keep, caps_keep, src_keep

    # -- flip entry points -------------------------------------------------

    def toggle_one(self, u: int, v: int) -> None:
        """Toggle edge (u, v), updating rows and feature arrays in C."""
        slot_of = self.slot_of
        su = int(slot_of[u])
        sv = int(slot_of[v])
        if (
            su < 0
            or sv < 0
            or self.caps[su] - self.lens[su] < 1
            or self.caps[sv] - self.lens[sv] < 1
        ):
            uniq, counts = np.unique(
                np.array([u, v], dtype=np.int64), return_counts=True
            )
            self._ensure_rows(uniq, counts)
            su = int(slot_of[u])
            sv = int(slot_of[v])
        rc = self._lib.repro_toggle_one(
            self._arena_c, self._offs_c, self._lens_c, self._caps_c,
            su, sv, u, v, self._nf_c, self._ef_c,
        )
        if rc != 0:
            raise RuntimeError("compiled toggle overflowed its arena row")

    def toggle_pairs(
        self, node_u: np.ndarray, node_v: np.ndarray
    ) -> np.ndarray:
        """Toggle every (node_u[k], node_v[k]) edge; return edge deltas.

        The returned float64 array holds the per-pair edge-weight delta
        (+1.0 insert / -1.0 remove), matching what the numpy path derives
        from its per-row membership checks.
        """
        both = np.concatenate([node_u, node_v])
        uniq, counts = np.unique(both, return_counts=True)
        self._ensure_rows(uniq, counts)
        slot_u = self.slot_of[node_u]
        slot_v = self.slot_of[node_v]
        deltas = np.empty(node_u.size, dtype=np.float64)
        su_ptr, su_keep = self._in_i64(slot_u)
        sv_ptr, sv_keep = self._in_i64(slot_v)
        u_ptr, u_keep = self._in_i64(node_u)
        v_ptr, v_keep = self._in_i64(node_v)
        rc = self._lib.repro_toggle_batch(
            self._arena_c, self._offs_c, self._lens_c, self._caps_c,
            su_ptr, sv_ptr, u_ptr, v_ptr, u_keep.size,
            self._nf_c, self._ef_c,
            self._ffi.from_buffer("double[]", deltas,
                                  require_writable=True),
        )
        del su_keep, sv_keep, u_keep, v_keep
        if rc != 0:
            raise RuntimeError("compiled toggle overflowed its arena row")
        return deltas

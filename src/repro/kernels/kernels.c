/* Compiled hot kernels for the BinarizedAttack reproduction.
 *
 * Built at first use by src/repro/kernels/capi.py:  cc -O2 -fPIC -shared
 * -ffp-contract=off  (the contract flag matters: fused multiply-adds would
 * change the float results away from the numpy parity oracle's).
 *
 * Conventions shared by every kernel:
 *   - `indptr` is always int64 (the Python wrapper normalises it);
 *   - `indices` comes in the CSR's native dtype — every row-walking kernel
 *     is generated for int32 (`_i32`) and int64 (`_i64`) via DEFINE_* macros;
 *   - all arrays are C-contiguous; base-CSR arrays (possibly read-only
 *     memory maps) are only ever read — `const` enforces it at compile time;
 *   - feature updates are ±1-integer arithmetic in float64, so results are
 *     bit-identical to the pure-Python reference regardless of order;
 *   - the gradient kernel mirrors the numpy hub-mat-vec summation order
 *     term for term (see scatter_gradient below).
 *
 * `long long` is used instead of <stdint.h> int64_t so the cffi cdef and
 * this file agree on the exact token (both are 8-byte integers on every
 * supported LP64/LLP64 platform).
 */

#include <string.h>

typedef long long i64;
typedef int i32;

/* ------------------------------------------------------------------ */
/* sorted-array primitives                                            */
/* ------------------------------------------------------------------ */

#define DEFINE_LOWER_BOUND(SUF, IDX)                                      \
    static i64 lower_bound_##SUF(const IDX *a, i64 lo, i64 hi, i64 key) { \
        while (lo < hi) {                                                 \
            i64 mid = lo + ((hi - lo) >> 1);                              \
            if ((i64)a[mid] < key) lo = mid + 1; else hi = mid;           \
        }                                                                 \
        return lo;                                                        \
    }

DEFINE_LOWER_BOUND(i32, i32)
DEFINE_LOWER_BOUND(i64, i64)

/* Count of common elements of two sorted index arrays.  Walks the shorter
 * array with galloping binary search when the lengths are lopsided (hub
 * rows on heavy-tailed graphs), plain merge otherwise. */
#define DEFINE_INTERSECT_COUNT(SUF, IDX)                                  \
    static i64 intersect_count_##SUF(                                     \
            const IDX *a, i64 la, const IDX *b, i64 lb) {                 \
        if (la > lb) {                                                    \
            const IDX *t = a; a = b; b = t;                               \
            i64 tl = la; la = lb; lb = tl;                                \
        }                                                                 \
        i64 count = 0;                                                    \
        if (lb > 32 * la) {                                               \
            i64 lo = 0;                                                   \
            for (i64 i = 0; i < la; i++) {                                \
                lo = lower_bound_##SUF(b, lo, lb, (i64)a[i]);             \
                if (lo < lb && (i64)b[lo] == (i64)a[i]) { count++; lo++; }\
            }                                                             \
            return count;                                                 \
        }                                                                 \
        i64 i = 0, j = 0;                                                 \
        while (i < la && j < lb) {                                        \
            if ((i64)a[i] < (i64)b[j]) i++;                               \
            else if ((i64)a[i] > (i64)b[j]) j++;                          \
            else { count++; i++; j++; }                                   \
        }                                                                 \
        return count;                                                     \
    }

DEFINE_INTERSECT_COUNT(i32, i32)
DEFINE_INTERSECT_COUNT(i64, i64)

/* ------------------------------------------------------------------ */
/* pair_values: batch edge-membership reads against a base CSR         */
/* ------------------------------------------------------------------ */

#define DEFINE_PAIR_VALUES(SUF, IDX)                                      \
    void repro_pair_values_##SUF(                                         \
            const i64 *indptr, const IDX *indices,                        \
            const i64 *rows, const i64 *cols, i64 npairs, double *out) {  \
        for (i64 k = 0; k < npairs; k++) {                                \
            i64 s = indptr[rows[k]], e = indptr[rows[k] + 1];             \
            i64 p = lower_bound_##SUF(indices, s, e, cols[k]);            \
            out[k] = (p < e && (i64)indices[p] == cols[k]) ? 1.0 : 0.0;   \
        }                                                                 \
    }

DEFINE_PAIR_VALUES(i32, i32)
DEFINE_PAIR_VALUES(i64, i64)

/* ------------------------------------------------------------------ */
/* triangle_counts: diag(A^3) per node, for egonet E features          */
/* ------------------------------------------------------------------ */

#define DEFINE_TRIANGLE_COUNTS(SUF, IDX)                                  \
    void repro_triangle_counts_##SUF(                                     \
            const i64 *indptr, const IDX *indices, i64 n, double *out) {  \
        for (i64 u = 0; u < n; u++) {                                     \
            i64 s = indptr[u], e = indptr[u + 1];                         \
            i64 t = 0;                                                    \
            for (i64 p = s; p < e; p++) {                                 \
                i64 v = (i64)indices[p];                                  \
                t += intersect_count_##SUF(                               \
                    indices + s, e - s,                                   \
                    indices + indptr[v], indptr[v + 1] - indptr[v]);      \
            }                                                             \
            out[u] = (double)t;                                           \
        }                                                                 \
    }

DEFINE_TRIANGLE_COUNTS(i32, i32)
DEFINE_TRIANGLE_COUNTS(i64, i64)

/* ------------------------------------------------------------------ */
/* toggle_batch: apply k edge flips to the (N, E) features in one call */
/* ------------------------------------------------------------------ */

/* `arena + offs[t]` is the working neighbour row of the batch's t-th
 * distinct endpoint (sorted int64, length lens[t], capacity caps[t] — the
 * wrapper sizes capacity as current length + occurrences in the batch, so
 * the overflow return below is a can't-happen guard, not a resize
 * protocol).  One flat arena instead of a pointer table lets the wrapper
 * build the whole thing with vectorised numpy (a concatenate plus one
 * fancy-index scatter) and hand the edited rows back as zero-copy views.
 * Pairs arrive as slot indices into that table plus the raw node ids.
 * Flips are applied strictly in order, so a pair repeated in one batch is
 * an apply-then-undo exactly as in the per-flip Python loop.
 *
 * Returns 0 on success, -(k+1) if pair k overflowed a buffer. */
i64 repro_toggle_batch(
        i64 *arena, const i64 *offs, i64 *lens, const i64 *caps,
        const i64 *slot_u, const i64 *slot_v,
        const i64 *node_u, const i64 *node_v, i64 npairs,
        double *n_feat, double *e_feat, double *deltas_out) {
    for (i64 k = 0; k < npairs; k++) {
        i64 su = slot_u[k], sv = slot_v[k];
        i64 u = node_u[k], v = node_v[k];
        i64 *a = arena + offs[su], la = lens[su];
        i64 *b = arena + offs[sv], lb = lens[sv];
        i64 pa = lower_bound_i64(a, 0, la, v);
        int edge = pa < la && a[pa] == v;
        double delta = edge ? -1.0 : 1.0;
        /* common neighbours: every w in Gamma(u) & Gamma(v) gains/loses the
         * flipped edge inside its egonet.  Counted before the row update,
         * exactly like the Python reference. */
        i64 common = 0;
        {
            i64 i = 0, j = 0;
            while (i < la && j < lb) {
                if (a[i] < b[j]) i++;
                else if (a[i] > b[j]) j++;
                else { e_feat[a[i]] += delta; common++; i++; j++; }
            }
        }
        n_feat[u] += delta;
        n_feat[v] += delta;
        {
            double inc = delta * (1.0 + (double)common);
            e_feat[u] += inc;
            e_feat[v] += inc;
        }
        if (edge) {
            memmove(a + pa, a + pa + 1, (size_t)(la - pa - 1) * sizeof(i64));
            lens[su] = la - 1;
        } else {
            if (la + 1 > caps[su]) return -(k + 1);
            memmove(a + pa + 1, a + pa, (size_t)(la - pa) * sizeof(i64));
            a[pa] = v;
            lens[su] = la + 1;
        }
        {
            i64 lb2 = lens[sv];
            i64 pb = lower_bound_i64(b, 0, lb2, u);
            if (edge) {
                memmove(b + pb, b + pb + 1,
                        (size_t)(lb2 - pb - 1) * sizeof(i64));
                lens[sv] = lb2 - 1;
            } else {
                if (lb2 + 1 > caps[sv]) return -(k + 1);
                memmove(b + pb + 1, b + pb, (size_t)(lb2 - pb) * sizeof(i64));
                b[pb] = u;
                lens[sv] = lb2 + 1;
            }
        }
        deltas_out[k] = delta;
    }
    return 0;
}

/* Single-flip fast path: one pair, scalar arguments, no batch arrays.
 * Greedy attacks apply/rollback one permanent flip per step, so this
 * call happens millions of times per campaign — the wrapper keeps
 * persistent table pointers and passes plain ints, making the Python
 * overhead a dict-free slot lookup instead of eight array allocations. */
i64 repro_toggle_one(
        i64 *arena, const i64 *offs, i64 *lens, const i64 *caps,
        i64 su, i64 sv, i64 u, i64 v,
        double *n_feat, double *e_feat) {
    i64 slot_u[1], slot_v[1], node_u[1], node_v[1];
    double delta;
    slot_u[0] = su; slot_v[0] = sv; node_u[0] = u; node_v[0] = v;
    return repro_toggle_batch(arena, offs, lens, caps, slot_u, slot_v,
                              node_u, node_v, 1, n_feat, e_feat, &delta);
}

/* ------------------------------------------------------------------ */
/* place_rows: (re)materialise override rows inside the arena          */
/* ------------------------------------------------------------------ */

/* For each of the nplace slots, install its neighbour row at dst_off[t]
 * with capacity new_cap[t] and update the offs/lens/caps tables:
 *   - src_node[t] >= 0: first touch — copy that node's base-CSR row
 *     (read-only, possibly memory-mapped) into the arena;
 *   - src_node[t] <  0: relocation — move the slot's current arena row
 *     to the new position (the old region is abandoned; the wrapper
 *     compacts the arena when dead space accumulates).
 * Destination regions never overlap each other or any live row (the
 * wrapper carves them from the arena tail), so plain copies suffice. */
#define DEFINE_PLACE_ROWS(SUF, IDX)                                       \
    void repro_place_rows_##SUF(                                          \
            i64 *arena, i64 *offs, i64 *lens, i64 *caps,                  \
            const i64 *slots, const i64 *dst_off, const i64 *new_cap,     \
            const i64 *src_node, i64 nplace,                              \
            const i64 *indptr, const IDX *indices) {                      \
        for (i64 t = 0; t < nplace; t++) {                                \
            i64 s = slots[t];                                             \
            i64 dst = dst_off[t];                                         \
            if (src_node[t] >= 0) {                                       \
                i64 b = indptr[src_node[t]];                              \
                i64 len = indptr[src_node[t] + 1] - b;                    \
                for (i64 j = 0; j < len; j++)                             \
                    arena[dst + j] = (i64)indices[b + j];                 \
                lens[s] = len;                                            \
            } else {                                                      \
                memmove(arena + dst, arena + offs[s],                     \
                        (size_t)lens[s] * sizeof(i64));                   \
            }                                                             \
            offs[s] = dst;                                                \
            caps[s] = new_cap[t];                                         \
        }                                                                 \
    }

DEFINE_PLACE_ROWS(i32, i32)
DEFINE_PLACE_ROWS(i64, i64)

/* ------------------------------------------------------------------ */
/* scatter_gradient: per-pair closed-form gradient over candidates     */
/* ------------------------------------------------------------------ */

/* The numpy reference (_scatter_pair_gradient) groups pairs by hub and, per
 * hub, runs two O(m) sparse mat-vecs against a densified hub row.  This
 * kernel amortises the hub row the same way: the wrapper sorts pairs by
 * hub (stable, like the reference's grouping argsort), and for each run of
 * pairs sharing a hub the hub's effective row is scattered ONCE into the
 * dense `work` array (caller-zeroed, size n), then each partner's CSR row
 * is walked against it in ascending column order — exactly the term
 * sequence of `csr @ hub_row`, zero-valued positions included, so the
 * float results are bit-identical to the reference.  The row is cleared
 * (same index walk) when the hub changes, so `work` returns to all-zeros.
 *
 * The hub's effective row is either its base CSR slice (eff_off[k] < 0) or
 * a wrapper-built (aux_idx, aux_val) slice with the Δ-overlay folded in,
 * mirroring `hub_row[v] += d`.  Overlay corrections for partners that are
 * themselves Δ endpoints are applied after the walk, in overlay order,
 * exactly like the reference's post-mat-vec fixups; `work[other]` IS the
 * effective hub row value the reference looks up.
 *
 * grad[k] arrives pre-filled with the dn/de endpoint terms and is
 * incremented with (d_e[hub] + d_e[partner]) * cc + cw. */
#define DEFINE_SCATTER_GRADIENT(SUF, IDX)                                 \
    static void set_hub_row_##SUF(                                        \
            const i64 *indptr, const IDX *indices, const double *data,    \
            const i64 *aux_idx, const double *aux_val,                    \
            i64 hub, i64 off, i64 len, double *work, double value_or) {   \
        /* value_or < 0: restore zeros; otherwise scatter row values. */  \
        if (off >= 0) {                                                   \
            for (i64 j = 0; j < len; j++)                                 \
                work[aux_idx[off + j]] =                                  \
                    value_or < 0.0 ? 0.0 : aux_val[off + j];              \
        } else {                                                          \
            for (i64 j = indptr[hub]; j < indptr[hub + 1]; j++)           \
                work[(i64)indices[j]] = value_or < 0.0 ? 0.0 : data[j];   \
        }                                                                 \
    }                                                                     \
                                                                          \
    void repro_scatter_gradient_##SUF(                                    \
            const i64 *indptr, const IDX *indices, const double *data,    \
            const double *d_e,                                            \
            const i64 *hubs, const i64 *partners,                         \
            const i64 *eff_off, const i64 *eff_len,                       \
            const i64 *aux_idx, const double *aux_val,                    \
            const i64 *du, const i64 *dv, const double *dd, i64 ndelta,   \
            i64 npairs, double *work, double *grad) {                     \
        i64 cur = -1, cur_off = -1, cur_len = 0;                          \
        for (i64 k = 0; k < npairs; k++) {                                \
            i64 h = hubs[k], p = partners[k];                             \
            i64 off = eff_off[k];                                         \
            if (h != cur) {                                               \
                if (cur >= 0)                                             \
                    set_hub_row_##SUF(indptr, indices, data, aux_idx,     \
                                      aux_val, cur, cur_off, cur_len,     \
                                      work, -1.0);                        \
                set_hub_row_##SUF(indptr, indices, data, aux_idx,         \
                                  aux_val, h, off, eff_len[k],            \
                                  work, 1.0);                             \
                cur = h; cur_off = off; cur_len = eff_len[k];             \
            }                                                             \
            double cc = 0.0, cw = 0.0;                                    \
            for (i64 i = indptr[p]; i < indptr[p + 1]; i++) {             \
                i64 c = (i64)indices[i];                                  \
                double hv = work[c];                                      \
                cc += data[i] * hv;                                       \
                cw += data[i] * (hv * d_e[c]);                            \
            }                                                             \
            for (i64 t = 0; t < ndelta; t++) {                           \
                i64 other = -1;                                           \
                if (du[t] == p) other = dv[t];                            \
                else if (dv[t] == p) other = du[t];                       \
                if (other < 0) continue;                                  \
                double hv = work[other];                                  \
                cc += dd[t] * hv;                                         \
                cw += dd[t] * hv * d_e[other];                            \
            }                                                             \
            grad[k] += (d_e[h] + d_e[p]) * cc + cw;                       \
        }                                                                 \
        if (cur >= 0)                                                     \
            set_hub_row_##SUF(indptr, indices, data, aux_idx, aux_val,    \
                              cur, cur_off, cur_len, work, -1.0);         \
    }

DEFINE_SCATTER_GRADIENT(i32, i32)
DEFINE_SCATTER_GRADIENT(i64, i64)

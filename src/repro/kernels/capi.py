"""Build and load the compiled kernel shared library.

The compiled backend is plain C (``kernels.c`` next to this module),
compiled on first use with the system C compiler and loaded through
cffi's ABI mode (``ffi.dlopen``) — no Python headers, no setuptools, no
install step.  The build is content-addressed: the shared object lands in
a cache directory (``$REPRO_KERNEL_CACHE`` or ``~/.cache/repro-kernels``)
under a name derived from the SHA-256 of the C source plus the compiler
command, so editing the source or flags triggers exactly one rebuild and
concurrent processes converge on the same artefact via atomic rename.

Everything degrades gracefully: if cffi or a C compiler is missing, or
compilation fails, :func:`load_kernel_lib` raises
:class:`KernelBuildError` and the caller (``repro.kernels.resolve``
machinery) falls back to the numpy path or surfaces a clear error,
depending on the requested flag.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

_SOURCE_PATH = Path(__file__).with_name("kernels.c")

# -ffp-contract=off is load-bearing: GCC defaults to contracting a*b+c
# into fused multiply-adds at -O2 on some targets, which would change the
# gradient kernel's float results away from the numpy parity oracle.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno")

# ABI declarations for every exported kernel.  `long long` throughout for
# 64-bit integers so the cdef matches kernels.c exactly; `int` for the
# int32 CSR-index variants.
_CDEF = """
void repro_pair_values_i32(const long long *indptr, const int *indices,
    const long long *rows, const long long *cols, long long npairs,
    double *out);
void repro_pair_values_i64(const long long *indptr, const long long *indices,
    const long long *rows, const long long *cols, long long npairs,
    double *out);
void repro_triangle_counts_i32(const long long *indptr, const int *indices,
    long long n, double *out);
void repro_triangle_counts_i64(const long long *indptr,
    const long long *indices, long long n, double *out);
long long repro_toggle_batch(long long *arena, const long long *offs,
    long long *lens, const long long *caps, const long long *slot_u,
    const long long *slot_v, const long long *node_u,
    const long long *node_v, long long npairs, double *n_feat,
    double *e_feat, double *deltas_out);
long long repro_toggle_one(long long *arena, const long long *offs,
    long long *lens, const long long *caps, long long su, long long sv,
    long long u, long long v, double *n_feat, double *e_feat);
void repro_place_rows_i32(long long *arena, long long *offs,
    long long *lens, long long *caps, const long long *slots,
    const long long *dst_off, const long long *new_cap,
    const long long *src_node, long long nplace, const long long *indptr,
    const int *indices);
void repro_place_rows_i64(long long *arena, long long *offs,
    long long *lens, long long *caps, const long long *slots,
    const long long *dst_off, const long long *new_cap,
    const long long *src_node, long long nplace, const long long *indptr,
    const long long *indices);
void repro_scatter_gradient_i32(const long long *indptr, const int *indices,
    const double *data, const double *d_e, const long long *hubs,
    const long long *partners, const long long *eff_off,
    const long long *eff_len, const long long *aux_idx,
    const double *aux_val, const long long *du, const long long *dv,
    const double *dd, long long ndelta, long long npairs, double *work,
    double *grad);
void repro_scatter_gradient_i64(const long long *indptr,
    const long long *indices, const double *data, const double *d_e,
    const long long *hubs, const long long *partners,
    const long long *eff_off, const long long *eff_len,
    const long long *aux_idx, const double *aux_val, const long long *du,
    const long long *dv, const double *dd, long long ndelta,
    long long npairs, double *work, double *grad);
"""


class KernelBuildError(RuntimeError):
    """Raised when the compiled kernel library cannot be built or loaded."""


def _compiler() -> str | None:
    """Return the C compiler executable to use, or None if none exists."""
    env_cc = os.environ.get("CC")
    if env_cc:
        resolved = shutil.which(env_cc)
        if resolved:
            return resolved
    for cand in ("cc", "gcc", "clang"):
        resolved = shutil.which(cand)
        if resolved:
            return resolved
    return None


def toolchain_available() -> bool:
    """Cheap availability probe: cffi importable and a C compiler on PATH.

    Deliberately does NOT compile anything — resolution of the
    ``kernels`` flag must stay light enough to run in every engine
    constructor.  A positive probe can still fail at build time; callers
    handle :class:`KernelBuildError` from :func:`load_kernel_lib`.
    """
    if _compiler() is None:
        return False
    try:
        import cffi  # noqa: F401
    except ImportError:
        return False
    return True


def cache_dir() -> Path:
    """Directory holding compiled kernel artefacts (created on demand)."""
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-kernels"


def _build_tag(cc: str) -> str:
    """Content hash identifying this exact source + toolchain combination."""
    digest = hashlib.sha256()
    digest.update(_SOURCE_PATH.read_bytes())
    digest.update("\x00".join((cc,) + _CFLAGS).encode())
    digest.update(sys.platform.encode())
    return digest.hexdigest()[:16]


def _compile(cc: str, out_path: Path) -> None:
    """Compile kernels.c to ``out_path`` (atomic: temp file + rename)."""
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=out_path.parent, prefix=out_path.stem, suffix=".so.tmp"
    )
    os.close(fd)
    cmd = [cc, *_CFLAGS, "-o", tmp_name, str(_SOURCE_PATH)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            raise KernelBuildError(
                "kernel compilation failed "
                f"({' '.join(cmd)}):\n{proc.stderr.strip()}"
            )
        os.replace(tmp_name, out_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)


_LIB_CACHE: tuple[object, object] | None = None


def load_kernel_lib() -> tuple[object, object]:
    """Return ``(ffi, lib)`` for the compiled kernels, building if needed.

    The loaded library is cached per process; repeated calls are free.
    Raises :class:`KernelBuildError` when the toolchain is missing or the
    build fails — callers translate that into the flag-dependent
    behaviour (numpy fallback for ``auto``, hard error for ``compiled``).
    """
    global _LIB_CACHE
    if _LIB_CACHE is not None:
        return _LIB_CACHE
    if not _SOURCE_PATH.is_file():
        raise KernelBuildError(f"kernel source missing: {_SOURCE_PATH}")
    cc = _compiler()
    if cc is None:
        raise KernelBuildError(
            "no C compiler found (tried $CC, cc, gcc, clang)"
        )
    try:
        import cffi
    except ImportError as exc:
        raise KernelBuildError("cffi is not installed") from exc
    so_path = cache_dir() / f"repro_kernels_{_build_tag(cc)}.so"
    if not so_path.is_file():
        _compile(cc, so_path)
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    try:
        lib = ffi.dlopen(str(so_path))
    except OSError as exc:
        raise KernelBuildError(f"failed to load {so_path}: {exc}") from exc
    _LIB_CACHE = (ffi, lib)
    return _LIB_CACHE

"""Incremental egonet features: O(deg) updates per edge flip.

The egonet features OddBall (and the attack surrogate) consume are

* ``N_i`` — the degree of ``i``, and
* ``E_i = N_i + ½ diag(A³)_i`` — the number of edges inside ``i``'s egonet.

Recomputing them from scratch costs a dense ``(A @ A) ⊙ A`` — O(n³) work —
per evaluation, which is what made the seed greedy/search attacks quadratic
in wall-clock at the paper's full dataset scale.  But a single flip of the
pair ``{u, v}`` only perturbs the features *locally*:

* ``N_u`` and ``N_v`` change by ±1;
* ``E_u`` changes by ±(1 + c) where ``c = |Γ(u) ∩ Γ(v)|`` is the number of
  common neighbours (the flipped edge itself plus one edge between ``v`` and
  each common neighbour entering/leaving ``u``'s egonet), and symmetrically
  for ``E_v``;
* ``E_w`` changes by ±1 for every common neighbour ``w`` (the flipped edge
  lies inside ``w``'s egonet);
* every other node is untouched.

:class:`IncrementalEgonetFeatures` maintains ``(N, E)`` under a sequence of
flips at O(deg(u) + deg(v)) per flip.  Initial features come from the sparse
kernels in :mod:`repro.graph.sparse`, so building the engine is O(m) — the
dense matrix is never materialised.  Features are integer-valued and every
update adds integers, so the maintained arrays stay *exactly* equal to a
fresh recomputation (the equivalence tests assert bit-for-bit agreement).

Because a flip is an involution with integer deltas, :meth:`rollback` undoes
the last ``k`` flips *exactly* (flip → score → unflip costs O(deg) per flip
and returns the features to bit-identical state).  This is the primitive the
sparse :class:`~repro.oddball.surrogate.SurrogateEngine` backend builds its
transient evaluations on: BinarizedAttack's PGD loop applies an iterate's
flip set, scores it, and rolls it back thousands of times per λ-sweep.  The
materialised CSR is cached per graph *version*, so rolling back to a state
whose CSR was already built (e.g. the clean graph) costs nothing.

Neighbour storage is **lazy**: the clean graph stays in the (possibly
memory-mapped, read-only) base CSR, and a mutable per-node neighbour set is
materialised only for nodes an edge flip actually touches.  Un-materialised
rows are byte-identical to the base CSR by construction, so membership
queries answer from the CSR with a binary search and construction costs
O(m) numpy work instead of an O(n + m) Python loop building ``n`` sets.
This is what lets a :class:`~repro.store.GraphStore`-backed engine run a
whole attack with per-worker private memory proportional to the *touched*
neighbourhood, not the graph — the mmap is never written (flips live in the
override sets and the Δ-overlay) and never copied.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry
from repro.graph.sparse import egonet_features_sparse, to_sparse
from repro.kernels import kernel_table, resolve_kernels

__all__ = ["IncrementalEgonetFeatures"]

Edge = tuple[int, int]


class IncrementalEgonetFeatures:
    """Maintain per-node egonet features ``(N, E)`` under edge flips.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.graph.Graph`, dense adjacency array or scipy
        sparse matrix.  Validated through :func:`repro.graph.sparse.to_sparse`
        (square, symmetric, binary, zero diagonal).
    kernels:
        ``{"auto", "numpy", "compiled"}`` — which hot-kernel backend runs
        the per-flip feature updates (see :mod:`repro.kernels`).  The
        resolved choice is exposed as :attr:`kernels`.  Both backends
        perform the same integer arithmetic in float64, so features,
        rollbacks and materialised CSRs are bit-identical either way;
        ``numpy`` (pure Python sets + numpy) is the parity oracle.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.graph.features import egonet_features
    >>> graph = erdos_renyi(30, 0.2, rng=0)
    >>> engine = IncrementalEgonetFeatures(graph)
    >>> engine.flip(0, 1)  # toggle the pair {0, 1}
    >>> n_ref, e_ref = egonet_features(engine.to_dense())
    >>> bool(np.array_equal(engine.n_feature, n_ref))
    True
    """

    def __init__(self, graph, kernels: str = "auto"):
        csr = to_sparse(graph)
        if not csr.has_sorted_indices:
            csr.sort_indices()
        self.n = int(csr.shape[0])
        #: Resolved kernel backend ("numpy" or "compiled") actually in use.
        self.kernels = resolve_kernels(kernels)
        self._kt = kernel_table() if self.kernels == "compiled" else None
        #: Read-only clean-graph CSR: rows not present in ``_rows`` are
        #: exactly this matrix's rows.  May be backed by np.memmap arrays
        #: (a GraphStore); nothing in this class ever writes to it.
        self._base = csr
        #: Mutable neighbour overrides, materialised lazily — only for nodes
        #: a flip has touched.  Invariant: ``u not in _rows`` ⇒ ``u``'s
        #: neighbourhood equals the base CSR row (no flip ever touched it).
        #: numpy kernels store Python sets; the compiled backend stores
        #: arena slot indices into :class:`~repro.kernels.compiled.ToggleState`
        #: (the C side materialises and edits the rows in place).
        self._rows: "dict[int, set[int] | int]" = {}
        precomputed = getattr(csr, "_repro_egonet_features", None)
        if precomputed is not None:
            # A GraphStore CSR ships its clean (N, E) precomputed at build
            # time; copying the 2 × n vectors replaces the O(Σ deg²)
            # triangle pass — the difference between an O(n) and a
            # minutes-long engine construction at full Blogcatalog scale.
            n_feature, e_feature = precomputed
        else:
            n_feature, e_feature = egonet_features_sparse(csr)
        # copy=True: the features may arrive as read-only memmap rows, and
        # these arrays are mutated in place by every flip.
        self._n_feature = np.array(n_feature, dtype=np.float64, copy=True)
        self._e_feature = np.array(e_feature, dtype=np.float64, copy=True)
        #: Persistent compiled flip state (arena + cached cffi pointers);
        #: None on the numpy backend.  Mutates ``_n_feature``/``_e_feature``
        #: in place and keeps ``_rows`` mapped to its arena slots.
        self._ts = (
            self._kt.toggle_state(
                csr, self._n_feature, self._e_feature, self._rows
            )
            if self._kt is not None
            else None
        )
        self._flips: list[Edge] = []
        # Monotone state version: every flip advances it, every rollback
        # restores the pre-flip value.  Because rollback really does return
        # the graph to that earlier state, a version uniquely identifies the
        # structure along the flip/rollback path — which makes it a safe
        # cache key for the materialised CSR.
        self._version = 0
        self._version_counter = 1
        self._prev_versions: list[int] = []
        self._csr_cache: "sparse.csr_matrix | None" = csr
        self._csr_version = 0
        # Snapshot of the flip stack at the time the cached CSR was built —
        # the next materialisation folds only the *net* pair toggles since
        # then into the cache instead of rebuilding all n rows.
        self._csr_stack: list[Edge] = []

    # ------------------------------------------------------------------ #
    # Feature access
    # ------------------------------------------------------------------ #
    @property
    def n_feature(self) -> np.ndarray:
        """Current per-node degree vector ``N`` (copy)."""
        return self._n_feature.copy()

    @property
    def e_feature(self) -> np.ndarray:
        """Current per-node egonet edge counts ``E`` (copy)."""
        return self._e_feature.copy()

    def features(self) -> tuple[np.ndarray, np.ndarray]:
        """``(N, E)`` copies, matching :func:`egonet_features` exactly."""
        return self.n_feature, self.e_feature

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def _base_row(self, u: int) -> np.ndarray:
        """``u``'s sorted neighbour ids in the clean base CSR (a view)."""
        base = self._base
        return base.indices[base.indptr[u] : base.indptr[u + 1]]

    def _materialize(self, u: int) -> "set[int]":
        """The mutable neighbour set of ``u``, created from the base row on
        first touch (mutation paths only — reads stay allocation-free)."""
        row = self._rows.get(u)
        if row is None:
            row = set(self._base_row(u).tolist())
            self._rows[u] = row
        return row

    def is_edge(self, u: int, v: int) -> bool:
        row = self._rows.get(u)
        if row is None:
            row = self._base_row(u)
        elif isinstance(row, set):
            return v in row
        else:
            row = self._ts.row(row)
        index = int(np.searchsorted(row, v))
        return index < row.size and int(row[index]) == v

    def degree(self, u: int) -> int:
        # N *is* the degree feature, maintained exactly as an integer.
        return int(self._n_feature[u])

    def neighbors(self, u: int) -> "set[int]":
        """The neighbour set of ``u`` — treat as read-only.

        Rows no flip has touched are built fresh from the base CSR (read
        access never materialises a mutable override row).
        """
        row = self._rows.get(u)
        if row is None:
            return set(self._base_row(u).tolist())
        if isinstance(row, set):
            return row
        return set(self._ts.row(row).tolist())

    def common_neighbors(self, u: int, v: int) -> "set[int]":
        """``Γ(u) ∩ Γ(v)`` (never contains ``u`` or ``v`` — no self-loops)."""
        a, b = self.neighbors(u), self.neighbors(v)
        return (a & b) if len(a) <= len(b) else (b & a)

    def edge_values(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """0/1 vector of adjacency values at the given pairs."""
        return np.fromiter(
            (1.0 if self.is_edge(int(r), int(c)) else 0.0
             for r, c in zip(rows, cols)),
            dtype=np.float64,
            count=len(rows),
        )

    @property
    def flips(self) -> list[Edge]:
        """Every flip applied so far, in order (canonical pairs)."""
        return list(self._flips)

    @property
    def depth(self) -> int:
        """Number of flips currently applied (the rollback stack depth).

        ``rollback(depth - token)`` returns the graph to the state it had
        when ``token = depth`` was read — the primitive
        :class:`~repro.oddball.surrogate.SurrogateEngine` checkpoints build
        on to reset shared state between campaign jobs.
        """
        return len(self._flips)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _check_pair(self, u: int, v: int) -> Edge:
        """Validate one flip pair, returning it in canonical (min, max) form."""
        if u == v:
            raise ValueError(f"cannot flip the diagonal pair ({u}, {u})")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"pair ({u}, {v}) out of range for n={self.n}")
        return (u, v) if u < v else (v, u)

    def _bump_version(self, pair: Edge) -> None:
        """Record one applied flip on the stack and advance the version."""
        self._flips.append(pair)
        self._prev_versions.append(self._version)
        self._version = self._version_counter
        self._version_counter += 1

    def flip(self, u: int, v: int) -> None:
        """Toggle the pair ``{u, v}``, updating features in O(deg)."""
        u, v = int(u), int(v)
        pair = self._check_pair(u, v)
        if self._ts is not None:
            self._ts.toggle_one(u, v)
        else:
            self._toggle(u, v)
        self._bump_version(pair)

    def flip_batch(self, pairs) -> None:
        """Apply many flips in order with one kernel call (compiled backend).

        Semantically identical to ``for u, v in pairs: self.flip(u, v)`` —
        flips land strictly in sequence, each on the stack with its own
        version — but the compiled backend crosses the Python/C boundary
        once for the whole batch instead of once per flip.  The numpy
        backend simply loops.
        """
        pairs = list(pairs)
        tracer = _telemetry.active_tracer()
        start_ns = time.perf_counter_ns() if tracer is not None else 0
        if self._ts is not None and len(pairs) > 1:
            arr = np.array(pairs, dtype=np.int64)
            u, v = arr[:, 0], arr[:, 1]
            invalid = (u == v) | (u < 0) | (u >= self.n) | (v < 0) | (v >= self.n)
            if invalid.any():
                # Raise before any mutation, with the same message
                # _check_pair would produce for the first bad pair.
                i = int(np.flatnonzero(invalid)[0])
                self._check_pair(int(u[i]), int(v[i]))
            node_u = np.ascontiguousarray(np.minimum(u, v))
            node_v = np.ascontiguousarray(np.maximum(u, v))
            self._ts.toggle_pairs(node_u, node_v)
            self._flips.extend(zip(node_u.tolist(), node_v.tolist()))
            # Bulk equivalent of len(pairs) _bump_version calls.
            counter = self._version_counter
            count = len(pairs)
            self._prev_versions.append(self._version)
            self._prev_versions.extend(range(counter, counter + count - 1))
            self._version = counter + count - 1
            self._version_counter = counter + count
            if tracer is not None:
                tracer.count("kernels.toggle_batch", len(pairs),
                             time.perf_counter_ns() - start_ns)
            return
        for u, v in pairs:
            self.flip(int(u), int(v))
        if tracer is not None:
            tracer.count("kernels.toggle_batch", len(pairs),
                         time.perf_counter_ns() - start_ns)

    def rollback(self, count: int = 1) -> None:
        """Undo the last ``count`` flips exactly (reverse order, O(deg) each).

        Toggling is an involution with integer deltas, so rolling back
        returns ``(N, E)`` and the neighbour rows to *bit-identical* state.
        The state version is restored too, so a CSR cached before the flips
        (e.g. the clean graph's) becomes valid again without a rebuild.
        """
        if count < 0:
            raise ValueError(f"rollback count must be non-negative, got {count}")
        if count > len(self._flips):
            raise ValueError(
                f"cannot roll back {count} flips, only {len(self._flips)} applied"
            )
        if self._ts is not None and count > 1:
            arr = np.array(self._flips[-count:], dtype=np.int64)[::-1]
            del self._flips[-count:]
            self._ts.toggle_pairs(
                np.ascontiguousarray(arr[:, 0]),
                np.ascontiguousarray(arr[:, 1]),
            )
            self._version = self._prev_versions[-count]
            del self._prev_versions[-count:]
            return
        for _ in range(count):
            u, v = self._flips.pop()
            if self._ts is not None:
                self._ts.toggle_one(u, v)
            else:
                self._toggle(u, v)
            self._version = self._prev_versions.pop()

    def _toggle(self, u: int, v: int) -> None:
        """The O(deg) feature/neighbour update shared by flip and rollback."""
        # Mutation materialises the two endpoint rows (and only those): the
        # base CSR stays untouched, so a memory-mapped base is never written.
        row_u = self._materialize(u)
        row_v = self._materialize(v)
        delta = -1.0 if v in row_u else 1.0
        common = (row_u & row_v) if len(row_u) <= len(row_v) else (row_v & row_u)
        self._n_feature[u] += delta
        self._n_feature[v] += delta
        self._e_feature[u] += delta * (1.0 + len(common))
        self._e_feature[v] += delta * (1.0 + len(common))
        for w in common:
            self._e_feature[w] += delta
        if delta > 0:
            row_u.add(v)
            row_v.add(u)
        else:
            row_u.discard(v)
            row_v.discard(u)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def adjacency_csr(self) -> sparse.csr_matrix:
        """Current adjacency as CSR (incrementally folded after flips).

        The result is cached per state *version*: flip → rollback sequences
        that return to a previously materialised state reuse its CSR.  When
        the cache is stale, the *net* pair toggles since the cached state
        are folded into it as a sparse ±1 delta — a vectorised O(m + d)
        sparse addition — instead of rebuilding all ``n`` rows through a
        Python loop.  A greedy attack applying one permanent flip per step
        therefore pays O(m) numpy work per materialisation, not O(n + m)
        Python work (the old rebuild-per-flip loop).
        """
        if self._csr_cache is not None and self._csr_version == self._version:
            return self._csr_cache
        if self._csr_cache is None:
            self._csr_cache = self._rebuild_csr()
        else:
            self._csr_cache = self._fold_csr(self._csr_cache)
        self._csr_version = self._version
        self._csr_stack = list(self._flips)
        return self._csr_cache

    def _net_changes(self) -> "list[tuple[int, int, float]]":
        """Net ``(u, v, ±1)`` toggles between the cached CSR state and now.

        Pairs toggled an odd number of times since the cached state are
        exactly the entries whose value changed (toggling is an involution);
        the sign is the *current* value minus the cached one.
        """
        stack, current = self._csr_stack, self._flips
        prefix = 0
        for prefix in range(min(len(stack), len(current)) + 1):
            if (
                prefix == len(stack)
                or prefix == len(current)
                or stack[prefix] != current[prefix]
            ):
                break
        parity: dict[Edge, int] = {}
        for pair in stack[prefix:]:
            parity[pair] = parity.get(pair, 0) ^ 1
        for pair in current[prefix:]:
            parity[pair] = parity.get(pair, 0) ^ 1
        return [
            # Changed pairs were flipped, so their endpoint rows are
            # materialised — this membership test is a set lookup.
            (u, v, 1.0 if self.is_edge(u, v) else -1.0)
            for (u, v), odd in parity.items()
            if odd
        ]

    def csr_with_delta(
        self, max_delta: int = 64
    ) -> "tuple[sparse.csr_matrix, list[tuple[int, int, float]]]":
        """``(cached CSR, net overlay)`` — the zero-copy materialisation.

        When at most ``max_delta`` pairs differ from the cached CSR, the
        cache is returned untouched together with the ``(u, v, ±1)``
        overlay entries describing the difference — the representation
        :func:`repro.oddball.surrogate._scatter_pair_gradient` folds into
        its mat-vecs in O(|delta|).  A greedy attack's per-step gradient
        therefore costs NO CSR work at all; beyond ``max_delta`` the flips
        are folded in (:meth:`adjacency_csr`) and the overlay is empty.
        """
        if self._csr_cache is not None and self._csr_version == self._version:
            return self._csr_cache, []
        if self._csr_cache is not None:
            delta = self._net_changes()
            if len(delta) <= max_delta:
                return self._csr_cache, delta
        return self.adjacency_csr(), []

    def _fold_csr(self, cached: sparse.csr_matrix) -> sparse.csr_matrix:
        """Fold the net flips between the cached state and now into ``cached``."""
        changed = self._net_changes()
        if not changed:
            return cached
        rows = np.fromiter((c[0] for c in changed), dtype=np.intp, count=len(changed))
        cols = np.fromiter((c[1] for c in changed), dtype=np.intp, count=len(changed))
        signs = np.fromiter((c[2] for c in changed), dtype=np.float64, count=len(changed))
        delta = sparse.coo_matrix(
            (
                np.concatenate([signs, signs]),
                (np.concatenate([rows, cols]), np.concatenate([cols, rows])),
            ),
            shape=(self.n, self.n),
        )
        folded = (cached + delta).tocsr()
        folded.eliminate_zeros()
        return folded

    def _rebuild_csr(self) -> sparse.csr_matrix:
        """Full rebuild from base rows + overrides (fallback, O(n + m) Python).

        Degrees come from the base CSR's ``np.diff(indptr)`` with one
        correction per override row — only the touched nodes cost Python
        work, not all ``n`` (the old per-node ``self.degree`` loop).
        """
        indptr = np.zeros(self.n + 1, dtype=np.intp)
        degrees = np.diff(self._base.indptr).astype(np.intp)
        for i, override in self._rows.items():
            degrees[i] = (
                len(override)
                if isinstance(override, set)
                else int(self._ts.lens[override])
            )
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.intp)
        for i in range(self.n):
            override = self._rows.get(i)
            if override is None:
                row = self._base_row(i)
            elif isinstance(override, set):
                row = sorted(override)
            else:
                row = self._ts.row(override)
            indices[indptr[i] : indptr[i + 1]] = row
        data = np.ones(len(indices), dtype=np.float64)
        return sparse.csr_matrix((data, indices, indptr), shape=(self.n, self.n))

    def to_dense(self) -> np.ndarray:
        """Current adjacency densified (testing / small graphs only)."""
        # repro: allow-densify(explicit escape hatch for tests and small graphs)
        return self.adjacency_csr().toarray()

"""Simple undirected graph over a dense adjacency matrix.

Every algorithm in the paper — OddBall's egonet features, the attack's
decision variables, the GCN propagation — consumes the adjacency matrix
directly, so the graph type is a thin, validated wrapper around a dense
``float64`` numpy array.  Graphs at the paper's scale (~1000 nodes) occupy
~8 MB, well within laptop memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.validation import check_adjacency

__all__ = ["Graph"]

Edge = tuple[int, int]


class Graph:
    """An undirected, unweighted, simple graph.

    Parameters
    ----------
    adjacency:
        Square, symmetric, binary matrix with zero diagonal.  A defensive
        copy is made; mutate through the provided methods.
    """

    def __init__(self, adjacency: np.ndarray):
        self._adjacency = check_adjacency(np.array(adjacency, dtype=np.float64, copy=True))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n: int) -> "Graph":
        """Graph with ``n`` nodes and no edges."""
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        return cls(np.zeros((n, n)))

    @classmethod
    def complete(cls, n: int) -> "Graph":
        """Complete graph K_n."""
        adjacency = np.ones((n, n)) - np.eye(n)
        return cls(adjacency)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "Graph":
        """Build a graph on ``n`` nodes from an iterable of (u, v) pairs."""
        adjacency = np.zeros((n, n))
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop ({u}, {u}) not allowed in a simple graph")
            adjacency[u, v] = adjacency[v, u] = 1.0
        return cls(adjacency)

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def adjacency(self) -> np.ndarray:
        """Defensive copy of the adjacency matrix."""
        return self._adjacency.copy()

    @property
    def adjacency_view(self) -> np.ndarray:
        """Read-only view of the adjacency matrix (no copy)."""
        view = self._adjacency.view()
        view.flags.writeable = False
        return view

    @property
    def number_of_nodes(self) -> int:
        return self._adjacency.shape[0]

    @property
    def number_of_edges(self) -> int:
        return int(self._adjacency.sum()) // 2

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return self._adjacency.sum(axis=1)

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        self._check_node(node)
        return int(self._adjacency[node].sum())

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return bool(self._adjacency[u, v] == 1.0)

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of the node's neighbours."""
        self._check_node(node)
        return np.flatnonzero(self._adjacency[node])

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as (u, v) with u < v."""
        rows, cols = np.nonzero(np.triu(self._adjacency, k=1))
        yield from zip(rows.tolist(), cols.tolist())

    def edge_set(self) -> set[Edge]:
        """Set of (u, v) pairs with u < v."""
        return set(self.edges())

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> None:
        """Insert edge (u, v); raises if it already exists or u == v."""
        self._check_pair(u, v)
        if self._adjacency[u, v] == 1.0:
            raise ValueError(f"edge ({u}, {v}) already present")
        self._adjacency[u, v] = self._adjacency[v, u] = 1.0

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge (u, v); raises if absent."""
        self._check_pair(u, v)
        if self._adjacency[u, v] == 0.0:
            raise ValueError(f"edge ({u}, {v}) not present")
        self._adjacency[u, v] = self._adjacency[v, u] = 0.0

    def flip_edge(self, u: int, v: int) -> None:
        """Toggle edge (u, v): add it if absent, delete it if present."""
        self._check_pair(u, v)
        new_value = 1.0 - self._adjacency[u, v]
        self._adjacency[u, v] = self._adjacency[v, u] = new_value

    def copy(self) -> "Graph":
        return Graph(self._adjacency)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def connected_components(self) -> list[np.ndarray]:
        """Connected components as sorted node arrays (BFS)."""
        n = self.number_of_nodes
        seen = np.zeros(n, dtype=bool)
        components: list[np.ndarray] = []
        for start in range(n):
            if seen[start]:
                continue
            frontier = [start]
            seen[start] = True
            members = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in np.flatnonzero(self._adjacency[node]):
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        members.append(int(neighbor))
                        frontier.append(int(neighbor))
            components.append(np.array(sorted(members)))
        return components

    def is_connected(self) -> bool:
        """Whether the graph has a single connected component (or is empty)."""
        if self.number_of_nodes == 0:
            return True
        return len(self.connected_components()) == 1

    def largest_component(self) -> np.ndarray:
        """Node array of the largest connected component."""
        components = self.connected_components()
        if not components:
            return np.array([], dtype=int)
        return max(components, key=len)

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes`` (relabelled 0..len-1, input order)."""
        index = np.asarray(nodes, dtype=int)
        if len(np.unique(index)) != len(index):
            raise ValueError("subgraph nodes must be unique")
        return Graph(self._adjacency[np.ix_(index, index)])

    def egonet(self, node: int) -> "Graph":
        """Induced subgraph on the node and its one-hop neighbours."""
        self._check_node(node)
        members = np.concatenate(([node], self.neighbors(node)))
        return self.subgraph(members)

    def triangle_counts(self) -> np.ndarray:
        """Number of triangles through each node: ``diag(A³)/2``."""
        a = self._adjacency
        return ((a @ a) * a).sum(axis=1) / 2.0

    # ------------------------------------------------------------------ #
    # Dunder / helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency.shape == other._adjacency.shape and bool(
            np.array_equal(self._adjacency, other._adjacency)
        )

    def __hash__(self):  # graphs are mutable
        raise TypeError("Graph is unhashable (mutable)")

    def __repr__(self) -> str:
        return f"Graph(n={self.number_of_nodes}, m={self.number_of_edges})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.number_of_nodes:
            raise IndexError(f"node {node} out of range [0, {self.number_of_nodes})")

    def _check_pair(self, u: int, v: int) -> None:
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) not allowed in a simple graph")

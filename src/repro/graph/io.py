"""Edge-list I/O for graphs.

Format: one ``u v`` pair per line, whitespace-separated, ``#`` comments
allowed — the same shape as the SNAP dumps the paper's real datasets ship in,
so a user with network access can drop the true Blogcatalog/Wikivote/
Bitcoin-Alpha files in directly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.graph import Graph

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(path: "str | Path", n_nodes: "int | None" = None,
                   relabel: bool = True) -> Graph:
    """Read a graph from an edge-list file.

    Parameters
    ----------
    path:
        Text file with one ``u v`` pair per line (extra columns such as
        weights/timestamps are ignored; duplicate and reversed pairs collapse;
        self-loops are dropped — matching the paper's pre-processing of
        Bitcoin-Alpha into an unsigned, unweighted simple graph).
    n_nodes:
        Optional fixed node count; defaults to ``max id + 1`` (or the number
        of distinct ids when ``relabel``).
    relabel:
        When True (default), node ids are compacted to ``0..k-1`` in sorted
        order of their original ids.
    """
    pairs: list[tuple[int, int]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(f"malformed edge-list line: {line!r}")
        u, v = int(fields[0]), int(fields[1])
        if u == v:
            continue
        pairs.append((u, v))

    if relabel:
        ids = sorted({node for pair in pairs for node in pair})
        mapping = {node: i for i, node in enumerate(ids)}
        pairs = [(mapping[u], mapping[v]) for u, v in pairs]
        inferred = len(ids)
    else:
        inferred = (max((max(u, v) for u, v in pairs), default=-1)) + 1

    total = inferred if n_nodes is None else n_nodes
    if n_nodes is not None and inferred > n_nodes:
        raise ValueError(f"edge list references node >= n_nodes ({inferred} > {n_nodes})")
    adjacency = np.zeros((total, total))
    for u, v in pairs:
        adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency)


def write_edge_list(graph: Graph, path: "str | Path", header: str = "") -> Path:
    """Write the graph as a ``u v`` edge list (u < v per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    path.write_text("\n".join(lines) + "\n")
    return path

"""Edge-list and dataset I/O for graphs.

Two formats:

* **edge lists** (:func:`read_edge_list` / :func:`write_edge_list`): one
  ``u v`` pair per line, whitespace-separated, ``#`` comments allowed — the
  same shape as the SNAP dumps the paper's real datasets ship in, so a user
  with network access can drop the true Blogcatalog/Wikivote/Bitcoin-Alpha
  files in directly.  The bare graph only — anomaly ground truth does not
  survive.
* **datasets** (:func:`read_dataset` / :func:`write_dataset`): a versioned
  JSON file carrying the full :class:`~repro.graph.datasets.Dataset` — the
  graph *plus* the ``planted`` ground-truth dict the evaluation metrics
  need.  Round-trips exactly; a version field guards future layout changes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "DATASET_FORMAT_VERSION",
    "read_dataset",
    "read_edge_list",
    "write_dataset",
    "write_edge_list",
]

#: Version of the JSON dataset format written by :func:`write_dataset`.
DATASET_FORMAT_VERSION = 1


def read_edge_list(path: "str | Path", n_nodes: "int | None" = None,
                   relabel: bool = True) -> Graph:
    """Read a graph from an edge-list file.

    Parameters
    ----------
    path:
        Text file with one ``u v`` pair per line (extra columns such as
        weights/timestamps are ignored; duplicate and reversed pairs collapse;
        self-loops are dropped — matching the paper's pre-processing of
        Bitcoin-Alpha into an unsigned, unweighted simple graph).
    n_nodes:
        Optional fixed node count; defaults to ``max id + 1`` (or the number
        of distinct ids when ``relabel``).
    relabel:
        When True (default), node ids are compacted to ``0..k-1`` in sorted
        order of their original ids.
    """
    pairs: list[tuple[int, int]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(f"malformed edge-list line: {line!r}")
        u, v = int(fields[0]), int(fields[1])
        if u == v:
            continue
        pairs.append((u, v))

    if relabel:
        ids = sorted({node for pair in pairs for node in pair})
        mapping = {node: i for i, node in enumerate(ids)}
        pairs = [(mapping[u], mapping[v]) for u, v in pairs]
        inferred = len(ids)
    else:
        inferred = (max((max(u, v) for u, v in pairs), default=-1)) + 1

    total = inferred if n_nodes is None else n_nodes
    if n_nodes is not None and inferred > n_nodes:
        raise ValueError(f"edge list references node >= n_nodes ({inferred} > {n_nodes})")
    adjacency = np.zeros((total, total))
    for u, v in pairs:
        adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency)


def write_edge_list(graph: Graph, path: "str | Path", header: str = "") -> Path:
    """Write the graph as a ``u v`` edge list (u < v per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    path.write_text("\n".join(lines) + "\n")
    return path


def write_dataset(dataset, path: "str | Path") -> Path:
    """Persist a :class:`~repro.graph.datasets.Dataset` as versioned JSON.

    Unlike the bare edge-list format, the ``planted`` ground-truth dict
    (clique centers / star hubs) round-trips — without it a reloaded
    dataset cannot be scored for detection recall.  Store-backed datasets
    need no serialisation (the store directory *is* their on-disk form)
    and are rejected here.
    """
    if not isinstance(dataset.graph, Graph):
        raise TypeError(
            "write_dataset serialises in-memory datasets; store-backed "
            "datasets already live on disk under their cache directory"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": DATASET_FORMAT_VERSION,
        "name": dataset.name,
        "n_nodes": dataset.graph.number_of_nodes,
        "edges": [[int(u), int(v)] for u, v in dataset.graph.edges()],
        "planted": {
            kind: [int(node) for node in nodes]
            for kind, nodes in dataset.planted.items()
        },
    }
    path.write_text(json.dumps(payload) + "\n")
    return path


def read_dataset(path: "str | Path"):
    """Load a :func:`write_dataset` file back into a ``Dataset``.

    The version field is checked before anything else, so a future format
    bump fails loudly instead of mis-parsing.
    """
    from repro.graph.datasets import Dataset

    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != DATASET_FORMAT_VERSION:
        raise ValueError(
            f"dataset file {path} has unsupported format version {version!r} "
            f"(this build reads {DATASET_FORMAT_VERSION})"
        )
    graph = Graph.from_edges(
        payload["n_nodes"], [(int(u), int(v)) for u, v in payload["edges"]]
    )
    planted = {
        kind: [int(node) for node in nodes]
        for kind, nodes in payload.get("planted", {}).items()
    }
    return Dataset(name=payload["name"], graph=graph, planted=planted)

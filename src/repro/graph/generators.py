"""Random graph generators: Erdős–Rényi and Barabási–Albert.

The paper's synthetic datasets are ``ER(n=1000, p=0.02)`` and
``BA(n=1000, m=5)`` (Section VIII-A).  Both generators are implemented from
scratch; the test-suite cross-checks their degree statistics against
networkx as an oracle.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["barabasi_albert", "erdos_renyi", "random_regular_ish", "ring_lattice"]


def erdos_renyi(n: int, p: float, rng=None) -> Graph:
    """G(n, p): each of the ``n·(n−1)/2`` pairs is an edge with probability ``p``."""
    if n < 0:
        raise ValueError(f"node count must be non-negative, got {n}")
    check_probability(p, "edge probability")
    generator = as_generator(rng)
    upper = np.triu(generator.random((n, n)) < p, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    return Graph(adjacency)


def barabasi_albert(n: int, m: int, rng=None) -> Graph:
    """Preferential attachment: each new node attaches to ``m`` existing nodes.

    Follows the standard repeated-nodes construction (as in networkx): the
    probability of attaching to a node is proportional to its current degree.
    Starts from ``m`` isolated seed nodes; the first arrival connects to all
    of them, guaranteeing a connected result for ``m ≥ 1``.
    """
    if m < 1:
        raise ValueError(f"attachment count m must be >= 1, got {m}")
    if n < m + 1:
        raise ValueError(f"need n > m (got n={n}, m={m})")
    generator = as_generator(rng)
    graph = Graph.empty(n)
    # `repeated` holds node ids once per incident edge endpoint, so uniform
    # sampling from it is exactly degree-proportional sampling.
    repeated: list[int] = []
    targets = list(range(m))
    for source in range(m, n):
        for target in set(targets):
            graph.add_edge(source, target)
            repeated.append(source)
            repeated.append(target)
        targets = _sample_distinct(repeated, m, generator)
    return graph


def _sample_distinct(pool: list[int], m: int, rng: np.random.Generator) -> list[int]:
    """Draw ``m`` distinct values from ``pool`` (uniform over pool entries)."""
    chosen: set[int] = set()
    while len(chosen) < m:
        chosen.add(pool[int(rng.integers(len(pool)))])
    return list(chosen)


def ring_lattice(n: int, k: int) -> Graph:
    """Ring lattice: each node linked to its ``k`` nearest neighbours per side."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < 2 * k + 1:
        raise ValueError(f"need n >= 2k+1 (got n={n}, k={k})")
    graph = Graph.empty(n)
    for node in range(n):
        for offset in range(1, k + 1):
            neighbor = (node + offset) % n
            if not graph.has_edge(node, neighbor):
                graph.add_edge(node, neighbor)
    return graph


def random_regular_ish(n: int, degree: int, rng=None) -> Graph:
    """Approximately ``degree``-regular graph via edge-randomised ring lattice.

    Used by the failure-injection tests as a homogeneous-degree contrast to
    the heavy-tailed generators (OddBall scores should be nearly flat here).
    """
    if degree % 2 != 0:
        raise ValueError("degree must be even for the ring-lattice construction")
    generator = as_generator(rng)
    graph = ring_lattice(n, degree // 2)
    edges = list(graph.edges())
    generator.shuffle(edges)
    # Random double-edge swaps preserve the degree sequence exactly.
    for _ in range(len(edges)):
        (a, b), (c, d) = (
            edges[int(generator.integers(len(edges)))],
            edges[int(generator.integers(len(edges)))],
        )
        if len({a, b, c, d}) < 4:
            continue
        if graph.has_edge(a, c) or graph.has_edge(b, d):
            continue
        if not (graph.has_edge(a, b) and graph.has_edge(c, d)):
            continue
        graph.remove_edge(a, b)
        graph.remove_edge(c, d)
        graph.add_edge(a, c)
        graph.add_edge(b, d)
        edges = list(graph.edges())
    return graph

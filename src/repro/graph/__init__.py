"""Graph substrate: graphs, generators, egonet features, datasets, threat model."""

from repro.graph.anomaly import inject_near_clique, inject_near_star, plant_anomalies
from repro.graph.datasets import (
    DATASET_NAMES,
    Dataset,
    dataset_statistics,
    load_dataset,
    sample_connected_subgraph,
)
from repro.graph.features import (
    egonet_features,
    egonet_features_bruteforce,
    egonet_features_from_graph,
    egonet_features_tensor,
)
from repro.graph.generators import barabasi_albert, erdos_renyi, ring_lattice
from repro.graph.graph import Graph
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.graph.io import (
    DATASET_FORMAT_VERSION,
    read_dataset,
    read_edge_list,
    write_dataset,
    write_edge_list,
)
from repro.graph.sparse import (
    SparseGraphView,
    anomaly_scores_sparse,
    egonet_features_sparse,
    to_sparse,
)
from repro.graph.threatmodel import Defender, Environment, ManInTheMiddleAttacker

__all__ = [
    "DATASET_FORMAT_VERSION",
    "DATASET_NAMES",
    "Dataset",
    "Defender",
    "Environment",
    "Graph",
    "IncrementalEgonetFeatures",
    "ManInTheMiddleAttacker",
    "SparseGraphView",
    "anomaly_scores_sparse",
    "barabasi_albert",
    "dataset_statistics",
    "egonet_features_sparse",
    "to_sparse",
    "egonet_features",
    "egonet_features_bruteforce",
    "egonet_features_from_graph",
    "egonet_features_tensor",
    "erdos_renyi",
    "inject_near_clique",
    "inject_near_star",
    "load_dataset",
    "plant_anomalies",
    "read_dataset",
    "read_edge_list",
    "ring_lattice",
    "sample_connected_subgraph",
    "write_dataset",
    "write_edge_list",
]

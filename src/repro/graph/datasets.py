"""Dataset registry: the paper's five graphs (Table I).

Two synthetic graphs are generated exactly as in the paper:

* ``ER``  — Erdős–Rényi, n=1000, p=0.02 (≈ 9948 edges in the paper's draw);
* ``BA``  — Barabási–Albert, n=1000, m=5 (4975 edges).

The three real graphs (Blogcatalog, Wikivote, Bitcoin-Alpha) cannot be
downloaded in this offline environment, so this module builds *statistical
stand-ins*: preferential-attachment cores matched to the paper's sampled
node/edge counts, with planted near-clique/near-star egonets so OddBall's
log-log regression and high-score tail behave like the originals.  Every
experiment in the paper consumes these graphs only through structural
statistics, so the substitution preserves the relevant behaviour (see
DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.anomaly import plant_anomalies
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.graph import Graph
from repro.utils.rng import as_generator

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "dataset_statistics",
    "load_dataset",
    "sample_connected_subgraph",
]

#: Paper Table I targets: name -> (nodes, edges).
_TABLE_I = {
    "er": (1000, 9948),
    "ba": (1000, 4975),
    "blogcatalog": (1000, 6190),
    "wikivote": (1012, 4860),
    "bitcoin-alpha": (1025, 2311),
}

DATASET_NAMES = tuple(_TABLE_I)


@dataclass
class Dataset:
    """A named graph plus the ground truth of its planted anomalies.

    ``graph`` is a dense :class:`Graph` for the in-memory datasets, or a
    memory-mapped :class:`~repro.store.GraphStore` for the paper-scale
    ``*-full`` names — both answer the node/edge/degree queries the
    experiment drivers ask.
    """

    name: str
    graph: "Graph"
    planted: dict[str, list[int]] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges


def load_dataset(
    name: str, rng=None, scale: float = 1.0, cache_dir=None
) -> Dataset:
    """Build one of the paper's five graphs (or a scaled-down version).

    Parameters
    ----------
    name:
        One of ``er``, ``ba``, ``blogcatalog``, ``wikivote``, ``bitcoin-alpha``
        (case-insensitive) — or a paper-scale ``*-full`` variant
        (``blogcatalog-full`` is the 88.8k-node stand-in), which resolves to
        a memory-mapped :class:`~repro.store.GraphStore` built once and
        cached content-addressed (see :mod:`repro.store`).
    rng:
        Seed or generator; the same seed always yields the same graph.
        Store-backed names require a plain integer seed (the build recipe
        is content-hashed, so its randomness source must be hashable).
    scale:
        Multiplier on the node count (CI presets use ~0.2–0.3 to keep the
        benchmark suite fast).  Edge targets scale with the node count.
    cache_dir:
        Store cache directory for ``*-full`` names (default:
        ``$REPRO_STORE_CACHE`` or ``./.repro-store-cache``); ignored for
        the in-memory datasets.
    """
    key = name.lower().replace("_", "-")
    if key.endswith("-full"):
        from repro.store import load_store_dataset

        if rng is not None and not isinstance(rng, (int, np.integer)):
            raise TypeError(
                f"store-backed dataset {name!r} needs an integer seed "
                f"(got {type(rng).__name__}): the build is content-addressed"
            )
        return load_store_dataset(
            key, seed=0 if rng is None else int(rng), scale=scale,
            cache_dir=cache_dir,
        )
    if key not in _TABLE_I:
        from repro.store import STORE_DATASET_NAMES

        raise KeyError(
            f"unknown dataset {name!r}; choose from "
            f"{sorted(_TABLE_I) + sorted(STORE_DATASET_NAMES)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    generator = as_generator(rng)
    nodes_target, edges_target = _TABLE_I[key]
    n = max(int(round(nodes_target * scale)), 30)
    m_edges = max(int(round(edges_target * scale)), n)

    if key == "er":
        p = 2.0 * m_edges / (n * (n - 1))
        graph = erdos_renyi(n, p, rng=generator)
        return Dataset(name=key, graph=graph)
    if key == "ba":
        m = max(int(round(m_edges / n)), 1)
        graph = barabasi_albert(n, m, rng=generator)
        return Dataset(name=key, graph=graph)
    return _build_standin(key, n, m_edges, generator)


def _build_standin(name: str, n: int, m_edges: int, rng: np.random.Generator) -> Dataset:
    """Heavy-tailed core + planted anomalies, trimmed to the edge target."""
    profiles = {
        # (anomaly fractions and shapes tuned per dataset character)
        "blogcatalog": dict(n_cliques=0.012, n_stars=0.012, clique_size=10, star_leaves=0.030),
        "wikivote": dict(n_cliques=0.010, n_stars=0.015, clique_size=9, star_leaves=0.035),
        "bitcoin-alpha": dict(n_cliques=0.008, n_stars=0.015, clique_size=7, star_leaves=0.025),
    }
    profile = profiles[name]
    n_cliques = max(int(round(profile["n_cliques"] * n)), 2)
    n_stars = max(int(round(profile["n_stars"] * n)), 2)
    star_leaves = max(int(round(profile["star_leaves"] * n)), 6)

    # Reserve edge budget for the planted structures, build the core below it.
    approx_planted = n_cliques * (profile["clique_size"] ** 2) // 3 + n_stars * star_leaves
    core_edges = max(m_edges - approx_planted, n)
    m_attach = max(int(round(core_edges / n)), 1)
    graph = barabasi_albert(n, m_attach, rng=rng)

    planted = plant_anomalies(
        graph,
        n_cliques=n_cliques,
        n_stars=n_stars,
        clique_size=profile["clique_size"],
        star_leaves=star_leaves,
        rng=rng,
    )
    _adjust_edge_count(graph, m_edges, rng, protected=set(
        planted["cliques"] + planted["stars"]
    ))
    return Dataset(name=name, graph=graph, planted=planted)


def _adjust_edge_count(
    graph: Graph, target: int, rng: np.random.Generator, protected: set[int]
) -> None:
    """Add/remove random edges until within 2% of ``target``.

    Removals never touch edges incident to protected (planted-anomaly) nodes
    and never create singletons; additions avoid protected nodes too.
    """
    tolerance = max(int(0.02 * target), 1)
    n = graph.number_of_nodes
    guard = 20 * target + 1000
    while abs(graph.number_of_edges - target) > tolerance and guard > 0:
        guard -= 1
        current = graph.number_of_edges
        if current < target:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u == v or u in protected or v in protected or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
        else:
            edges = list(graph.edges())
            u, v = edges[int(rng.integers(len(edges)))]
            if u in protected or v in protected:
                continue
            if graph.degree(u) <= 1 or graph.degree(v) <= 1:
                continue
            graph.remove_edge(u, v)


def sample_connected_subgraph(graph: Graph, n_nodes: int, rng=None) -> Graph:
    """BFS-sample a connected subgraph of about ``n_nodes`` nodes.

    Mirrors the paper's pre-processing ("randomly sample the connected
    sub-graph with around 1000 nodes from the whole graph"): start a BFS at a
    random node of the largest component and keep the first ``n_nodes``
    discovered nodes.
    """
    generator = as_generator(rng)
    component = graph.largest_component()
    if len(component) == 0:
        raise ValueError("cannot sample from an empty graph")
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if n_nodes >= len(component):
        return graph.subgraph(component)

    start = int(generator.choice(component))
    visited = [start]
    seen = {start}
    frontier = [start]
    while frontier and len(visited) < n_nodes:
        next_frontier: list[int] = []
        for node in frontier:
            neighbors = list(graph.neighbors(node))
            generator.shuffle(neighbors)
            for neighbor in neighbors:
                if int(neighbor) not in seen:
                    seen.add(int(neighbor))
                    visited.append(int(neighbor))
                    next_frontier.append(int(neighbor))
                    if len(visited) >= n_nodes:
                        break
            if len(visited) >= n_nodes:
                break
        frontier = next_frontier
    return graph.subgraph(visited)


def dataset_statistics(dataset: Dataset) -> dict[str, float]:
    """Summary row used by the Table I reproduction."""
    graph = dataset.graph
    degrees = graph.degrees()
    return {
        "name": dataset.name,
        "nodes": graph.number_of_nodes,
        "edges": graph.number_of_edges,
        "mean_degree": float(degrees.mean()),
        "max_degree": float(degrees.max()),
        "connected": bool(graph.is_connected()),
    }

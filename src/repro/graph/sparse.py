"""Sparse-matrix fast paths for large graphs.

The paper's *full* real datasets are much larger than the ~1000-node
samples it evaluates on (Blogcatalog alone has 88 800 nodes and 2.1M
edges).  The dense O(n²)-memory pipeline used everywhere else is ideal at
evaluation scale, but pre-processing the full graphs — scoring every node
to pick the sampled subgraph's anomalies — needs sparse arithmetic.  This
module provides scipy.sparse implementations of the two hot kernels:

* egonet features ``(N, E)`` for every node, and
* OddBall Eq. 3 scores,

verified bit-for-bit against the dense implementations in the tests.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.graph import Graph
from repro.oddball.regression import fit_power_law
from repro.oddball.scores import score_from_features

__all__ = [
    "egonet_features_sparse",
    "anomaly_scores_sparse",
    "to_sparse",
]


def to_sparse(graph: "Graph | np.ndarray | sparse.spmatrix") -> sparse.csr_matrix:
    """Coerce a graph/adjacency into a validated CSR matrix.

    Validation mirrors :func:`repro.utils.validation.check_adjacency`:
    square, symmetric, binary, zero diagonal.

    Matrices this function has already validated are tagged and returned
    as-is on re-entry ("validate once"): an attack campaign threads the
    same clean CSR through hundreds of jobs, and the O(m) symmetry check
    per touch-point was a measurable per-job fixed cost.  The tag does not
    survive scipy copies/arithmetic, so derived matrices are re-validated;
    only in-place mutation of a validated matrix's ``data`` could fool it.
    """
    if isinstance(graph, Graph):
        matrix = sparse.csr_matrix(graph.adjacency_view)
    elif hasattr(graph, "adjacency_csr"):
        # Store-backed graphs (repro.store.GraphStore) and the incremental
        # feature engine expose their CSR through ``adjacency_csr()``.  A
        # GraphStore's CSR arrives pre-tagged validated, so for the mmap
        # path this recursion is zero-copy.
        return to_sparse(graph.adjacency_csr())
    elif sparse.issparse(graph):
        if getattr(graph, "_repro_validated", False) and sparse.isspmatrix_csr(graph):
            return graph
        matrix = graph.tocsr().astype(np.float64)  # astype copies, so
        # eliminate_zeros below never mutates the caller's matrix
    else:
        matrix = sparse.csr_matrix(np.asarray(graph, dtype=np.float64))
    # CSR matrices may carry stored explicit zeros (e.g. after ``setdiag(0)``
    # or arithmetic); they are valid zero entries, so drop them before the
    # binary-values check instead of rejecting the matrix.
    matrix.eliminate_zeros()
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    if (matrix != matrix.T).nnz != 0:
        raise ValueError("adjacency must be symmetric")
    if matrix.nnz and not np.all(matrix.data == 1.0):
        raise ValueError("adjacency must be binary")
    if matrix.diagonal().sum() != 0.0:
        raise ValueError("adjacency must have a zero diagonal")
    matrix._repro_validated = True
    return matrix


#: Intermediate-product entries allowed per row block of the chunked
#: triangle computation (~a few hundred MB of scipy spgemm scratch).
_TRIANGLE_FILL_BUDGET = 20_000_000


def egonet_features_sparse(adjacency) -> tuple[np.ndarray, np.ndarray]:
    """(N, E) for every node using sparse arithmetic.

    ``N_i = Σ_j A_ij`` and ``E_i = N_i + ½ diag(A³)``; the triangle term is
    the row-sum of ``(A @ A) ⊙ A``, evaluated without densifying — the
    elementwise mask keeps only entries where an edge exists.

    The product is computed in **row blocks of bounded fill**: scipy
    materialises the full ``A[R] @ A`` before the mask, and its fill —
    exactly ``Σ_{u∈R} Σ_{v∈Γ(u)} deg(v)``, known up front from one
    ``A @ deg`` mat-vec — reaches gigabytes on heavy-tailed graphs (a
    Blogcatalog-scale hub's row alone contributes millions of entries).
    Each row's result is independent, so blocking changes peak memory
    only; the returned features are bit-identical to the one-shot product
    (the equivalence tests pin this against the dense kernel).
    """
    matrix = to_sparse(adjacency)
    n = matrix.shape[0]
    n_feature = np.asarray(matrix.sum(axis=1)).ravel()
    triangles = np.empty(n, dtype=np.float64)
    # cumulative projected fill per row prefix; block boundaries are one
    # searchsorted each, so chunking adds O(m + n log n) bookkeeping total
    cumulative_fill = np.cumsum(matrix @ n_feature)
    start = 0
    while start < n:
        already = cumulative_fill[start - 1] if start else 0.0
        stop = int(
            np.searchsorted(
                cumulative_fill, already + _TRIANGLE_FILL_BUDGET, side="right"
            )
        )
        stop = min(max(stop, start + 1), n)
        block = matrix[start:stop]
        two_paths = (block @ matrix).multiply(block)
        triangles[start:stop] = np.asarray(two_paths.sum(axis=1)).ravel()
        start = stop
    e_feature = n_feature + 0.5 * triangles
    return n_feature, e_feature


def anomaly_scores_sparse(adjacency) -> np.ndarray:
    """OddBall Eq. 3 scores via the sparse kernels (OLS fit included)."""
    n_feature, e_feature = egonet_features_sparse(adjacency)
    fit = fit_power_law(n_feature, e_feature)
    return score_from_features(n_feature, e_feature, fit)

"""Sparse-matrix fast paths for large graphs.

The paper's *full* real datasets are much larger than the ~1000-node
samples it evaluates on (Blogcatalog alone has 88 800 nodes and 2.1M
edges).  The dense O(n²)-memory pipeline used everywhere else is ideal at
evaluation scale, but pre-processing the full graphs — scoring every node
to pick the sampled subgraph's anomalies — needs sparse arithmetic.  This
module provides scipy.sparse implementations of the two hot kernels:

* egonet features ``(N, E)`` for every node, and
* OddBall Eq. 3 scores,

verified bit-for-bit against the dense implementations in the tests.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry
from repro.graph.graph import Graph
from repro.oddball.regression import fit_power_law
from repro.oddball.scores import score_from_features

__all__ = [
    "SparseGraphView",
    "egonet_features_sparse",
    "anomaly_scores_sparse",
    "to_sparse",
]


def to_sparse(graph: "Graph | np.ndarray | sparse.spmatrix") -> sparse.csr_matrix:
    """Coerce a graph/adjacency into a validated CSR matrix.

    Validation mirrors :func:`repro.utils.validation.check_adjacency`:
    square, symmetric, binary, zero diagonal.

    Matrices this function has already validated are tagged and returned
    as-is on re-entry ("validate once"): an attack campaign threads the
    same clean CSR through hundreds of jobs, and the O(m) symmetry check
    per touch-point was a measurable per-job fixed cost.  The tag does not
    survive scipy copies/arithmetic, so derived matrices are re-validated;
    only in-place mutation of a validated matrix's ``data`` could fool it.
    """
    if isinstance(graph, Graph):
        matrix = sparse.csr_matrix(graph.adjacency_view)
    elif hasattr(graph, "adjacency_csr"):
        # Store-backed graphs (repro.store.GraphStore) and the incremental
        # feature engine expose their CSR through ``adjacency_csr()``.  A
        # GraphStore's CSR arrives pre-tagged validated, so for the mmap
        # path this recursion is zero-copy.
        return to_sparse(graph.adjacency_csr())
    elif sparse.issparse(graph):
        if getattr(graph, "_repro_validated", False) and sparse.isspmatrix_csr(graph):
            return graph
        matrix = graph.tocsr().astype(np.float64)  # astype copies, so
        # eliminate_zeros below never mutates the caller's matrix
    else:
        matrix = sparse.csr_matrix(np.asarray(graph, dtype=np.float64))
    # CSR matrices may carry stored explicit zeros (e.g. after ``setdiag(0)``
    # or arithmetic); they are valid zero entries, so drop them before the
    # binary-values check instead of rejecting the matrix.
    matrix.eliminate_zeros()
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    if (matrix != matrix.T).nnz != 0:
        raise ValueError("adjacency must be symmetric")
    if matrix.nnz and not np.all(matrix.data == 1.0):
        raise ValueError("adjacency must be binary")
    if matrix.diagonal().sum() != 0.0:
        raise ValueError("adjacency must have a zero diagonal")
    matrix._repro_validated = True
    return matrix


#: Intermediate-product entries allowed per row block of the chunked
#: triangle computation (~a few hundred MB of scipy spgemm scratch).
_TRIANGLE_FILL_BUDGET = 20_000_000


def egonet_features_sparse(
    adjacency, kernels: str = "auto"
) -> tuple[np.ndarray, np.ndarray]:
    """(N, E) for every node using sparse arithmetic.

    ``N_i = Σ_j A_ij`` and ``E_i = N_i + ½ diag(A³)``; the triangle term is
    the row-sum of ``(A @ A) ⊙ A``, evaluated without densifying — the
    elementwise mask keeps only entries where an edge exists.

    With the compiled kernel backend (``kernels``, see
    :mod:`repro.kernels`) the triangle term is one C pass of sorted-row
    intersections — no sparse-product scratch at all.  The numpy path
    computes the product in **row blocks of bounded fill**: scipy
    materialises the full ``A[R] @ A`` before the mask, and its fill —
    exactly ``Σ_{u∈R} Σ_{v∈Γ(u)} deg(v)``, known up front from one
    ``A @ deg`` mat-vec — reaches gigabytes on heavy-tailed graphs (a
    Blogcatalog-scale hub's row alone contributes millions of entries).
    Each row's result is independent, so blocking changes peak memory
    only.  Triangle counts are integers, so both paths return features
    bit-identical to the one-shot product (the equivalence tests pin this
    against the dense kernel and across kernel backends).
    """
    from repro.kernels import kernel_table, resolve_kernels

    matrix = to_sparse(adjacency)
    n = matrix.shape[0]
    n_feature = np.asarray(matrix.sum(axis=1)).ravel()
    tracer = _telemetry.active_tracer()
    start_ns = time.perf_counter_ns() if tracer is not None else 0
    if resolve_kernels(kernels) == "compiled" and matrix.has_sorted_indices:
        triangles = kernel_table().triangle_counts(matrix)
        if tracer is not None:
            tracer.count("kernels.triangle_counts", 1,
                         time.perf_counter_ns() - start_ns)
        return n_feature, n_feature + 0.5 * triangles
    triangles = np.empty(n, dtype=np.float64)
    # cumulative projected fill per row prefix; block boundaries are one
    # searchsorted each, so chunking adds O(m + n log n) bookkeeping total
    cumulative_fill = np.cumsum(matrix @ n_feature)
    start = 0
    while start < n:
        already = cumulative_fill[start - 1] if start else 0.0
        stop = int(
            np.searchsorted(
                cumulative_fill, already + _TRIANGLE_FILL_BUDGET, side="right"
            )
        )
        stop = min(max(stop, start + 1), n)
        block = matrix[start:stop]
        two_paths = (block @ matrix).multiply(block)
        triangles[start:stop] = np.asarray(two_paths.sum(axis=1)).ravel()
        start = stop
    if tracer is not None:
        tracer.count("kernels.triangle_counts", 1,
                     time.perf_counter_ns() - start_ns)
    e_feature = n_feature + 0.5 * triangles
    return n_feature, e_feature


def anomaly_scores_sparse(adjacency) -> np.ndarray:
    """OddBall Eq. 3 scores via the sparse kernels (OLS fit included)."""
    n_feature, e_feature = egonet_features_sparse(adjacency)
    fit = fit_power_law(n_feature, e_feature)
    return score_from_features(n_feature, e_feature, fit)


class SparseGraphView:
    """Read-only, :class:`Graph`-like facade over a validated CSR adjacency.

    :class:`Graph` is deliberately dense-backed (every dense algorithm
    consumes its adjacency directly), which made it the wrong return type
    for poisoned graphs coming out of *sparse* attack runs — wrapping a
    Blogcatalog-scale result in a Graph would densify 88 800² floats just
    to answer degree queries.  This view mirrors Graph's query surface
    (node/edge counts, degrees, neighbours, edge membership, edge
    iteration) over the CSR without densifying, and exposes the matrix
    through :meth:`adjacency_csr` — the duck-typing hook every
    sparse-aware consumer (``to_sparse``, the engines, OddBall's sparse
    scorer) already dispatches on, so a view drops into those pipelines
    unchanged.

    Mutation is deliberately not offered: views wrap attack artefacts,
    which are evidence.  :meth:`to_graph` is the one explicit densify
    escape hatch, for small graphs that need the dense API.
    """

    def __init__(self, adjacency: "sparse.spmatrix | np.ndarray"):
        self._csr = to_sparse(adjacency)
        if not self._csr.has_sorted_indices:
            self._csr = self._csr.copy()
            self._csr.sort_indices()

    # ------------------------------------------------------------------ #
    # Representation hooks
    # ------------------------------------------------------------------ #
    def adjacency_csr(self) -> sparse.csr_matrix:
        """The validated CSR adjacency (shared, treat as read-only)."""
        return self._csr

    def to_graph(self) -> Graph:
        """Densify into a :class:`Graph` (small graphs only — O(n²))."""
        # repro: allow-densify(the explicit, documented escape hatch to the dense Graph API)
        return Graph(self._csr.toarray())

    # ------------------------------------------------------------------ #
    # Graph-mirroring queries
    # ------------------------------------------------------------------ #
    @property
    def number_of_nodes(self) -> int:
        """Node count."""
        return int(self._csr.shape[0])

    @property
    def number_of_edges(self) -> int:
        """Undirected edge count (the matrix is symmetric and binary)."""
        return int(self._csr.nnz) // 2

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return np.diff(self._csr.indptr).astype(np.float64)

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        self._check_node(node)
        indptr = self._csr.indptr
        return int(indptr[node + 1] - indptr[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of the node's neighbours (a copy)."""
        self._check_node(node)
        indptr = self._csr.indptr
        return np.array(self._csr.indices[indptr[node] : indptr[node + 1]])

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership via binary search of ``u``'s CSR row."""
        self._check_node(u)
        self._check_node(v)
        indptr = self._csr.indptr
        row = self._csr.indices[indptr[u] : indptr[u + 1]]
        position = np.searchsorted(row, v)
        return bool(position < row.size and row[position] == v)

    def edges(self):
        """Iterate over edges as (u, v) with u < v, row-major order."""
        upper = sparse.triu(self._csr, k=1).tocoo()
        yield from zip(upper.row.tolist(), upper.col.tolist())

    def edge_set(self) -> "set[tuple[int, int]]":
        """Set of (u, v) pairs with u < v."""
        return set(self.edges())

    def __repr__(self) -> str:
        return (
            f"SparseGraphView(n={self.number_of_nodes}, "
            f"m={self.number_of_edges})"
        )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.number_of_nodes:
            raise IndexError(
                f"node {node} out of range [0, {self.number_of_nodes})"
            )

"""Threat-model simulation (paper §IV-A, Fig. 3).

Three parties:

* the **environment** holds the ground-truth graph ``G0`` and answers edge
  queries truthfully;
* the **defender** reconstructs an observed graph by querying node pairs and
  then runs a GAD system on it;
* the **attacker** sits between them and may tamper with up to ``B`` query
  results, which is exactly a structural attack on the observed graph.

The attack algorithms in :mod:`repro.attacks` operate directly on adjacency
matrices; this module wires their edge-flip output into the query channel, so
the examples can demonstrate the full data-collection story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graph.graph import Graph

__all__ = ["Environment", "Defender", "ManInTheMiddleAttacker", "QueryRecord"]

Edge = tuple[int, int]


def _canonical(u: int, v: int) -> Edge:
    if u == v:
        raise ValueError(f"self-query ({u}, {u}) is not a valid pair")
    return (u, v) if u < v else (v, u)


@dataclass
class QueryRecord:
    """One defender query and what each party saw."""

    pair: Edge
    true_answer: bool
    observed_answer: bool

    @property
    def tampered(self) -> bool:
        return self.true_answer != self.observed_answer


class Environment:
    """Holds the ground-truth graph and answers pair queries truthfully."""

    def __init__(self, ground_truth: Graph):
        self._graph = ground_truth.copy()

    @property
    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes

    def query(self, u: int, v: int) -> bool:
        """True answer to "is there an edge between u and v?"."""
        u, v = _canonical(u, v)
        return self._graph.has_edge(u, v)


class ManInTheMiddleAttacker:
    """Intercepts query results, flipping answers for a chosen set of pairs.

    ``flips`` is the set of edges the structural attack decided to modify
    (add or delete); tampering with the corresponding query answers realises
    the poisoned graph on the defender's side.  The attacker's budget is the
    number of distinct flipped pairs, matching constraint (4c).
    """

    def __init__(self, environment: Environment, flips: Iterable[Edge], budget: "int | None" = None):
        self._environment = environment
        self._flips = {_canonical(u, v) for u, v in flips}
        if budget is not None and len(self._flips) > budget:
            raise ValueError(
                f"attack uses {len(self._flips)} flips, exceeding budget {budget}"
            )
        self.log: list[QueryRecord] = []

    @property
    def flips(self) -> set[Edge]:
        return set(self._flips)

    def relay_query(self, u: int, v: int) -> bool:
        """Answer the defender's query, tampering when the pair is targeted."""
        pair = _canonical(u, v)
        truth = self._environment.query(*pair)
        observed = (not truth) if pair in self._flips else truth
        self.log.append(QueryRecord(pair=pair, true_answer=truth, observed_answer=observed))
        return observed

    def tamper_count(self) -> int:
        """Number of logged queries whose answer was altered."""
        return sum(record.tampered for record in self.log)


@dataclass
class Defender:
    """Reconstructs an observed graph by querying every node pair once."""

    n_nodes: int
    records: list[QueryRecord] = field(default_factory=list)

    def collect(self, channel: "ManInTheMiddleAttacker | Environment") -> Graph:
        """Query all pairs through ``channel`` and build the observed graph.

        ``channel`` may be the raw environment (honest collection) or an
        attacker-controlled relay (poisoned collection).
        """
        ask = channel.relay_query if isinstance(channel, ManInTheMiddleAttacker) else channel.query
        graph = Graph.empty(self.n_nodes)
        for u in range(self.n_nodes):
            for v in range(u + 1, self.n_nodes):
                if ask(u, v):
                    graph.add_edge(u, v)
        return graph

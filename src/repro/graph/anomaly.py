"""Anomaly injection: planting near-clique and near-star egonets.

OddBall flags nodes whose egonets deviate from the Egonet Density Power Law
``E ∝ N^α`` (1 ≤ α ≤ 2): near-cliques sit far *above* the regression line,
near-stars far *below* it (Fig. 2a of the paper).  The dataset stand-ins use
these planters to reproduce the anomalous tail the paper's real graphs have.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import as_generator

__all__ = ["inject_near_clique", "inject_near_star", "plant_anomalies"]


def inject_near_clique(
    graph: Graph,
    center: int,
    clique_size: int,
    density: float = 0.9,
    rng=None,
) -> list[tuple[int, int]]:
    """Turn ``center``'s neighbourhood into a near-clique.

    Ensures ``center`` has at least ``clique_size`` neighbours (adding random
    ones if needed), then inserts edges among those neighbours until the pair
    density inside the egonet reaches ``density``.  Returns the added edges.
    """
    generator = as_generator(rng)
    added: list[tuple[int, int]] = []
    neighbors = list(graph.neighbors(center))
    candidates = [v for v in range(graph.number_of_nodes) if v != center and v not in set(neighbors)]
    generator.shuffle(candidates)
    while len(neighbors) < clique_size and candidates:
        new_neighbor = candidates.pop()
        graph.add_edge(center, new_neighbor)
        added.append(tuple(sorted((center, new_neighbor))))
        neighbors.append(new_neighbor)

    members = neighbors[:clique_size]
    pairs = [
        (u, v)
        for i, u in enumerate(members)
        for v in members[i + 1 :]
        if not graph.has_edge(u, v)
    ]
    total_pairs = len(members) * (len(members) - 1) // 2
    existing = total_pairs - len(pairs)
    wanted = int(np.ceil(density * total_pairs)) - existing
    generator.shuffle(pairs)
    for u, v in pairs[: max(wanted, 0)]:
        graph.add_edge(u, v)
        added.append(tuple(sorted((u, v))))
    return added


def inject_near_star(
    graph: Graph,
    center: int,
    n_leaves: int,
    rng=None,
) -> list[tuple[int, int]]:
    """Turn ``center`` into the hub of a near-star.

    Connects ``center`` to ``n_leaves`` additional low-degree nodes.  Leaves
    are chosen preferring low degree so the egonet stays sparse (few edges
    among the spokes), which is exactly the below-the-line anomaly.
    """
    generator = as_generator(rng)
    added: list[tuple[int, int]] = []
    degrees = graph.degrees()
    non_neighbors = np.array(
        [
            v
            for v in range(graph.number_of_nodes)
            if v != center and not graph.has_edge(center, v)
        ]
    )
    if len(non_neighbors) == 0:
        return added
    order = np.argsort(degrees[non_neighbors] + generator.random(len(non_neighbors)))
    for v in non_neighbors[order][:n_leaves]:
        graph.add_edge(center, int(v))
        added.append(tuple(sorted((center, int(v)))))
    return added


def plant_anomalies(
    graph: Graph,
    n_cliques: int,
    n_stars: int,
    clique_size: int = 12,
    star_leaves: int = 25,
    rng=None,
) -> dict[str, list[int]]:
    """Plant a mix of near-clique and near-star anomalies at random centers.

    Returns ``{"cliques": [...], "stars": [...]}`` with the chosen centers.
    Centers are distinct; star hubs prefer currently low-degree nodes and
    clique centers medium-degree nodes, mimicking how fraud rings (dense) and
    bot hubs (star) appear in the paper's motivating domains.
    """
    generator = as_generator(rng)
    n = graph.number_of_nodes
    if n_cliques + n_stars > n:
        raise ValueError("more anomalies requested than nodes available")
    degrees = graph.degrees()
    order = np.argsort(degrees + generator.random(n))
    star_centers = [int(v) for v in order[:n_stars]]
    remaining = [int(v) for v in order[n_stars:]]
    mid_start = len(remaining) // 3
    clique_centers = [int(v) for v in remaining[mid_start : mid_start + n_cliques]]

    for center in clique_centers:
        inject_near_clique(graph, center, clique_size, rng=generator)
    for center in star_centers:
        inject_near_star(graph, center, star_leaves, rng=generator)
    return {"cliques": clique_centers, "stars": star_centers}

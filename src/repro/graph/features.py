"""Egonet feature extraction (OddBall's N and E).

For node ``i`` with egonet ``ego_i`` (the induced subgraph on ``i`` and its
one-hop neighbours), the paper uses

* ``N_i = Σ_j A_ij`` — the number of one-hop neighbours, and
* ``E_i = N_i + ½ (A³)_ii`` — the number of edges inside ``ego_i``
  (the ``N_i`` spokes from the ego plus one edge per triangle through ``i``).

Both a plain-numpy version (for detection/evaluation) and an autograd
version (for the differentiable attack objective) are provided, sharing the
same formula so the attack optimises exactly what the detector measures.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.graph.graph import Graph
from repro.utils.validation import check_square

__all__ = [
    "egonet_features",
    "egonet_features_from_graph",
    "egonet_features_tensor",
    "egonet_features_bruteforce",
]


def egonet_features(adjacency: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised (N, E) for every node from a (possibly fractional) adjacency.

    Works on relaxed matrices too (entries in [0,1]) because ContinuousA
    evaluates the same formula on fractional graphs.
    """
    a = check_square(np.asarray(adjacency, dtype=np.float64), "adjacency")
    n_feature = a.sum(axis=1)
    triangles = ((a @ a) * a).sum(axis=1)  # = diag(A³) for symmetric A
    e_feature = n_feature + 0.5 * triangles
    return n_feature, e_feature


def egonet_features_from_graph(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """(N, E) for a :class:`~repro.graph.graph.Graph`."""
    return egonet_features(graph.adjacency_view)


def egonet_features_tensor(adjacency: Tensor) -> tuple[Tensor, Tensor]:
    """Differentiable (N, E) from an adjacency :class:`Tensor` (Eq. 5b).

    ``diag(A³)`` is computed as the row-sums of ``(A @ A) ⊙ A`` — valid for
    symmetric ``A`` and cheaper than materialising ``A³``.
    """
    n_feature = adjacency.sum(axis=1)
    triangles = ((adjacency @ adjacency) * adjacency).sum(axis=1)
    e_feature = n_feature + 0.5 * triangles
    return n_feature, e_feature


def egonet_features_bruteforce(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Reference implementation enumerating each egonet explicitly.

    O(n·d²); used by the tests as an oracle for the vectorised formula.
    """
    n = graph.number_of_nodes
    n_feature = np.zeros(n)
    e_feature = np.zeros(n)
    for node in range(n):
        ego = graph.egonet(node)
        n_feature[node] = float(ego.number_of_nodes - 1)
        e_feature[node] = float(ego.number_of_edges)
    return n_feature, e_feature

"""Aggregate a telemetry event stream into reports and Chrome traces.

Pure functions over the record list :func:`~repro.telemetry.sink.load_trace_dir`
returns — no I/O, no clocks — so the CLI, the tests (golden output) and
the benchmarks all render the same trace identically.

Three views:

* :func:`summarize` — per-phase (span name), per-worker and per-job
  breakdowns, aggregated counters, scheduler event tallies, and a
  critical-path walk (root span → latest-finishing child, recursively);
* :func:`render_report` — the text report ``python -m repro.telemetry
  report`` prints;
* :func:`chrome_trace` — a Chrome ``trace_event`` JSON object
  (load in ``chrome://tracing`` or https://ui.perfetto.dev): spans become
  complete ``"X"`` slices on one thread row per worker, instant events
  become ``"i"`` marks.
"""

from __future__ import annotations

__all__ = ["chrome_trace", "render_report", "summarize"]

_MS = 1e6   # ns per millisecond
_S = 1e9    # ns per second


def _span_end(record: dict) -> int:
    return int(record["start_ns"]) + int(record["dur_ns"])


def summarize(events: "list[dict]") -> dict:
    """Aggregate an event stream into the report's breakdown tables."""
    spans = [e for e in events if e.get("kind") == "span"]
    instants = [e for e in events if e.get("kind") == "event"]
    counter_records = [e for e in events if e.get("kind") == "counter"]

    # Per-phase: group spans by name.
    phases: "dict[str, dict]" = {}
    for record in spans:
        entry = phases.setdefault(
            record["name"], {"count": 0, "total_ns": 0, "max_ns": 0}
        )
        entry["count"] += 1
        entry["total_ns"] += int(record["dur_ns"])
        entry["max_ns"] = max(entry["max_ns"], int(record["dur_ns"]))
    phase_rows = [
        {
            "name": name,
            "count": entry["count"],
            "total_s": entry["total_ns"] / _S,
            "mean_ms": entry["total_ns"] / entry["count"] / _MS,
            "max_ms": entry["max_ns"] / _MS,
        }
        # Alphabetical tiebreak keeps equal-duration rows deterministic.
        for name, entry in sorted(
            phases.items(), key=lambda item: (-item[1]["total_ns"], item[0])
        )
    ]

    # Per-worker: span volume, job spans, and the worker's wall extent.
    workers: "dict[str, dict]" = {}
    for record in spans + instants:
        entry = workers.setdefault(
            record.get("worker", "?"),
            {"spans": 0, "events": 0, "jobs": 0, "job_ns": 0,
             "first_ns": None, "last_ns": None},
        )
        if record.get("kind") == "span":
            entry["spans"] += 1
            start, end = int(record["start_ns"]), _span_end(record)
            if record["name"] == "job":
                entry["jobs"] += 1
                entry["job_ns"] += int(record["dur_ns"])
        else:
            entry["events"] += 1
            start = end = int(record["ns"])
        entry["first_ns"] = (
            start if entry["first_ns"] is None else min(entry["first_ns"], start)
        )
        entry["last_ns"] = (
            end if entry["last_ns"] is None else max(entry["last_ns"], end)
        )
    worker_rows = [
        {
            "worker": worker,
            "spans": entry["spans"],
            "events": entry["events"],
            "jobs": entry["jobs"],
            "job_s": entry["job_ns"] / _S,
            "wall_s": (entry["last_ns"] - entry["first_ns"]) / _S,
        }
        for worker, entry in sorted(workers.items())
    ]

    # Per-job: the slowest "job" spans, labelled from their attributes.
    job_rows = [
        {
            "job_id": str(record.get("attrs", {}).get("job_id", "?")),
            "attack": str(record.get("attrs", {}).get("attack", "?")),
            "worker": record.get("worker", "?"),
            "seconds": int(record["dur_ns"]) / _S,
        }
        for record in sorted(
            (r for r in spans if r["name"] == "job"),
            key=lambda r: (-int(r["dur_ns"]),
                           str(r.get("attrs", {}).get("job_id", ""))),
        )
    ]

    # Counters: sum repeated flushes (one per root-span close per worker).
    counters: "dict[str, dict]" = {}
    for record in counter_records:
        entry = counters.setdefault(record["name"], {"count": 0, "total_ns": 0})
        entry["count"] += int(record.get("count", 0))
        entry["total_ns"] += int(record.get("total_ns", 0))
    counter_rows = [
        {"name": name, "count": entry["count"],
         "total_ms": entry["total_ns"] / _MS}
        for name, entry in sorted(counters.items())
    ]

    # Instant events tallied by name (the scheduler protocol view).
    event_counts: "dict[str, int]" = {}
    for record in instants:
        event_counts[record["name"]] = event_counts.get(record["name"], 0) + 1
    event_rows = [
        {"name": name, "count": count}
        for name, count in sorted(event_counts.items())
    ]

    return {
        "spans": len(spans),
        "events": len(instants),
        "counter_records": len(counter_records),
        "phases": phase_rows,
        "workers": worker_rows,
        "jobs": job_rows,
        "counters": counter_rows,
        "event_counts": event_rows,
        "critical_path": _critical_path(spans),
    }


def _critical_path(spans: "list[dict]") -> "list[dict]":
    """Root-to-leaf chain following the latest-finishing child at each step.

    The classic fork/join critical path: at every span, whichever child
    finished *last* is what the parent actually waited for.  Roots are
    spans whose parent is absent from the trace (``None``, or written by
    a process that died before closing it); the walk starts from the
    longest root.
    """
    by_id = {record["span"]: record for record in spans}
    children: "dict[str, list[dict]]" = {}
    roots: "list[dict]" = []
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    if not roots:
        return []
    current = max(roots, key=lambda r: (int(r["dur_ns"]), r["span"]))
    path = []
    while current is not None:
        path.append({
            "name": current["name"],
            "worker": current.get("worker", "?"),
            "seconds": int(current["dur_ns"]) / _S,
        })
        branches = children.get(current["span"], [])
        current = (
            max(branches, key=lambda r: (_span_end(r), r["span"]))
            if branches else None
        )
    return path


def render_report(summary: dict, top: int = 10) -> str:
    """The text report: one table per :func:`summarize` section."""
    lines: "list[str]" = []
    lines.append(
        f"telemetry report: {summary['spans']} spans, "
        f"{summary['events']} events, "
        f"{summary['counter_records']} counter records"
    )

    lines.append("")
    lines.append("per-phase (by span name):")
    lines.append(
        f"  {'phase':<24} {'count':>7} {'total s':>10} {'mean ms':>10} "
        f"{'max ms':>10}"
    )
    for row in summary["phases"]:
        lines.append(
            f"  {row['name']:<24} {row['count']:>7} {row['total_s']:>10.3f} "
            f"{row['mean_ms']:>10.2f} {row['max_ms']:>10.2f}"
        )

    lines.append("")
    lines.append("per-worker:")
    lines.append(
        f"  {'worker':<24} {'spans':>7} {'events':>7} {'jobs':>6} "
        f"{'job s':>9} {'wall s':>9}"
    )
    for row in summary["workers"]:
        lines.append(
            f"  {row['worker']:<24} {row['spans']:>7} {row['events']:>7} "
            f"{row['jobs']:>6} {row['job_s']:>9.3f} {row['wall_s']:>9.3f}"
        )

    if summary["jobs"]:
        lines.append("")
        lines.append(f"slowest jobs (top {min(top, len(summary['jobs']))}):")
        lines.append(
            f"  {'job id':<18} {'attack':<18} {'worker':<18} {'seconds':>9}"
        )
        for row in summary["jobs"][:top]:
            lines.append(
                f"  {row['job_id']:<18} {row['attack']:<18} "
                f"{row['worker']:<18} {row['seconds']:>9.3f}"
            )

    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        lines.append(f"  {'counter':<28} {'count':>10} {'total ms':>11}")
        for row in summary["counters"]:
            lines.append(
                f"  {row['name']:<28} {row['count']:>10} "
                f"{row['total_ms']:>11.2f}"
            )

    if summary["event_counts"]:
        lines.append("")
        lines.append("events:")
        lines.append(f"  {'event':<28} {'count':>10}")
        for row in summary["event_counts"]:
            lines.append(f"  {row['name']:<28} {row['count']:>10}")

    if summary["critical_path"]:
        lines.append("")
        lines.append("critical path (longest root span, latest-finishing child):")
        for depth, row in enumerate(summary["critical_path"]):
            indent = "  " * depth
            lines.append(
                f"  {indent}{row['name']}  {row['seconds']:.3f}s  "
                f"[{row['worker']}]"
            )

    return "\n".join(lines)


def chrome_trace(events: "list[dict]") -> dict:
    """A Chrome ``trace_event`` JSON object for the whole event stream.

    One process, one thread row per worker (named via ``"M"`` metadata
    records).  Timestamps are microseconds rebased to the earliest record
    so the viewer opens at t=0 instead of hours into monotonic time.
    """
    workers = sorted({
        record.get("worker", "?")
        for record in events
        if record.get("kind") in ("span", "event")
    })
    tids = {worker: index + 1 for index, worker in enumerate(workers)}
    starts = [
        int(record["start_ns"]) if record.get("kind") == "span"
        else int(record["ns"])
        for record in events
        if record.get("kind") in ("span", "event")
    ]
    base_ns = min(starts) if starts else 0
    trace_events: "list[dict]" = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tids[worker],
            "args": {"name": worker},
        }
        for worker in workers
    ]
    for record in events:
        kind = record.get("kind")
        worker = record.get("worker", "?")
        if kind == "span":
            trace_events.append({
                "name": record["name"],
                "cat": "span",
                "ph": "X",
                "pid": 1,
                "tid": tids[worker],
                "ts": (int(record["start_ns"]) - base_ns) / 1e3,
                "dur": int(record["dur_ns"]) / 1e3,
                "args": dict(record.get("attrs", {})),
            })
        elif kind == "event":
            trace_events.append({
                "name": record["name"],
                "cat": "event",
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": tids[worker],
                "ts": (int(record["ns"]) - base_ns) / 1e3,
                "args": dict(record.get("attrs", {})),
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

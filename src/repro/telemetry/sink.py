"""Torn-write-tolerant JSONL telemetry sinks (one file per worker).

A sink is an append-only JSONL file: one header line naming the format
version and the writing worker, then one JSON record per line.  The
format deliberately mirrors the campaign layer's
:class:`~repro.attacks.campaign.CheckpointStore` durability contract —
every record is durable the moment its line is flushed, a ``kill -9``
can tear at most the trailing line, and the loader skips a torn record
with a warning instead of failing the whole trace.

Workers write *separate* files (``trace-<worker>.jsonl``) inside one
trace directory, so no cross-process write coordination is ever needed;
:func:`load_trace_dir` merges them at read time into one
timestamp-ordered event stream.  Timestamps are ``perf_counter_ns``
readings — CLOCK_MONOTONIC is machine-wide on Linux (the same property
the scheduler's lease deadlines rely on), so records from different
processes on one host order correctly.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.utils.logging import get_logger

__all__ = [
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
    "TelemetrySink",
    "load_events",
    "load_trace_dir",
    "sink_path",
]

_log = get_logger("telemetry.sink")

TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1

#: Sink file naming inside a trace directory: ``trace-<worker>.jsonl``.
SINK_PREFIX = "trace-"
SINK_SUFFIX = ".jsonl"


def sink_path(directory: "Path | str", worker: str) -> Path:
    """The sink file for ``worker`` inside trace directory ``directory``."""
    return Path(directory) / f"{SINK_PREFIX}{worker}{SINK_SUFFIX}"


class TelemetrySink:
    """One append-only JSONL telemetry file.

    The handle stays open across appends (telemetry can emit thousands of
    records per run; reopening per record would dominate the overhead
    budget) and every record is flushed immediately, so a killed process
    loses at most the record it was writing.  Appends are serialised by a
    lock because the scheduler's :class:`~repro.attacks.scheduler.LeaseHeartbeat`
    thread emits events concurrently with the worker's main thread.
    """

    def __init__(self, path: "Path | str", worker: str = "main"):
        self.path = Path(path)
        self.worker = str(worker)
        self._handle = None
        self._lock = threading.Lock()

    def _open(self) -> None:
        """Create/repair the file and position the handle for clean appends."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists() or self.path.stat().st_size == 0:
            header = {
                "format": TELEMETRY_FORMAT,
                "version": TELEMETRY_VERSION,
                "worker": self.worker,
            }
            self.path.write_text(json.dumps(header, sort_keys=True) + "\n")
        # A hard kill can leave the previous append torn WITHOUT a trailing
        # newline; appending straight after it would glue two records into
        # one unparsable line (the CheckpointStore.append failure mode).
        # Start a fresh line so a tear costs exactly the torn record.
        with self.path.open("rb") as reader:
            reader.seek(-1, 2)
            torn = reader.read(1) != b"\n"
        self._handle = self.path.open("ab")
        if torn:
            self._handle.write(b"\n")

    def append(self, record: dict) -> None:
        """Append one JSON record (opens the file + header on first use)."""
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        with self._lock:
            if self._handle is None:
                self._open()
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying handle (idempotent; reopens on next append)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def load_events(path: "Path | str") -> "list[dict]":
    """Records of one sink file, header excluded, torn lines skipped.

    Mirrors :meth:`CheckpointStore.load` resilience: a record torn by a
    hard kill — unparseable JSON, or JSON that is not a telemetry record —
    is skipped with a warning; a file holding only a torn header loads as
    empty.  Every returned record carries a ``worker`` key (defaulted from
    the header for old records).
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text().splitlines()
    if not lines:
        return []
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        if not any(line.strip() for line in lines[1:]):
            _log.warning(
                "telemetry sink %s has a torn header and no records; "
                "treating it as empty", path,
            )
            return []
        raise ValueError(
            f"telemetry sink {path} has a corrupt header; delete it to "
            "start a fresh trace"
        ) from None
    if header.get("format") != TELEMETRY_FORMAT:
        raise ValueError(
            f"{path} is not a telemetry sink (format "
            f"{header.get('format')!r})"
        )
    if header.get("version") != TELEMETRY_VERSION:
        raise ValueError(
            f"telemetry sink {path} has unsupported version "
            f"{header.get('version')!r}"
        )
    worker = str(header.get("worker", path.stem))
    events: "list[dict]" = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            # a record torn by a hard kill — appends after a tear start a
            # fresh line, so only the torn record itself is lost
            _log.warning(
                "telemetry sink %s has a truncated record; skipping it", path,
            )
            continue
        if not isinstance(record, dict) or "kind" not in record:
            _log.warning(
                "telemetry sink %s has a malformed record; skipping it", path,
            )
            continue
        record.setdefault("worker", worker)
        events.append(record)
    return events


def load_trace_dir(directory: "Path | str") -> "list[dict]":
    """Merge every per-worker sink in a trace directory, timestamp-ordered.

    This is the cross-process merge: each worker wrote its own file, all
    timestamps came from the machine-wide monotonic clock, so a plain sort
    interleaves them into one coherent timeline.  Missing or torn files
    degrade per-record, never per-trace — a SIGKILL'd worker's sink
    contributes everything it flushed before dying.
    """
    directory = Path(directory)
    if not directory.exists():
        return []
    events: "list[dict]" = []
    for path in sorted(directory.glob(f"{SINK_PREFIX}*{SINK_SUFFIX}")):
        events.extend(load_events(path))
    events.sort(key=_event_ns)
    return events


def _event_ns(record: dict) -> int:
    """Sort key: a record's monotonic timestamp in nanoseconds."""
    if "start_ns" in record:
        return int(record["start_ns"])
    return int(record.get("ns", 0))

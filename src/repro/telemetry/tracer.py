"""Span tracer + process-global configuration for ``repro.telemetry``.

A :class:`Tracer` produces **nested spans** (trace id, span id, parent
span id, monotonic start + duration in nanoseconds, JSON-primitive
attributes), **instant events** (scheduler lease protocol steps, store
opens) and **accumulated counters** (per-kernel call counts + cumulative
nanoseconds), all written through one per-worker
:class:`~repro.telemetry.sink.TelemetrySink`.

The process-global tracer is *off by default* and costs one function
call + ``None`` check per instrumentation site when off.  It turns on
via, in precedence order: an explicit ``configure(dir)`` /
``telemetry=`` keyword, or the ``$REPRO_TELEMETRY`` environment variable
(consulted lazily on the first :func:`active_tracer` call — the same
env-override pattern as ``$REPRO_KERNELS`` / ``$REPRO_LEASE_TTL``).

Cross-process semantics: executors capture a picklable
:func:`worker_spec` per child carrying the trace directory, the shared
trace id and the parent span id; the child's entry point calls
:func:`worker_configure` *before any work*, which replaces (without
flushing) any tracer inherited through ``fork`` — a child must never
write the parent's sink file.  Worker root spans parent to the
executor's drain span, so the merged trace is one tree.

Telemetry is excluded from every content hash: nothing here touches
job ids, checkpoint payloads or fingerprints, and attribute values are
runtime-checked to be *exact* JSON primitives so a numpy scalar can
never leak into a sink record (parity is additionally pinned by the
``checkpoint-json-purity`` lint scope and the on/off flip-parity tests).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from contextlib import nullcontext
from pathlib import Path

from repro.telemetry.sink import TelemetrySink, sink_path
from repro.utils.logging import get_logger

__all__ = [
    "TELEMETRY_ENV",
    "Span",
    "Tracer",
    "active_tracer",
    "configure",
    "count",
    "event",
    "resolve_telemetry",
    "shutdown",
    "span",
    "worker_configure",
    "worker_spec",
]

_log = get_logger("telemetry.tracer")

#: Environment override enabling telemetry process-wide (a directory path).
TELEMETRY_ENV = "REPRO_TELEMETRY"

_now = time.perf_counter_ns

#: Exact types allowed as span/event attribute values.  Checked with
#: ``type() in`` rather than ``isinstance`` on purpose: ``np.float64``
#: subclasses ``float`` and would otherwise slip a numpy scalar into the
#: sink JSONL — the precise drift ``checkpoint-json-purity`` exists to stop.
_ATTR_TYPES = (str, int, float, bool, type(None))


def _pure_attrs(name: str, attrs: dict) -> dict:
    """Validate attribute values as exact JSON primitives; returns ``attrs``."""
    for key, value in attrs.items():
        if type(value) not in _ATTR_TYPES:
            raise TypeError(
                f"telemetry attribute {key!r} of {name!r} must be a JSON "
                f"primitive (str/int/float/bool/None), got "
                f"{type(value).__name__}"
            )
    return attrs


class Span:
    """One traced operation: a named interval with a parent and attributes.

    Used as a context manager; the record is written to the sink when the
    span *exits* (so a killed process loses only its open spans — its
    completed spans and instant events are already durable).
    """

    __slots__ = ("_tracer", "name", "span_id", "parent", "start_ns",
                 "dur_ns", "attrs")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent: "str | None", attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self.start_ns = 0
        self.dur_ns = 0
        self.attrs = attrs

    def annotate(self, **attrs) -> None:
        """Attach more (JSON-primitive) attributes to an open span."""
        self.attrs.update(_pure_attrs(self.name, attrs))

    def __enter__(self) -> "Span":
        """Start the clock and become the current parent on this thread."""
        self.start_ns = _now()
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the clock and write the completed record."""
        self.dur_ns = _now() - self.start_ns
        self._tracer._pop(self)

    def to_dict(self) -> dict:
        """JSON image of the span (one sink record)."""
        return {
            "kind": "span",
            "name": str(self.name),
            "trace": str(self._tracer.trace),
            "span": str(self.span_id),
            "parent": None if self.parent is None else str(self.parent),
            "worker": str(self._tracer.worker),
            "start_ns": int(self.start_ns),
            "dur_ns": int(self.dur_ns),
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produce spans/events/counters for one worker of one trace.

    ``trace`` names the whole (possibly multi-process) trace; ``parent``
    is the span id — in *another* process's sink — that this worker's
    root spans hang under.  Span ids are ``<worker>:<n>``, unique across
    processes because worker names are.
    """

    def __init__(self, sink: TelemetrySink, *, worker: str = "main",
                 trace: "str | None" = None, parent: "str | None" = None):
        self.sink = sink
        self.worker = str(worker)
        self.trace = str(trace) if trace else os.urandom(6).hex()
        self.root_parent = parent
        self.pid = os.getpid()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_span = 0
        self._counters: "dict[str, list[int]]" = {}

    @property
    def directory(self) -> Path:
        """The trace directory this tracer writes into."""
        return self.sink.path.parent

    # ------------------------------------------------------------------ #
    # Span bookkeeping
    # ------------------------------------------------------------------ #
    def _new_span_id(self) -> str:
        with self._lock:
            self._next_span += 1
            return f"{self.worker}:{self._next_span}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> "str | None":
        """Span id new children should parent to (thread-local nesting)."""
        stack = self._stack()
        return stack[-1].span_id if stack else self.root_parent

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate out-of-order exits rather than corrupting nesting
            try:
                stack.remove(span)
            except ValueError:
                pass
        self.sink.append(span.to_dict())
        if not stack:
            # A root span just closed: make accumulated counters durable
            # now, so serial runs and long-lived workers flush per unit of
            # completed work instead of only at process exit.
            self.flush_counters()

    # ------------------------------------------------------------------ #
    # Producing records
    # ------------------------------------------------------------------ #
    def span(self, name: str, /, **attrs) -> Span:
        """A new child span of the current one (enter it with ``with``)."""
        return Span(
            self, name, self._new_span_id(), self.current_span_id(),
            _pure_attrs(name, attrs),
        )

    def record_span(self, name: str, start_ns: int, dur_ns: int,
                    /, **attrs) -> None:
        """Record an externally timed, already-finished span.

        The :class:`~repro.utils.timing.Timer` integration path: the
        caller owns the clock, the tracer only assigns ids and parentage.
        """
        self.sink.append({
            "kind": "span",
            "name": str(name),
            "trace": str(self.trace),
            "span": str(self._new_span_id()),
            "parent": self.current_span_id(),
            "worker": str(self.worker),
            "start_ns": int(start_ns),
            "dur_ns": int(dur_ns),
            "attrs": _pure_attrs(name, attrs),
        })

    def event(self, name: str, /, **attrs) -> None:
        """Record an instant event (durable immediately, unlike spans)."""
        self.sink.append({
            "kind": "event",
            "name": str(name),
            "trace": str(self.trace),
            "worker": str(self.worker),
            "ns": int(_now()),
            "attrs": _pure_attrs(name, attrs),
        })

    def count(self, name: str, n: int = 1, ns: int = 0) -> None:
        """Accumulate a counter: ``n`` occurrences costing ``ns`` nanoseconds.

        Hot-path friendly: two dict/int operations, no I/O.  Flushed as
        one record per name when a root span closes (and on
        :meth:`close`); the report layer sums repeated flushes.
        """
        with self._lock:
            entry = self._counters.get(name)
            if entry is None:
                entry = self._counters[name] = [0, 0]
            entry[0] += n
            entry[1] += ns

    def flush_counters(self) -> None:
        """Write accumulated counters to the sink and reset them."""
        with self._lock:
            counters, self._counters = self._counters, {}
        for name, (count_n, total_ns) in sorted(counters.items()):
            self.sink.append({
                "kind": "counter",
                "name": str(name),
                "trace": str(self.trace),
                "worker": str(self.worker),
                "count": int(count_n),
                "total_ns": int(total_ns),
            })

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush pending counters and close the sink."""
        self.flush_counters()
        self.sink.close()

    def abandon(self) -> None:
        """Drop the tracer WITHOUT flushing.

        For fork-inherited state in a child process: flushing there would
        write the parent's pending counters into the parent's sink a
        second time.
        """
        with self._lock:
            self._counters = {}
        self.sink.close()


# ---------------------------------------------------------------------- #
# Process-global configuration
# ---------------------------------------------------------------------- #
_TRACER: "Tracer | None" = None
_RESOLVED = False           # has THIS process decided on/off yet?
_OWNER_PID: "int | None" = None
_ATEXIT_REGISTERED = False


def resolve_telemetry(value: "Path | str | None" = None) -> "Path | None":
    """Effective trace directory: explicit value > ``$REPRO_TELEMETRY`` > off.

    Mirrors the precedence scheme of :func:`repro.kernels.resolve_kernels`
    and :func:`repro.attacks.scheduler.resolve_lease_ttl`.
    """
    if value is not None:
        return Path(value)
    env = os.environ.get(TELEMETRY_ENV, "").strip()
    return Path(env) if env else None


def configure(directory: "Path | str | None", *, worker: str = "main",
              trace: "str | None" = None,
              parent: "str | None" = None) -> "Tracer | None":
    """(Re)configure the process-global tracer; ``None`` disables it.

    A tracer inherited across ``fork`` is abandoned (closed unflushed —
    its file belongs to the parent); a same-process predecessor is closed
    cleanly, flushing its counters.
    """
    global _TRACER, _RESOLVED, _OWNER_PID, _ATEXIT_REGISTERED
    if _TRACER is not None:
        if _OWNER_PID == os.getpid():
            _TRACER.close()
        else:
            _TRACER.abandon()
        _TRACER = None
    _RESOLVED = True
    _OWNER_PID = os.getpid()
    if directory is None:
        return None
    _TRACER = Tracer(
        TelemetrySink(sink_path(directory, worker), worker=worker),
        worker=worker, trace=trace, parent=parent,
    )
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(shutdown)
    return _TRACER


def active_tracer() -> "Tracer | None":
    """The process-global tracer, or ``None`` when telemetry is off.

    The first call in each process consults ``$REPRO_TELEMETRY`` (so env
    activation needs no code changes anywhere); a tracer inherited
    through ``fork`` is never returned — the child re-resolves, keeping
    parent and child sinks strictly separate.
    """
    if _RESOLVED and _OWNER_PID == os.getpid():
        return _TRACER
    directory = resolve_telemetry(None)
    if directory is None:
        return configure(None)
    return configure(directory, worker=f"main-{os.getpid()}")


def shutdown() -> None:
    """Close and clear the process-global tracer (idempotent)."""
    configure(None)


# ---------------------------------------------------------------------- #
# Null-safe conveniences (the instrumentation surface call sites use)
# ---------------------------------------------------------------------- #
def span(name: str, /, **attrs):
    """A span on the active tracer, or a no-op context when telemetry is off."""
    tracer = active_tracer()
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, **attrs)


def event(name: str, /, **attrs) -> None:
    """Record an instant event iff telemetry is on."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.event(name, **attrs)


def count(name: str, n: int = 1, ns: int = 0, /) -> None:
    """Accumulate a counter iff telemetry is on."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.count(name, n, ns)


# ---------------------------------------------------------------------- #
# Cross-process plumbing for the executors
# ---------------------------------------------------------------------- #
def worker_spec(worker: str) -> "dict | None":
    """Picklable description of the active trace for one child process.

    ``None`` when telemetry is off (children then disable their inherited
    state).  Carries the trace directory, the shared trace id, and the
    parent span id the child's root spans hang under.
    """
    tracer = active_tracer()
    if tracer is None:
        return None
    return {
        "dir": str(tracer.directory),
        "worker": str(worker),
        "trace": str(tracer.trace),
        "parent": tracer.current_span_id(),
    }


def worker_configure(spec: "dict | None") -> "Tracer | None":
    """Child-side counterpart of :func:`worker_spec`.

    MUST run before the child does any traced work: it replaces whatever
    tracer the ``fork`` inherited, giving the child its own sink file
    keyed by its worker id (or disabling telemetry when ``spec`` is
    ``None``).
    """
    if spec is None:
        return configure(None)
    return configure(
        spec["dir"],
        worker=spec["worker"],
        trace=spec.get("trace"),
        parent=spec.get("parent"),
    )

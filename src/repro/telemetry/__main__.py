"""CLI: ``python -m repro.telemetry report TRACE_DIR``.

Aggregates a trace directory (the per-worker ``trace-*.jsonl`` sinks a
traced run wrote) into per-phase/per-worker/per-job breakdowns plus a
critical-path walk, and optionally exports a Chrome ``trace_event`` JSON
file for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.telemetry.report import chrome_trace, render_report, summarize
from repro.telemetry.sink import load_trace_dir


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect repro.telemetry trace directories.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report",
        help="aggregate a trace directory into breakdown tables",
    )
    report.add_argument(
        "trace_dir",
        help="directory holding per-worker trace-*.jsonl sink files",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="how many of the slowest jobs to list (default: 10)",
    )
    report.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="also write a Chrome trace_event JSON export to PATH",
    )
    args = parser.parse_args(argv)

    events = load_trace_dir(args.trace_dir)
    if not events:
        print(f"no telemetry events under {args.trace_dir}")
        return 1
    print(render_report(summarize(events), top=args.top))
    if args.chrome:
        path = Path(args.chrome)
        path.write_text(json.dumps(chrome_trace(events)) + "\n")
        print(f"\nchrome trace written to {path} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""repro.telemetry — structured tracing & metrics across the whole stack.

A zero-dependency, span-based observability layer threaded through
store → engine → campaign → executor → scheduler:

* a :class:`Tracer` produces nested **spans** (trace id, span id, parent,
  monotonic start/duration, JSON-primitive attributes), instant
  **events** (scheduler lease claim/steal/heartbeat/requeue, store
  opens) and accumulated **counters** (per-kernel call counts +
  cumulative ns, candidate-set admissions/evictions);
* records land in append-only JSONL :class:`TelemetrySink` files — one
  per worker, torn-write tolerant exactly like the campaign
  :class:`~repro.attacks.campaign.CheckpointStore` — and
  :func:`load_trace_dir` merges them into one coherent timeline (the
  machine-wide monotonic clock makes cross-process timestamps
  comparable, the same property the scheduler's leases rely on);
* telemetry is **off by default** and enabled via ``telemetry=`` on the
  campaign/executor constructors, ``--telemetry DIR`` on the CLIs, or
  ``$REPRO_TELEMETRY`` — and it is excluded from every content hash:
  flip sets, job ids and checkpoints are bit-identical with it on or
  off (parity-tested).

CLI::

    python -m repro.telemetry report TRACE_DIR [--top N] [--chrome OUT.json]

renders per-phase/per-worker/per-job breakdowns, a critical-path walk,
and (``--chrome``) a Chrome ``trace_event`` JSON export.

See ``docs/ARCHITECTURE.md`` §"Telemetry layer" for the event schema,
sink format, merge semantics and overhead numbers
(``benchmarks/results/BENCH_telemetry.json``).
"""

from repro.telemetry.report import chrome_trace, render_report, summarize
from repro.telemetry.sink import (
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    TelemetrySink,
    load_events,
    load_trace_dir,
    sink_path,
)
from repro.telemetry.tracer import (
    TELEMETRY_ENV,
    Span,
    Tracer,
    active_tracer,
    configure,
    count,
    event,
    resolve_telemetry,
    shutdown,
    span,
    worker_configure,
    worker_spec,
)

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
    "Span",
    "Tracer",
    "TelemetrySink",
    "active_tracer",
    "chrome_trace",
    "configure",
    "count",
    "event",
    "load_events",
    "load_trace_dir",
    "render_report",
    "resolve_telemetry",
    "shutdown",
    "sink_path",
    "span",
    "summarize",
    "worker_configure",
    "worker_spec",
]

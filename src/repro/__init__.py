"""repro — reproduction of *BinarizedAttack: Structural Poisoning Attacks to
Graph-based Anomaly Detection* (Zhu et al., ICDE 2022).

Subpackages
-----------
``repro.autograd``
    Reverse-mode automatic differentiation over numpy (PyTorch substitute),
    including the straight-through-estimated ``binarize`` the attack needs.
``repro.graph``
    Graph substrate: dense simple graphs, ER/BA generators, egonet features,
    anomaly planting, dataset stand-ins, threat-model simulation.
``repro.store``
    Out-of-core storage: memory-mapped CSR graph stores under a
    content-addressed cache, streaming paper-scale builders
    (``blogcatalog-full`` @ 88.8k nodes), and the ``store``-kind engine
    specs parallel workers open instead of unpickling a graph payload.
``repro.oddball``
    The target GAD system: egonet power-law regression, Eq. 3 anomaly
    scores, the differentiable attack surrogate, robust (Huber/RANSAC)
    estimator countermeasures.
``repro.attacks``
    The paper's three structural poisoning attacks — GradMaxSearch,
    ContinuousA and BinarizedAttack — plus a random baseline.
``repro.gad``
    Transfer-attack victims: GAL (GCN + graph anomaly loss) and ReFeX
    (recursive structural features), with the four-step black-box pipeline.
``repro.ml``
    Metrics (AUC/F1), PCA, t-SNE, permutation tests, logistic probes.
``repro.experiments``
    One driver per paper table/figure, with ``paper`` and ``ci`` scale
    presets and a CLI runner.
``repro.telemetry``
    Opt-in structured tracing & metrics: nested spans, scheduler events
    and kernel counters landing in torn-write-tolerant JSONL sinks, with
    a ``python -m repro.telemetry report`` aggregation CLI.

Quickstart
----------
>>> from repro.graph import load_dataset
>>> from repro.oddball import OddBall
>>> from repro.attacks import BinarizedAttack
>>> dataset = load_dataset("bitcoin-alpha", rng=7, scale=0.2)
>>> report = OddBall().analyze(dataset.graph)
>>> targets = report.top_k(3).tolist()
>>> result = BinarizedAttack(iterations=40).attack(dataset.graph, targets, budget=6)
>>> result.score_decrease(targets) >= 0.0
True
"""

from repro import (
    attacks,
    autograd,
    experiments,
    gad,
    graph,
    ml,
    oddball,
    store,
    telemetry,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "attacks",
    "autograd",
    "experiments",
    "gad",
    "graph",
    "ml",
    "oddball",
    "store",
    "telemetry",
    "utils",
]

"""Parameter initialisation schemes for the neural substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation ``U(−a, a)``.

    ``a = gain * sqrt(6 / (fan_in + fan_out))`` — the default for GCN layers
    (Kipf & Welling use exactly this).
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited to ReLU MLP layers."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive

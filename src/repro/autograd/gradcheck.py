"""Numerical gradient checking for the autograd engine.

Used by the test suite to verify every primitive's backward pass against
central finite differences on random inputs (including broadcast shapes).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. input ``index``."""
    inputs = [np.array(x, dtype=np.float64) for x in inputs]
    target = inputs[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]
        target[idx] = original + eps
        plus = float(fn(*[Tensor(x) for x in inputs]).data.sum())
        target[idx] = original - eps
        minus = float(fn(*[Tensor(x) for x in inputs]).data.sum())
        target[idx] = original
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> bool:
    """Compare autograd gradients of ``sum(fn(*inputs))`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` otherwise (so it can be used directly in assertions).
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    output = fn(*tensors)
    output.sum().backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, [t.data for t in tensors], index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True

"""Composite differentiable functions built from primitives.

These are the loss functions and activations used by the attack objective and
the GAD neural models (GAL's margin loss, the MLP classifier head).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import concatenate, maximum, where
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "l1_penalty",
    "log_softmax",
    "margin_ranking_loss",
    "mse_loss",
    "nll_loss",
    "softmax",
]


def mse_loss(prediction, target, reduction: str = "mean") -> Tensor:
    """Mean (or summed) squared error."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    squared = (prediction - target) ** 2
    return _reduce(squared, reduction)


def l1_penalty(x) -> Tensor:
    """LASSO penalty ``‖x‖₁`` (Eq. 8a's budget surrogate)."""
    return as_tensor(x).abs().sum()


def log_softmax(logits, axis: int = -1) -> Tensor:
    """Numerically-stable ``log(softmax(x))`` along ``axis``."""
    logits = as_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def nll_loss(log_probs, targets, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood for integer class ``targets``."""
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    if log_probs.ndim != 2:
        raise ValueError(f"expected (batch, classes) log-probs, got {log_probs.shape}")
    picked = log_probs[np.arange(len(targets)), targets]
    return _reduce(-picked, reduction)


def binary_cross_entropy_with_logits(logits, targets, reduction: str = "mean") -> Tensor:
    """Stable BCE on raw logits: ``max(x,0) − x·y + log(1 + exp(−|x|))``."""
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    zeros = Tensor(np.zeros_like(logits.data))
    loss = maximum(logits, zeros) - logits * targets + (-logits.abs()).exp().log1p()
    return _reduce(loss, reduction)


def margin_ranking_loss(positive, negative, margin, reduction: str = "mean") -> Tensor:
    """Hinge loss ``max(0, negative − positive + margin)``.

    This is the per-pair term of GAL's graph anomaly loss (Eq. 9), where
    ``positive``/``negative`` are similarity scores ``g(u, u⁺)``/``g(u, u⁻)``
    and ``margin`` is the class-distribution-aware margin ``Δ_y``.
    """
    positive, negative = as_tensor(positive), as_tensor(negative)
    margin = as_tensor(margin)
    zeros = Tensor(np.zeros(np.broadcast_shapes(positive.shape, negative.shape)))
    loss = maximum(zeros, negative - positive + margin)
    return _reduce(loss, reduction)


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return value.mean()
    if reduction == "sum":
        return value.sum()
    if reduction == "none":
        return value
    raise ValueError(f"unknown reduction {reduction!r}; use 'mean', 'sum' or 'none'")


def dropout_mask(shape, p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with prob. ``p``, survivors scaled 1/(1−p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(shape) >= p).astype(np.float64)
    return keep / (1.0 - p)


def one_hot(labels, num_classes: int) -> np.ndarray:
    """Integer labels → one-hot float matrix (plain numpy, no gradient)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros((labels.size, num_classes), dtype=np.float64)
    out[np.arange(labels.size), labels] = 1.0
    return out


def pairwise_squared_distances(x: Tensor) -> Tensor:
    """All-pairs squared Euclidean distances of row vectors (differentiable)."""
    squared_norms = (x * x).sum(axis=1)
    gram = x @ x.T
    n = x.shape[0]
    return (
        squared_norms.reshape(n, 1) - 2.0 * gram + squared_norms.reshape(1, n)
    ).clamp(low=0.0)


def concat_features(parts) -> Tensor:
    """Column-wise concatenation of 2-D feature blocks."""
    return concatenate(parts, axis=1)


def masked_mean(values: Tensor, mask: np.ndarray) -> Tensor:
    """Mean of ``values`` over the True entries of a constant boolean mask."""
    mask = np.asarray(mask, dtype=bool)
    count = float(mask.sum())
    if count == 0:
        raise ValueError("masked_mean over an empty mask")
    selected = where(mask, values, Tensor(np.zeros_like(values.data)))
    return selected.sum() / count

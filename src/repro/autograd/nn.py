"""A small neural-network layer library on top of the autograd engine.

Provides the pieces the paper's transfer-attack targets need: ``Linear`` and
``GraphConvolution`` layers (for GAL's GCN encoder), ``Sequential``/``ReLU``
composition (for the MLP classification heads), and a ``Module`` base class
with recursive parameter collection.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd import init as init_schemes
from repro.autograd.tensor import Tensor

__all__ = ["GraphConvolution", "Linear", "Module", "Parameter", "ReLU", "Sequential", "Tanh"]


class Parameter(Tensor):
    """A leaf tensor registered as trainable by :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with torch-like parameter discovery.

    Subclasses simply assign :class:`Parameter` and :class:`Module` instances
    to attributes; :meth:`parameters` walks the object graph recursively.
    """

    training: bool = True

    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter exactly once."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in vars(self).values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._parameters(seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (affects dropout-style layers)."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name→array snapshot of all parameters (copies)."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict` (order-based)."""
        params = list(self.parameters())
        if len(params) != len(state):
            raise ValueError(f"state has {len(state)} entries, model has {len(params)}")
        for i, parameter in enumerate(params):
            value = state[f"param_{i}"]
            if value.shape != parameter.shape:
                raise ValueError(
                    f"shape mismatch for param_{i}: {value.shape} vs {parameter.shape}"
                )
            parameter.data = value.copy()


class Linear(Module):
    """Affine map ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.kaiming_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init_schemes.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sequential(Module):
    """Feed-forward composition of modules."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"


class GraphConvolution(Module):
    """One GCN layer: ``H' = Â H W + b`` with a precomputed propagation Â.

    ``Â`` is the symmetrically-normalised adjacency with self-loops
    (``D̂^{-1/2}(A+I)D̂^{-1/2}``, Kipf & Welling 2017); it is passed per call
    because transfer-attack evaluation retrains the same architecture on
    clean and poisoned graphs.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.xavier_uniform((in_features, out_features), rng), name="gcn_weight"
        )
        self.bias = Parameter(init_schemes.zeros((out_features,)), name="gcn_bias") if bias else None

    def forward(self, propagation: Tensor, features: Tensor) -> Tensor:
        out = propagation @ (features @ self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"GraphConvolution({self.in_features}, {self.out_features})"


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Return ``D̂^{-1/2}(A+I)D̂^{-1/2}`` as a plain numpy array."""
    a_hat = np.asarray(adjacency, dtype=np.float64) + np.eye(adjacency.shape[0])
    degrees = a_hat.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return a_hat * inv_sqrt[:, None] * inv_sqrt[None, :]

"""Reverse-mode automatic differentiation over numpy (the PyTorch substitute).

Public surface:

* :class:`Tensor` — numpy-backed tensor with a dynamic computation graph.
* :mod:`repro.autograd.ops` — multi-input primitives incl. the
  straight-through :func:`~repro.autograd.ops.binarize_ste`.
* :mod:`repro.autograd.functional` — losses and activations.
* :mod:`repro.autograd.nn` — ``Module``/``Linear``/``GraphConvolution``.
* :mod:`repro.autograd.optim` — ``SGD``/``Adam``/``ProjectedGradientDescent``.
* :func:`gradcheck` — finite-difference verification used by the tests.
"""

from repro.autograd import functional, init, nn, ops, optim
from repro.autograd.gradcheck import gradcheck, numerical_gradient
from repro.autograd.ops import binarize_ste
from repro.autograd.tensor import Tensor, as_tensor, grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "binarize_ste",
    "functional",
    "grad_enabled",
    "gradcheck",
    "init",
    "nn",
    "no_grad",
    "numerical_gradient",
    "ops",
    "optim",
]

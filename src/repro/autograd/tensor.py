"""A reverse-mode automatic differentiation engine over numpy arrays.

This module is the library's substitute for PyTorch autograd.  It implements a
dynamically-built computation graph: every operation on :class:`Tensor`
produces a new tensor holding references to its parents and a closure that
propagates the upstream gradient.  Calling :meth:`Tensor.backward` performs a
topological sort and accumulates gradients into every leaf with
``requires_grad=True``.

Design notes
------------
* All data is ``float64`` — the attack objective involves ``exp``/``log`` of
  regression coefficients and benefits from double precision.
* Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand's shape by :func:`unbroadcast`.
* The straight-through estimator needed by BinarizedAttack lives in
  :func:`repro.autograd.ops.binarize_ste`.
* A module-level switch (:func:`no_grad`) disables graph construction for
  evaluation-only code paths.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "grad_enabled", "no_grad", "unbroadcast"]

_GRAD_ENABLED = True


def grad_enabled() -> bool:
    """Return whether new operations record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over the axes that numpy broadcasting expanded, so that the gradient
    of e.g. a ``(n,)`` bias added to an ``(m, n)`` matrix has shape ``(n,)``.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``float64`` numpy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.  Only leaves honour this flag directly; interior
        nodes require grad whenever any parent does.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: "Callable[[np.ndarray], None] | None" = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: "np.ndarray | None" = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def is_leaf(self) -> bool:
        return not self._parents

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({np.array2string(self.data, threshold=8)}{grad_flag}{label})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return a defensive copy of the underlying array."""
        return self.data.copy()

    # ------------------------------------------------------------------ #
    # Graph bookkeeping
    # ------------------------------------------------------------------ #
    def detach(self) -> "Tensor":
        """Return a leaf tensor sharing this tensor's data, cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: "np.ndarray | float | None" = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1.0 and must be supplied for non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "grad must be provided for non-scalar outputs "
                    f"(output shape {self.data.shape})"
                )
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(np.asarray(grad, dtype=np.float64), self.data.shape)

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): np.array(grad, copy=True)}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.is_leaf:
                node._accumulate(node_grad)
                continue
            assert node._backward is not None
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = np.array(parent_grad, dtype=np.float64, copy=True)

    # ------------------------------------------------------------------ #
    # Arithmetic (broadcasting numpy semantics)
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return (
                (self, unbroadcast(g, self.shape)),
                (other, unbroadcast(g, other.shape)),
            )

        return _make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(g):
            return (
                (self, unbroadcast(g, self.shape)),
                (other, unbroadcast(-g, other.shape)),
            )

        return _make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            return (
                (self, unbroadcast(g * other.data, self.shape)),
                (other, unbroadcast(g * self.data, other.shape)),
            )

        return _make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            return (
                (self, unbroadcast(g / other.data, self.shape)),
                (other, unbroadcast(-g * self.data / (other.data**2), other.shape)),
            )

        return _make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(g):
            return ((self, -g),)

        return _make(-self.data, (self,), backward)

    def __pow__(self, exponent) -> "Tensor":
        if isinstance(exponent, Tensor):
            return self._tensor_pow(exponent)
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(g):
            return ((self, g * exponent * self.data ** (exponent - 1.0)),)

        return _make(out_data, (self,), backward)

    def _tensor_pow(self, exponent: "Tensor") -> "Tensor":
        """``self ** exponent`` with a tensor exponent (requires self > 0)."""
        out_data = self.data**exponent.data

        def backward(g):
            grad_base = g * exponent.data * self.data ** (exponent.data - 1.0)
            grad_exp = g * out_data * np.log(self.data)
            return (
                (self, unbroadcast(grad_base, self.shape)),
                (exponent, unbroadcast(grad_exp, exponent.shape)),
            )

        return _make(out_data, (self, exponent), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
                return ((self, g * b), (other, g * a))
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return ((self, g @ b.T), (other, np.outer(a, g)))
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return ((self, np.outer(g, b)), (other, a.T @ g))
            return ((self, g @ b.swapaxes(-1, -2)), (other, a.swapaxes(-1, -2) @ g))

        return _make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return ((self, np.broadcast_to(g, self.shape).copy()),)

        return _make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[ax] for ax in _normalize_axes(axis, self.ndim)]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient equally among ties (matches subgradient choice).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return ((self, mask / counts * g),)

        return _make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return ((self, g * out_data),)

        return _make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g):
            return ((self, g / self.data),)

        return _make(np.log(self.data), (self,), backward)

    def log1p(self) -> "Tensor":
        def backward(g):
            return ((self, g / (1.0 + self.data)),)

        return _make(np.log1p(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g):
            return ((self, g * 0.5 / out_data),)

        return _make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(g):
            return ((self, g * np.sign(self.data)),)

        return _make(np.abs(self.data), (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable piecewise computation.  np.where evaluates both
        # branches, so the unused branch may overflow harmlessly — suppress.
        x = self.data
        with np.errstate(over="ignore"):
            out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))

        def backward(g):
            return ((self, g * out_data * (1.0 - out_data)),)

        return _make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return ((self, g * (1.0 - out_data**2)),)

        return _make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(g):
            return ((self, g * mask),)

        return _make(self.data * mask, (self,), backward)

    def clamp(self, low: "float | None" = None, high: "float | None" = None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        inside = np.ones_like(self.data)
        if low is not None:
            inside = inside * (self.data >= low)
        if high is not None:
            inside = inside * (self.data <= high)

        def backward(g):
            return ((self, g * inside),)

        return _make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g):
            return ((self, g.reshape(self.shape)),)

        return _make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axes: "tuple[int, ...] | None" = None) -> "Tensor":
        out_data = self.data.transpose(axes)

        def backward(g):
            inverse = None if axes is None else tuple(np.argsort(axes))
            return ((self, g.transpose(inverse)),)

        return _make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 (mirror numpy's .T)
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g):
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return ((self, full),)

        return _make(out_data, (self,), backward)

    def diagonal(self) -> "Tensor":
        out_data = np.diagonal(self.data).copy()

        def backward(g):
            full = np.zeros_like(self.data)
            np.fill_diagonal(full, g)
            return ((self, full),)

        return _make(out_data, (self,), backward)


def _normalize_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, (int, np.integer)):
        axis = (int(axis),)
    return tuple(ax % ndim for ax in axis)


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: "Callable[[np.ndarray], Iterable[tuple[Tensor, np.ndarray]]]",
) -> Tensor:
    """Create an interior graph node (or a constant when grad is off)."""
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)


def as_tensor(value) -> Tensor:
    """Coerce a scalar/array/Tensor into a Tensor (no copy for Tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Reverse topological order (root first), iterative to spare the stack."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited and parent.requires_grad:
                stack.append((parent, False))
    order.reverse()
    return order

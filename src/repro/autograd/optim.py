"""First-order optimisers for the autograd engine.

``SGD`` and ``Adam`` train the neural GAD models; ``ProjectedGradientDescent``
implements the ``Π_[0,1](Ż − η∇)`` step of BinarizedAttack (Alg. 1 line 12).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Adam", "Optimizer", "ProjectedGradientDescent", "SGD"]


class Optimizer:
    """Base optimiser holding a list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        for parameter in self.parameters:
            if not parameter.requires_grad:
                raise ValueError("all optimised tensors must require grad")

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class ProjectedGradientDescent(Optimizer):
    """Gradient descent followed by projection onto a box ``[low, high]``.

    Implements line 12 of Alg. 1: ``Ż ← Π_[0,1](Ż − η ∂L/∂Ż)``.
    """

    def __init__(self, parameters: Iterable[Tensor], lr: float, low: float = 0.0, high: float = 1.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if low >= high:
            raise ValueError(f"invalid box [{low}, {high}]")
        self.lr = lr
        self.low = low
        self.high = high

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            updated = parameter.data - self.lr * parameter.grad
            parameter.data = np.clip(updated, self.low, self.high)

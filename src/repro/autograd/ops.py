"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

Most elementwise/reduction operations live as ``Tensor`` methods; this module
adds the multi-input primitives (``where``, ``maximum``, ``concatenate``...)
and, crucially, :func:`binarize_ste` — the straight-through-estimated sign
function at the heart of BinarizedAttack (Eq. 7 of the paper).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd.tensor import Tensor, _make, as_tensor, unbroadcast

__all__ = [
    "apply_pair_flips",
    "binarize_ste",
    "concatenate",
    "exp",
    "log",
    "log1p",
    "maximum",
    "minimum",
    "outer",
    "stack",
    "symmetric_from_upper",
    "where",
]


def exp(x) -> Tensor:
    """Elementwise exponential."""
    return as_tensor(x).exp()


def log(x) -> Tensor:
    """Elementwise natural logarithm."""
    return as_tensor(x).log()


def log1p(x) -> Tensor:
    """Elementwise ``log(1 + x)`` (stable near zero)."""
    return as_tensor(x).log1p()


def where(condition, a, b) -> Tensor:
    """Elementwise select: ``condition ? a : b``.

    ``condition`` is treated as a constant boolean mask (no gradient flows
    through it), matching ``torch.where`` semantics.
    """
    cond = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(g):
        return (
            (a, unbroadcast(np.where(cond, g, 0.0), a.shape)),
            (b, unbroadcast(np.where(cond, 0.0, g), b.shape)),
        )

    return _make(out_data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; ties split the gradient equally."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(g):
        a_wins = (a.data > b.data).astype(np.float64)
        tie = (a.data == b.data).astype(np.float64) * 0.5
        return (
            (a, unbroadcast(g * (a_wins + tie), a.shape)),
            (b, unbroadcast(g * (1.0 - a_wins - tie), b.shape)),
        )

    return _make(out_data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise minimum; ties split the gradient equally."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.minimum(a.data, b.data)

    def backward(g):
        a_wins = (a.data < b.data).astype(np.float64)
        tie = (a.data == b.data).astype(np.float64) * 0.5
        return (
            (a, unbroadcast(g * (a_wins + tie), a.shape)),
            (b, unbroadcast(g * (1.0 - a_wins - tie), b.shape)),
        )

    return _make(out_data, (a, b), backward)


def outer(a, b) -> Tensor:
    """Outer product of two 1-D tensors."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(f"outer expects 1-D tensors, got {a.shape} and {b.shape}")
    out_data = np.outer(a.data, b.data)

    def backward(g):
        return ((a, g @ b.data), (b, g.T @ a.data))

    return _make(out_data, (a, b), backward)


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(start), int(stop))
            grads.append((tensor, g[tuple(index)]))
        return tuple(grads)

    return _make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        slices = np.split(g, len(tensors), axis=axis)
        return tuple(
            (tensor, np.squeeze(piece, axis=axis)) for tensor, piece in zip(tensors, slices)
        )

    return _make(out_data, tuple(tensors), backward)


def symmetric_from_upper(values, n: int, rows: np.ndarray, cols: np.ndarray) -> Tensor:
    """Scatter a vector of upper-triangle entries into a symmetric n×n matrix.

    ``rows``/``cols`` index the strictly-upper-triangular positions (as from
    ``np.triu_indices(n, k=1)``); the result has ``out[r, c] = out[c, r] =
    values[k]`` and a zero diagonal.  The backward pass gathers
    ``g[r, c] + g[c, r]`` — the chain rule for a matrix constrained to be
    symmetric, which is exactly what the structural attacks need when
    differentiating through the adjacency matrix.
    """
    values = as_tensor(values)
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if values.ndim != 1 or len(rows) != len(cols) or len(rows) != values.size:
        raise ValueError(
            f"expected 1-D values aligned with index arrays, got {values.shape}, "
            f"{rows.shape}, {cols.shape}"
        )
    if np.any(rows >= cols):
        raise ValueError("indices must address the strict upper triangle (rows < cols)")
    out_data = np.zeros((n, n))
    out_data[rows, cols] = values.data
    out_data[cols, rows] = values.data

    def backward(g):
        return ((values, g[rows, cols] + g[cols, rows]),)

    return _make(out_data, (values,), backward)


def apply_pair_flips(
    base: np.ndarray,
    flip_values,
    rows: np.ndarray,
    cols: np.ndarray,
    direction: "np.ndarray | None" = None,
    base_values: "np.ndarray | None" = None,
) -> Tensor:
    """Toggle candidate pairs of a constant adjacency: ``A0 + (1−2A0) ⊙ F``.

    ``base`` is the clean adjacency (a constant — no gradient flows to it)
    and ``flip_values`` the differentiable per-pair flip indicator ``F`` on
    the canonical candidate positions ``(rows, cols)``.  ``direction`` is
    the precomputed per-pair ``1 − 2·A0[rows, cols]`` and ``base_values``
    the precomputed ``A0[rows, cols]`` (both recomputed when omitted —
    passing them saves one fancy-index gather per call, which matters in
    BinarizedAttack's per-iteration hot loop where ``base`` never changes).

    Fusing the scatter, elementwise multiply and add avoids materialising
    two dense n×n intermediates per optimisation step — the hot loop of
    BinarizedAttack — while remaining bit-identical to the unfused
    ``base + direction ⊙ symmetric_from_upper(F)`` composition (forward and
    backward use the same per-entry expressions).
    """
    base = np.asarray(base, dtype=np.float64)
    flip_values = as_tensor(flip_values)
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if flip_values.ndim != 1 or len(rows) != len(cols) or len(rows) != flip_values.size:
        raise ValueError(
            f"expected 1-D flip values aligned with index arrays, got "
            f"{flip_values.shape}, {rows.shape}, {cols.shape}"
        )
    if rows.size and (rows.min() < 0 or np.any(rows >= cols)):
        raise ValueError(
            "indices must address the strict upper triangle (0 <= rows < cols)"
        )
    if base_values is None:
        base_values = base[rows, cols]
    if direction is None:
        direction = 1.0 - 2.0 * base_values
    out_data = base.copy()
    toggled = base_values + direction * flip_values.data
    out_data[rows, cols] = toggled
    out_data[cols, rows] = toggled

    def backward(g):
        return ((flip_values, g[rows, cols] * direction + g[cols, rows] * direction),)

    return _make(out_data, (flip_values,), backward)


def binarize_ste(x, clip: "float | None" = 1.0) -> Tensor:
    """Sign function with a straight-through gradient estimator.

    Forward: ``+1`` where ``x >= 0``, ``-1`` elsewhere — exactly the
    ``binarized(.)`` of Eq. 7 in the paper (note ``binarized(0) = +1``).

    Backward: the gradient passes through unchanged (identity), optionally
    zeroed where ``|x| > clip`` — the *clipped* straight-through estimator of
    Binarized Neural Networks [Hubara et al. 2016].  BinarizedAttack feeds
    ``2·Ż − 1`` with ``Ż ∈ [0, 1]`` so the clip at 1 never activates, but it
    is kept for generality (and tested).
    """
    x = as_tensor(x)
    out_data = np.where(x.data >= 0.0, 1.0, -1.0)
    if clip is None:
        pass_mask = np.ones_like(x.data)
    else:
        pass_mask = (np.abs(x.data) <= float(clip)).astype(np.float64)

    def backward(g):
        return ((x, g * pass_mask),)

    return _make(out_data, (x,), backward)

"""The repo-specific invariant rules.

Each rule mechanises one contract the stack's guarantees rest on:

* ``no-densify`` — hot-path modules never materialise a dense adjacency
  (the O(deg)-per-flip scaling story dies with one stray ``.toarray()``);
* ``no-unseeded-random`` — attack/engine/store randomness flows through a
  seeded :class:`numpy.random.Generator`, never global legacy state
  (serial/parallel/resume parity is bit-identical only if it does);
* ``mmap-write-safety`` — arrays obtained from ``adjacency_csr()`` /
  ``GraphStore.csr()`` / read-mode memmaps are never written through
  (a write would corrupt pages shared by every process mapping the store);
* ``checkpoint-json-purity`` — ``to_dict`` payloads headed for the
  checkpoint JSONL are JSON-primitive expressions (a numpy scalar that
  survives ``json.dumps`` today becomes a resume-parity break tomorrow);
* ``spec-picklability`` — :class:`EngineSpec` payloads stick to types
  that pickle cleanly across worker-process boundaries.

Scopes are root-relative fnmatch patterns: the invariants are properties
of specific modules (the hot path), not of the whole tree — densifying in
an experiment driver over a 1 000-node sample is exactly what the paper
does.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import LintRule, ModuleContext, rule
from repro.analysis.findings import Finding

__all__ = [
    "NoDensifyRule",
    "NoUnseededRandomRule",
    "MmapWriteSafetyRule",
    "CheckpointJsonPurityRule",
    "SpecPicklabilityRule",
]

#: Terminal-name tokens that mark a variable as sparse-matrix-like for the
#: ``np.asarray``/``np.array`` branch of ``no-densify``.
_SPARSE_NAME_TOKENS = {"csr", "coo", "sparse", "spmatrix"}

#: Zero-argument-call producers whose result is sparse (``to_sparse(g)``,
#: ``graph.adjacency_csr()``, ``matrix.tocsr()``, ``store.csr()``).
_SPARSE_PRODUCERS = {"to_sparse", "adjacency_csr", "tocsr", "tocoo", "csr"}

#: scipy/ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = {
    "sort_indices",
    "setdiag",
    "eliminate_zeros",
    "sum_duplicates",
    "prune",
    "resize",
    "sort",
    "fill",
    "setflags",
    "partition",
}

#: CSR buffer attributes — writes through these hit the mmap pages.
_BUFFER_ATTRS = {"data", "indices", "indptr"}

#: ``np.random`` constructors that are fine anywhere (they *are* the
#: seeded-Generator machinery).
_SEEDED_CONSTRUCTORS = {"Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}


def _terminal_name(node: ast.AST) -> str:
    """Last identifier of a Name/Attribute chain ("" for anything else)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _call_name(node: ast.AST) -> str:
    """Called function's terminal name ("" if not a call)."""
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return ""


def _looks_sparse(node: ast.AST) -> bool:
    """Heuristic: does this expression evaluate to a sparse matrix?

    Matches variables whose terminal name contains a sparse token
    (``csr``, ``adjacency_csr`` …) and calls to known sparse producers.
    Deliberately does NOT match attribute reads *off* such a variable
    (``csr.data`` is a flat buffer — densifying it is meaningless).
    """
    name = _terminal_name(node)
    if name:
        tokens = set(re.split(r"[_\d]+", name.lower()))
        if tokens & _SPARSE_NAME_TOKENS:
            return True
    return _call_name(node) in _SPARSE_PRODUCERS


def _numpy_aliases(tree: ast.Module) -> "set[str]":
    """Local names bound to the numpy module (``np`` by convention)."""
    aliases = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


@rule
class NoDensifyRule(LintRule):
    """Hot-path modules must not materialise dense adjacencies.

    Flags ``.toarray()`` / ``.todense()`` calls anywhere in scope, and
    ``np.asarray`` / ``np.array`` whose argument is recognisably sparse.
    The incremental engine's whole point is O(deg) flips over a CSR that
    may be an out-of-core memmap; one densify silently reverts to the
    O(n²) regime the paper's scaling results forbid.
    """

    id = "no-densify"
    description = (
        "no .toarray()/.todense()/dense np.asarray of sparse matrices "
        "in hot-path modules"
    )
    scope = (
        "graph/incremental.py",
        "graph/sparse.py",
        "oddball/surrogate.py",
        "attacks/*.py",
        "store/*.py",
    )

    def check(self, module: ModuleContext) -> "list[Finding]":
        """Collect densification sites in ``module``."""
        findings: list[Finding] = []
        numpy_names = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "toarray",
                "todense",
            ):
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        f".{func.attr}() materialises a dense adjacency in a "
                        "hot-path module",
                    )
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("asarray", "array", "asmatrix")
                and isinstance(func.value, ast.Name)
                and func.value.id in numpy_names
                and node.args
                and _looks_sparse(node.args[0])
            ):
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        f"np.{func.attr}() of a sparse matrix densifies it "
                        "in a hot-path module",
                    )
                )
        return findings


@rule
class NoUnseededRandomRule(LintRule):
    """Randomness in attack/engine/store code must be explicitly seeded.

    Flags legacy global-state calls (``np.random.rand`` …, stdlib
    ``random``) and ``np.random.default_rng()`` with no/None seed.  The
    campaign layer's bit-identical serial/parallel/resume parity only
    holds when every stochastic choice derives from a seed recorded in
    the checkpoint.
    """

    id = "no-unseeded-random"
    description = (
        "np.random/random calls must route through a seeded Generator "
        "in attack, engine, and store modules"
    )
    scope = (
        "attacks/*.py",
        "oddball/surrogate.py",
        "store/*.py",
        "graph/incremental.py",
    )

    def check(self, module: ModuleContext) -> "list[Finding]":
        """Collect unseeded-randomness sites in ``module``."""
        findings: list[Finding] = []
        numpy_names = _numpy_aliases(module.tree)
        random_modules: set[str] = set()
        random_names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random":
                        random_modules.add(item.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for item in node.names:
                    random_names.add(item.asname or item.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in random_names:
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        f"stdlib random.{func.id}() uses unseeded global "
                        "state; use a seeded numpy Generator",
                    )
                )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id in random_modules:
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        f"stdlib random.{func.attr}() uses unseeded global "
                        "state; use a seeded numpy Generator",
                    )
                )
                continue
            # np.random.<attr>(...) — the legacy global-state surface.
            if not (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in numpy_names
            ):
                continue
            if func.attr in _SEEDED_CONSTRUCTORS:
                continue
            if func.attr == "default_rng":
                seed = node.args[0] if node.args else None
                unseeded = seed is None or (
                    isinstance(seed, ast.Constant) and seed.value is None
                )
                if unseeded:
                    findings.append(
                        module.finding(
                            self.id,
                            node,
                            "np.random.default_rng() without a seed is "
                            "non-deterministic; thread an explicit seed",
                        )
                    )
                continue
            findings.append(
                module.finding(
                    self.id,
                    node,
                    f"np.random.{func.attr}() uses the legacy global RNG; "
                    "route through a seeded np.random.Generator",
                )
            )
        return findings


class _TaintVisitor(ast.NodeVisitor):
    """Per-scope taint tracking for the mmap-write-safety rule.

    Taints names bound from ``adjacency_csr()`` / ``.csr()`` calls, from
    ``np.memmap(..., mode="r")``, and from the first element of a
    ``csr_with_delta()`` tuple-unpack; propagates through plain aliasing
    and ``.data/.indices/.indptr`` reads; reports any store or in-place
    mutation through a tainted name.
    """

    def __init__(self, rule_id: str, module: ModuleContext, numpy_names: "set[str]"):
        self.rule_id = rule_id
        self.module = module
        self.numpy_names = numpy_names
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # -- taint sources ------------------------------------------------- #
    def _is_readonly_memmap(self, call: ast.Call) -> bool:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "memmap"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_names
        ):
            return False
        for keyword in call.keywords:
            if keyword.arg == "mode":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value == "r"
                )
        return False  # writable by default (numpy's default mode is r+)

    def _taints(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in ("adjacency_csr", "csr"):
                return True
            return self._is_readonly_memmap(value)
        if isinstance(value, ast.Name):
            return value.id in self.tainted
        if isinstance(value, ast.Attribute):
            return (
                isinstance(value.value, ast.Name)
                and value.value.id in self.tainted
                and value.attr in _BUFFER_ATTRS
            )
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track taint through assignments (incl. csr_with_delta unpack)."""
        tainted_now = self._taints(node.value)
        delta_unpack = _call_name(node.value) == "csr_with_delta"
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tainted_now:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
            elif isinstance(target, ast.Tuple) and delta_unpack:
                # (base, delta) = features.csr_with_delta(): the base CSR
                # is store-backed; the delta overlay is a fresh COO.
                if target.elts and isinstance(target.elts[0], ast.Name):
                    self.tainted.add(target.elts[0].id)
            else:
                self._check_store_target(target)
        self.generic_visit(node)

    # -- violations ---------------------------------------------------- #
    def _check_store_target(self, target: ast.AST) -> None:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.tainted:
            self._report(target, f"write into mmap-backed array {base.id!r}")
        elif (
            isinstance(base, ast.Attribute)
            and base.attr in _BUFFER_ATTRS
            and isinstance(base.value, ast.Name)
            and base.value.id in self.tainted
        ):
            self._report(
                target,
                f"write into CSR buffer {base.value.id}.{base.attr} of an "
                "mmap-backed matrix",
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Flag in-place operator writes through tainted names."""
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Skip nested scopes — each gets its own visitor from the rule."""

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Skip nested scopes — each gets its own visitor from the rule."""

    def visit_Call(self, node: ast.Call) -> None:
        """Flag in-place mutating method calls on tainted names."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.tainted
        ):
            self._report(
                node,
                f"{func.value.id}.{func.attr}() mutates an mmap-backed "
                "array in place",
            )
        self.generic_visit(node)

    def _report(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.module.finding(
                self.rule_id,
                node,
                f"{what}; store-backed CSR components are shared read-only "
                "pages — copy before mutating",
            )
        )


@rule
class MmapWriteSafetyRule(LintRule):
    """No writes through arrays that may be store-backed memmaps.

    A :class:`~repro.store.GraphStore` maps its CSR components
    ``mode="r"``; numpy raises on writes, but only at *runtime* on the
    mmap path — dense-graph tests never exercise it.  This rule finds the
    writes statically, per function scope.
    """

    id = "mmap-write-safety"
    description = (
        "no assignment or in-place mutation of arrays obtained from "
        "adjacency_csr()/store memmaps"
    )
    scope = (
        "graph/*.py",
        "oddball/surrogate.py",
        "attacks/*.py",
        "store/*.py",
    )

    def check(self, module: ModuleContext) -> "list[Finding]":
        """Run taint tracking over every function scope in ``module``."""
        findings: list[Finding] = []
        numpy_names = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visitor = _TaintVisitor(self.id, module, numpy_names)
                for statement in node.body:
                    visitor.visit(statement)
                findings.extend(visitor.findings)
        return findings


#: Annotation tokens that mark a dataclass field as a container needing
#: explicit conversion before JSON serialisation.
_CONTAINER_ANNOTATION_RE = re.compile(
    r"\b(dict|list|set|tuple|Dict|List|Set|Tuple|Mapping|Sequence)\b"
)


@rule
class CheckpointJsonPurityRule(LintRule):
    """``to_dict`` payloads must be JSON-primitive expressions.

    The checkpoint JSONL is the resume-parity source of truth; a numpy
    scalar or nested container that happens to survive ``json.dumps``
    today round-trips as a *different* value tomorrow.  Container-typed
    dataclass fields must pass through a conversion helper
    (``_canonical`` / ``_jsonable``), never appear bare.
    """

    id = "checkpoint-json-purity"
    description = (
        "values written via CheckpointStore (to_dict payloads) must be "
        "JSON-primitive expressions"
    )
    scope = (
        "attacks/campaign.py",
        "attacks/executor.py",
        # Scheduler state (lease files, queue manifests, done markers) is
        # parsed by concurrent workers on possibly different Python builds:
        # a numpy scalar that survives json.dumps would still change the
        # bytes another worker compares, so the same purity bar applies.
        "attacks/scheduler.py",
        # Telemetry sink records (span/event/counter JSONL) are merged
        # across worker processes and diffed in golden-report tests; the
        # runtime _pure_attrs check guards attribute values, this guards
        # the to_dict payload shapes around them.
        "telemetry/*.py",
    )

    def check(self, module: ModuleContext) -> "list[Finding]":
        """Audit every ``to_dict`` method's returned dict literal."""
        findings: list[Finding] = []
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            annotations = {
                item.target.id: ast.unparse(item.annotation)
                for item in class_node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            }
            for item in class_node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "to_dict":
                    findings.extend(self._check_method(module, item, annotations))
        return findings

    def _check_method(
        self,
        module: ModuleContext,
        method: ast.FunctionDef,
        annotations: "dict[str, str]",
    ) -> "list[Finding]":
        findings: list[Finding] = []
        for node in ast.walk(method):
            if not isinstance(node, ast.Return) or not isinstance(
                node.value, ast.Dict
            ):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                label = (
                    repr(key.value)
                    if isinstance(key, ast.Constant)
                    else "<dynamic key>"
                )
                findings.extend(
                    self._check_value(module, label, value, annotations)
                )
        return findings

    def _check_value(
        self,
        module: ModuleContext,
        label: str,
        value: ast.AST,
        annotations: "dict[str, str]",
    ) -> "list[Finding]":
        if isinstance(value, (ast.Lambda, ast.SetComp, ast.GeneratorExp, ast.Set)):
            return [
                module.finding(
                    self.id,
                    value,
                    f"checkpoint field {label} is not JSON-serialisable "
                    f"({type(value).__name__})",
                )
            ]
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            annotation = annotations.get(value.attr, "")
            if _CONTAINER_ANNOTATION_RE.search(annotation):
                return [
                    module.finding(
                        self.id,
                        value,
                        f"checkpoint field {label} serialises container "
                        f"attribute self.{value.attr} (annotated "
                        f"{annotation!r}) without conversion; wrap it in a "
                        "JSON-purity helper so numpy scalars cannot leak "
                        "into the JSONL",
                    )
                ]
        return []


#: Calls allowed inside an EngineSpec payload expression.
_PICKLABLE_CALL_NAMES = {
    "str",
    "bytes",
    "int",
    "float",
    "bool",
    "tuple",
    "list",
    "dict",
    "array",
    "asarray",
    "ascontiguousarray",
    "copy",
    # the audited producer itself: ``EngineSpec(payload=self._spec_payload())``
    "_spec_payload",
}


@rule
class SpecPicklabilityRule(LintRule):
    """EngineSpec payloads must stick to declared picklable types.

    Specs cross process boundaries (:mod:`repro.attacks.executor`
    pickles one per worker); a lambda, generator, or arbitrary object in
    the payload fails at ``spawn`` time on the *worker*, far from the
    code that built it.  Payload expressions are restricted to constants,
    names/attributes, tuples/lists of the same, and calls to builtin or
    numpy array constructors (plus ``.copy()``).
    """

    id = "spec-picklability"
    description = (
        "EngineSpec payload fields restricted to picklable constructor "
        "expressions"
    )
    scope = ("oddball/surrogate.py", "store/*.py")

    def check(self, module: ModuleContext) -> "list[Finding]":
        """Audit ``_spec_payload`` returns and ``payload=`` bindings."""
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "_spec_payload":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        findings.extend(self._audit(module, sub.value))
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "payload":
                        findings.extend(self._audit(module, keyword.value))
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == "payload"
                    for t in node.targets
                ):
                    findings.extend(self._audit(module, node.value))
        return findings

    def _audit(self, module: ModuleContext, expr: ast.AST) -> "list[Finding]":
        offender = self._first_unpicklable(expr)
        if offender is None:
            return []
        return [
            module.finding(
                self.id,
                offender,
                f"EngineSpec payload contains {type(offender).__name__}, "
                "which is not a declared picklable payload form (constants, "
                "names, tuples, and builtin/numpy constructor calls only)",
            )
        ]

    def _first_unpicklable(self, expr: ast.AST) -> "ast.AST | None":
        if isinstance(expr, (ast.Constant, ast.Name, ast.Attribute, ast.Subscript)):
            return None
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                offender = self._first_unpicklable(element)
                if offender is not None:
                    return offender
            return None
        if isinstance(expr, ast.Starred):
            return self._first_unpicklable(expr.value)
        if isinstance(expr, ast.Call):
            if _terminal_name(expr.func) in _PICKLABLE_CALL_NAMES:
                return None
            return expr
        return expr

"""Runtime sanitizer guards: tripwires for the invariants the linter
checks statically.

Static analysis sees the source; these guards see the *execution*.  The
parity suites run the sparse engine inside :func:`forbid_densify` so a
dense fallback introduced anywhere in the call graph (including code the
linter cannot scope, like a dependency) fails loudly instead of silently
reverting to the O(n²) regime, and map store-backed runs inside
:func:`assert_readonly_mmap` so any write through a shared page —
whether or not numpy would have raised — is detected by checksum.

Both guards are process-global monkeypatches, not thread-safe, and meant
for tests and debugging sessions only — never library code.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager

import numpy as np
from scipy import sparse

__all__ = [
    "DensifyError",
    "MmapWriteError",
    "forbid_densify",
    "assert_readonly_mmap",
]


class DensifyError(RuntimeError):
    """A sparse matrix was densified inside a :func:`forbid_densify` block."""


class MmapWriteError(RuntimeError):
    """A guarded mmap-backed array changed inside an
    :func:`assert_readonly_mmap` block."""


#: Methods that materialise a dense array from a sparse matrix.
_DENSIFY_METHODS = ("toarray", "todense")

#: Concrete scipy.sparse classes to patch.  Patching concrete classes
#: (not just the spmatrix base) matters: several formats override
#: ``toarray``, and instance lookup finds the most-derived definition.
_SPARSE_CLASS_NAMES = (
    "spmatrix",
    "csr_matrix",
    "csc_matrix",
    "coo_matrix",
    "lil_matrix",
    "dok_matrix",
    "dia_matrix",
    "bsr_matrix",
    "csr_array",
    "csc_array",
    "coo_array",
    "lil_array",
    "dok_array",
    "dia_array",
    "bsr_array",
)


def _sparse_classes() -> "list[type]":
    classes: list[type] = []
    for name in _SPARSE_CLASS_NAMES:
        cls = getattr(sparse, name, None)
        if isinstance(cls, type) and cls not in classes:
            classes.append(cls)
    return classes


def _tripwire(cls_name: str, method: str, context: str):
    def trip(self, *args, **kwargs):
        raise DensifyError(
            f"{cls_name}.{method}() called inside forbid_densify()"
            + (f" [{context}]" if context else "")
            + " — a hot path densified a sparse matrix"
        )

    return trip


@contextmanager
def forbid_densify(context: str = ""):
    """Fail loudly on any sparse→dense materialisation in this block.

    Replaces ``toarray``/``todense`` on every scipy.sparse class with a
    tripwire raising :class:`DensifyError`; the original methods are
    restored on exit, even if the block raises.  ``context`` is folded
    into the error message to identify which guard fired.

    Wrap the *sparse* side of a parity run only — the dense oracle
    legitimately densifies.
    """
    patched: list[tuple[type, str, bool, object]] = []
    try:
        for cls in _sparse_classes():
            for method in _DENSIFY_METHODS:
                if not hasattr(cls, method):
                    continue
                had_own = method in cls.__dict__
                original = cls.__dict__.get(method)
                setattr(cls, method, _tripwire(cls.__name__, method, context))
                patched.append((cls, method, had_own, original))
        yield
    finally:
        for cls, method, had_own, original in reversed(patched):
            if had_own:
                setattr(cls, method, original)
            else:
                try:
                    delattr(cls, method)
                except AttributeError:
                    pass


def _guarded_arrays(source) -> "list[np.ndarray]":
    """Flatten a guard source into its underlying buffer arrays.

    Accepts a :class:`~repro.store.GraphStore` (guards its CSR component
    mmaps), any scipy sparse matrix (guards ``data``/``indices``/
    ``indptr``), a bare ndarray/memmap, or an object exposing
    ``adjacency_csr()``.
    """
    if hasattr(source, "manifest") and hasattr(source, "csr"):
        csr = source.csr()
        # keep the raw buffers — np.asarray would strip the np.memmap
        # subclass and defeat the writability check
        return [csr.data, csr.indices, csr.indptr]
    if hasattr(source, "adjacency_csr"):
        return _guarded_arrays(source.adjacency_csr())
    if sparse.issparse(source):
        csr = source if hasattr(source, "indptr") else source.tocsr()
        return [csr.data, csr.indices, csr.indptr]
    if isinstance(source, np.ndarray):
        return [source]
    raise TypeError(
        f"cannot guard object of type {type(source).__name__}; expected a "
        "GraphStore, sparse matrix, ndarray, or adjacency_csr() provider"
    )


def _checksum(array: np.ndarray) -> str:
    return hashlib.sha1(np.ascontiguousarray(array).tobytes()).hexdigest()


@contextmanager
def assert_readonly_mmap(*sources, context: str = ""):
    """Assert the arrays behind ``sources`` stay byte-identical.

    On entry: every :class:`numpy.memmap` among the guarded buffers must
    already be non-writeable (a store mapped with anything but
    ``mode="r"`` is a configuration bug, caught immediately).  On exit:
    every guarded buffer — memmap or not — must hash to the same bytes
    as on entry, so writes through an alias numpy could not intercept
    still surface as :class:`MmapWriteError`.
    """
    arrays: list[np.ndarray] = []
    for source in sources:
        arrays.extend(_guarded_arrays(source))
    for array in arrays:
        if isinstance(array, np.memmap) and array.flags.writeable:
            raise MmapWriteError(
                "guarded memmap is mapped writable"
                + (f" [{context}]" if context else "")
                + " — store components must be opened mode='r'"
            )
    before = [_checksum(array) for array in arrays]
    yield
    for index, array in enumerate(arrays):
        if _checksum(array) != before[index]:
            raise MmapWriteError(
                f"guarded array #{index} changed inside "
                "assert_readonly_mmap()"
                + (f" [{context}]" if context else "")
                + " — something wrote through a shared mmap page"
            )

"""Rule registry + file walker: the mechanical half of the linter.

A :class:`LintRule` owns one invariant: a *scope* (fnmatch patterns over
the path relative to the scanned root — the hot-path contract is a
property of specific modules, not the whole tree) and a ``check`` that
walks a parsed AST and returns :class:`~repro.analysis.findings.Finding`
objects.  Rules register themselves via the :func:`rule` decorator; the
engine parses each file **once** and hands the same
:class:`ModuleContext` to every in-scope rule.

Suppression layering, innermost first:

1. ``# repro: allow-<rule>(reason)`` pragmas — per-line, reviewed in
   place (see :mod:`repro.analysis.pragmas`);
2. the committed baseline — fingerprint-counted grandfathering (see
   :mod:`repro.analysis.baseline`);
3. everything left is a failure.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.pragmas import audit_pragmas, collect_pragmas

__all__ = [
    "AnalysisReport",
    "LintRule",
    "ModuleContext",
    "RULE_REGISTRY",
    "analyze_paths",
    "iter_python_files",
    "rule",
]

#: Every registered rule id → singleton rule instance.  Populated by the
#: :func:`rule` decorator when :mod:`repro.analysis.rules` is imported.
RULE_REGISTRY: "dict[str, LintRule]" = {}


def rule(cls: type) -> type:
    """Class decorator registering a :class:`LintRule` subclass."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} must declare a non-empty id")
    if instance.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    RULE_REGISTRY[instance.id] = instance
    return cls


@dataclass
class ModuleContext:
    """Everything a rule needs about one parsed module (parsed once)."""

    path: Path
    relpath: str  # posix-style, relative to the scanned root
    source: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)

    def snippet(self, lineno: int) -> str:
        """Stripped source line at 1-indexed ``lineno`` ("" out of range)."""
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule_id,
            path=self.relpath,
            line=lineno,
            message=message,
            snippet=self.snippet(lineno),
        )


class LintRule(abc.ABC):
    """One mechanical invariant check over a module AST."""

    #: Kebab-case rule id — what pragmas and the baseline key on.
    id: str = ""
    #: One-line contract statement (shown by ``--list-rules``).
    description: str = ""
    #: fnmatch patterns over the root-relative posix path; a rule only
    #: sees files inside its scope.  The hot-path invariants are module
    #: properties — ``.toarray()`` in an experiment driver is fine.
    scope: "tuple[str, ...]" = ("*",)

    def applies_to(self, relpath: str) -> bool:
        """Whether ``relpath`` (posix, root-relative) is in scope."""
        return any(fnmatch(relpath, pattern) for pattern in self.scope)

    @abc.abstractmethod
    def check(self, module: ModuleContext) -> "list[Finding]":
        """Return every violation of this rule in ``module``."""


@dataclass
class AnalysisReport:
    """Outcome of one analysis run over a file set."""

    findings: "list[Finding]"  # new findings — these fail the gate
    baselined: "list[Finding]" = field(default_factory=list)
    errors: "list[Finding]" = field(default_factory=list)  # unparseable files
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        """Gate verdict: no new findings and no scan errors."""
        return not self.findings and not self.errors

    def all_current(self) -> "list[Finding]":
        """Every live finding incl. baselined — ``--write-baseline`` input."""
        return self.baselined + self.findings


def iter_python_files(paths: "list[Path]") -> "list[Path]":
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                seen.setdefault(file.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
    return list(seen)


def _relpath(file: Path, root: Path) -> str:
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.name


def analyze_paths(
    paths: "list[Path] | None" = None,
    *,
    root: "Path | None" = None,
    rules: "list[LintRule] | None" = None,
    baseline: "Baseline | None" = None,
) -> AnalysisReport:
    """Run every (in-scope) rule over ``paths``; apply pragmas + baseline.

    ``root`` anchors rule scoping and finding paths; it defaults to the
    installed ``repro`` package directory, so ``analyze_paths()`` with no
    arguments lints the production tree from any working directory.
    """
    import repro

    if root is None:
        root = Path(repro.__file__).resolve().parent
    if paths is None:
        paths = [root]
    active = list(RULE_REGISTRY.values()) if rules is None else list(rules)
    known_rules = {r.id for r in active}

    raw_findings: list[Finding] = []
    errors: list[Finding] = []
    files = iter_python_files([Path(p) for p in paths])
    for file in files:
        relpath = _relpath(file, Path(root))
        try:
            source = file.read_text()
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError) as error:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=getattr(error, "lineno", 1) or 1,
                    message=f"could not analyse file: {error}",
                )
            )
            continue
        module = ModuleContext(
            path=file,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        applicable = [r for r in active if r.applies_to(relpath)]
        pragmas = collect_pragmas(source)
        for lint_rule in applicable:
            for finding in lint_rule.check(module):
                suppressed = False
                for pragma in pragmas.get(finding.line, ()):
                    if pragma.suppresses(finding.rule) and pragma.reason:
                        pragma.used = True
                        suppressed = True
                if not suppressed:
                    raw_findings.append(finding)
        raw_findings.extend(
            audit_pragmas(
                pragmas,
                relpath,
                module.lines,
                known_rules=known_rules,
                applicable_rules={r.id for r in applicable},
            )
        )

    baseline = baseline or Baseline()
    new, absorbed = baseline.filter(raw_findings)
    return AnalysisReport(
        findings=new,
        baselined=absorbed,
        errors=errors,
        files_scanned=len(files),
    )

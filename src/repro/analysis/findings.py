"""Finding: one lint/audit observation, with a drift-tolerant fingerprint.

A finding is keyed two ways:

* ``(path, line)`` — where to look, used for display and pragma matching;
* :meth:`Finding.fingerprint` — ``rule :: path :: normalised source line``,
  deliberately **line-number-free** so a committed baseline survives
  unrelated edits above the finding (the classic churn failure of
  line-keyed suppression files).

Formatting supports the plain terminal style and the ``--format github``
style (``::error file=...`` workflow commands) the CI job consumes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One invariant violation found by a rule or audit.

    ``snippet`` is the stripped source line the finding anchors to; it is
    part of the fingerprint, so moving a line does not invalidate a
    baseline entry but *changing* it does (the edit needs re-review).
    """

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def fingerprint(self) -> str:
        """Stable identity: rule + path + whitespace-normalised snippet."""
        normalised = " ".join(self.snippet.split())
        digest = hashlib.sha1(
            f"{self.rule}::{self.path}::{normalised}".encode()
        ).hexdigest()
        return digest[:16]

    def format_text(self) -> str:
        """``path:line: [rule] message`` — the terminal style."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def format_github(self) -> str:
        """GitHub Actions workflow-command style (inline PR annotations)."""
        # Workflow commands terminate the message at a newline; the
        # properties segment additionally reserves ',' and '::'.
        message = self.message.replace("\n", " ")
        return (
            f"::error file={self.path},line={self.line},"
            f"title=repro.analysis {self.rule}::{message}"
        )

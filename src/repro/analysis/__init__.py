"""Static analysis + runtime sanitizers for the repo's hot-path invariants.

The stack's headline guarantees — O(deg) flips over a never-densified
CSR, read-only store mmaps, bit-identical serial/parallel/resume parity,
picklable engine specs — live in specific modules, not everywhere.  This
package enforces them mechanically, three ways:

* **AST lint rules** (:mod:`repro.analysis.rules`) scoped to the hot-path
  modules, with per-line ``# repro: allow-<rule>(reason)`` pragmas and a
  committed baseline for grandfathered findings;
* **runtime guards** (:mod:`repro.analysis.guards`) — ``forbid_densify``
  and ``assert_readonly_mmap`` context managers the parity suites
  activate so violations the linter cannot see still fail loudly;
* **reflection audits** (:mod:`repro.analysis.audit`) — engine API parity
  and parity-test coverage checked against the live registry.

Run ``python -m repro.analysis`` for the CLI the CI gate uses.
"""

from repro.analysis import rules as _rules  # noqa: F401 — registers the rules
from repro.analysis.audit import (
    audit_block_parity_coverage,
    audit_engine_api,
    audit_kernel_parity_coverage,
    audit_parity_coverage,
    run_audits,
)
from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    RULE_REGISTRY,
    AnalysisReport,
    LintRule,
    ModuleContext,
    analyze_paths,
)
from repro.analysis.findings import Finding
from repro.analysis.guards import (
    DensifyError,
    MmapWriteError,
    assert_readonly_mmap,
    forbid_densify,
)
from repro.analysis.pragmas import Pragma, collect_pragmas

__all__ = [
    "AnalysisReport",
    "Baseline",
    "DensifyError",
    "Finding",
    "LintRule",
    "MmapWriteError",
    "ModuleContext",
    "Pragma",
    "RULE_REGISTRY",
    "analyze_paths",
    "assert_readonly_mmap",
    "audit_block_parity_coverage",
    "audit_engine_api",
    "audit_kernel_parity_coverage",
    "audit_parity_coverage",
    "collect_pragmas",
    "forbid_densify",
    "run_audits",
]

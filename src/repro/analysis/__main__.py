"""CLI: ``python -m repro.analysis [paths] [--baseline FILE] [--format github]``.

Exit status is the contract CI relies on: 0 when every finding is
suppressed (pragma) or grandfathered (baseline) and the reflection
audits pass; 1 otherwise.  ``--format github`` emits workflow commands
(``::error file=...``) so findings surface as inline PR annotations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401 — registers the rules
from repro.analysis.audit import run_audits
from repro.analysis.baseline import Baseline
from repro.analysis.engine import RULE_REGISTRY, analyze_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Invariant linter + parity audits for the repro codebase: "
            "hot-path densification, unseeded randomness, mmap write "
            "safety, checkpoint JSON purity, spec picklability."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory rule scopes are anchored to (default: the repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("analysis-baseline.json"),
        help="baseline file of grandfathered findings (missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output style (github = workflow-command annotations)",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the reflection audits (engine API / parity coverage)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Run the analysis; return the process exit status."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[rule_id]
            print(f"{rule_id:24s} {rule.description}")
            print(f"{'':24s} scope: {', '.join(rule.scope)}")
        return 0

    baseline = Baseline.load(args.baseline)
    report = analyze_paths(
        [Path(p) for p in args.paths] or None,
        root=args.root,
        baseline=baseline,
    )

    if args.write_baseline:
        Baseline.from_findings(report.all_current()).save(args.baseline)
        print(
            f"repro.analysis: wrote {len(report.all_current())} finding(s) "
            f"to {args.baseline}"
        )
        return 0

    audit_findings = [] if args.no_audit else run_audits()
    failures = report.errors + report.findings + audit_findings
    for finding in failures:
        print(
            finding.format_github()
            if args.format == "github"
            else finding.format_text()
        )

    summary = (
        f"repro.analysis: {report.files_scanned} file(s) scanned, "
        f"{len(report.findings)} new finding(s), "
        f"{len(report.baselined)} baselined"
    )
    if not args.no_audit:
        summary += f", {len(audit_findings)} audit finding(s)"
    if report.errors:
        summary += f", {len(report.errors)} file(s) unparseable"
    print(summary, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Reflection-based parity audits.

The linter checks source; these audits check the *live objects*:

* :func:`audit_engine_api` — the dense and sparse
  :class:`~repro.oddball.surrogate.SurrogateEngine` implementations must
  expose identical public APIs with identical signatures.  Every future
  backend (compiled kernels, PRBCD blocks) is held to the same bar: a
  method added to one engine but not the other silently forks the parity
  surface the whole test strategy assumes.
* :func:`audit_parity_coverage` — every attack in
  :data:`~repro.attacks.campaign.SHARED_ENGINE_ATTACKS` must have a
  registered backend-parity test (found by reflecting the registry and
  AST-scanning the parity test modules).  An attack wired into the
  campaign without a parity test is an attack whose sparse path is
  untested by construction.
* :func:`audit_kernel_parity_coverage` — every compiled kernel in
  :data:`repro.kernels.KERNEL_REGISTRY` must be exercised by a
  numpy-vs-compiled ``*Parity*`` test class.  The compiled backend's whole
  contract is bit-identity with the numpy oracle; a kernel without a
  parity test has no contract.
* :func:`audit_block_parity_coverage` — every shared-engine attack must
  additionally appear in a ``*Block*Parity*`` test class: the ``block``
  candidate strategy's degenerate mode (block covering every pair) promises
  bit-identical flips to ``full`` for *every* attack, so an attack wired
  into the campaign without a block-degeneracy test silently narrows that
  promise.

Audit findings reuse the :class:`~repro.analysis.findings.Finding` shape
so the CLI reports them alongside lint findings.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "audit_block_parity_coverage",
    "audit_engine_api",
    "audit_kernel_parity_coverage",
    "audit_parity_coverage",
    "run_audits",
]

_ENGINE_RULE = "engine-api-parity"
_COVERAGE_RULE = "parity-test-coverage"
_KERNEL_RULE = "kernel-parity-coverage"
_BLOCK_RULE = "block-parity-coverage"
_SURROGATE_PATH = "oddball/surrogate.py"


def _public_members(cls: type) -> "dict[str, object]":
    return {
        name: member
        for name, member in inspect.getmembers(cls)
        if not name.startswith("_")
    }


def _class_line(cls: type) -> int:
    try:
        return inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return 1


def audit_engine_api() -> "list[Finding]":
    """Assert Dense/Sparse ``SurrogateEngine`` expose identical public APIs.

    Compares public member *names* both ways, then compares
    ``inspect.signature`` for every shared callable — a parameter added
    to one backend only breaks substitutability even when the name sets
    match.
    """
    from repro.oddball.surrogate import DenseSurrogateEngine, SparseSurrogateEngine

    findings: list[Finding] = []
    dense = _public_members(DenseSurrogateEngine)
    sparse_ = _public_members(SparseSurrogateEngine)
    pairs = (
        (DenseSurrogateEngine, dense, SparseSurrogateEngine, sparse_),
        (SparseSurrogateEngine, sparse_, DenseSurrogateEngine, dense),
    )
    for have_cls, have, lack_cls, lack in pairs:
        for name in sorted(set(have) - set(lack)):
            findings.append(
                Finding(
                    rule=_ENGINE_RULE,
                    path=_SURROGATE_PATH,
                    line=_class_line(lack_cls),
                    message=(
                        f"{lack_cls.__name__} lacks public member {name!r} "
                        f"present on {have_cls.__name__}; the engines must "
                        "expose identical APIs"
                    ),
                )
            )
    for name in sorted(set(dense) & set(sparse_)):
        dense_member, sparse_member = dense[name], sparse_[name]
        if not (callable(dense_member) and callable(sparse_member)):
            continue
        try:
            dense_sig = inspect.signature(dense_member)
            sparse_sig = inspect.signature(sparse_member)
        except (ValueError, TypeError):
            continue
        if [p.name for p in dense_sig.parameters.values()] != [
            p.name for p in sparse_sig.parameters.values()
        ]:
            findings.append(
                Finding(
                    rule=_ENGINE_RULE,
                    path=_SURROGATE_PATH,
                    line=_class_line(SparseSurrogateEngine),
                    message=(
                        f"engine method {name!r} has diverging signatures: "
                        f"dense{dense_sig} vs sparse{sparse_sig}"
                    ),
                )
            )
    return findings


def _default_parity_test_dir() -> Path:
    import repro

    return Path(repro.__file__).resolve().parents[2] / "tests" / "attacks"


def _identifiers_in_classes(
    tree: ast.Module, *needles: str
) -> "set[str]":
    """Names, attributes, and string constants inside matching test classes.

    A class matches when its (lowercased) name contains every needle —
    ``("parity",)`` finds the backend/kernel parity suites,
    ``("block", "parity")`` the block-degeneracy ones.
    """
    tokens: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lowered = node.name.lower()
        if not all(needle in lowered for needle in needles):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                tokens.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                tokens.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                tokens.add(sub.value)
    return tokens


def _identifiers_in_parity_classes(tree: ast.Module) -> "set[str]":
    """Names, attributes, and string constants inside ``*Parity*`` classes."""
    return _identifiers_in_classes(tree, "parity")


def audit_parity_coverage(test_paths: "list[Path] | None" = None) -> "list[Finding]":
    """Every ``SHARED_ENGINE_ATTACKS`` entry needs a registered parity test.

    Reflects the attack registry (name → class), AST-scans the parity
    test modules for classes whose name contains ``Parity``, and reports
    any shared-engine attack whose class name (or registry name string)
    never appears inside one.
    """
    from repro.attacks import ATTACK_REGISTRY
    from repro.attacks.campaign import SHARED_ENGINE_ATTACKS

    if test_paths is None:
        test_dir = _default_parity_test_dir()
        if not test_dir.is_dir():
            return [
                Finding(
                    rule=_COVERAGE_RULE,
                    path="tests/attacks",
                    line=1,
                    message=(
                        f"parity test directory {test_dir} not found; cannot "
                        "verify SHARED_ENGINE_ATTACKS coverage"
                    ),
                )
            ]
        test_paths = sorted(test_dir.glob("test_*.py"))

    tokens: set[str] = set()
    for path in test_paths:
        try:
            tokens |= _identifiers_in_parity_classes(ast.parse(Path(path).read_text()))
        except (OSError, SyntaxError):
            continue

    findings: list[Finding] = []
    for attack_name in sorted(SHARED_ENGINE_ATTACKS):
        attack_cls = ATTACK_REGISTRY.get(attack_name)
        if attack_cls is None:
            findings.append(
                Finding(
                    rule=_COVERAGE_RULE,
                    path="attacks/campaign.py",
                    line=1,
                    message=(
                        f"SHARED_ENGINE_ATTACKS entry {attack_name!r} is not "
                        "in ATTACK_REGISTRY"
                    ),
                )
            )
            continue
        if attack_cls.__name__ not in tokens and attack_name not in tokens:
            findings.append(
                Finding(
                    rule=_COVERAGE_RULE,
                    path="attacks/campaign.py",
                    line=1,
                    message=(
                        f"attack {attack_name!r} ({attack_cls.__name__}) has "
                        "no backend-parity test class referencing it; every "
                        "SHARED_ENGINE_ATTACKS member needs one"
                    ),
                )
            )
    return findings


def _default_kernel_test_dir() -> Path:
    import repro

    return Path(repro.__file__).resolve().parents[2] / "tests" / "kernels"


def audit_kernel_parity_coverage(
    test_paths: "list[Path] | None" = None,
) -> "list[Finding]":
    """Every ``KERNEL_REGISTRY`` entry needs a numpy-vs-compiled parity test.

    Reflects the kernel registry (the authoritative list of compiled
    primitives) and AST-scans ``tests/kernels`` for classes whose name
    contains ``Parity``; a kernel whose registry name never appears inside
    one is reported.  The scan intentionally mirrors
    :func:`audit_parity_coverage` so adding a kernel without its oracle
    test fails the same CI gate as adding an attack without one.
    """
    from repro.kernels import KERNEL_REGISTRY

    if test_paths is None:
        test_dir = _default_kernel_test_dir()
        if not test_dir.is_dir():
            return [
                Finding(
                    rule=_KERNEL_RULE,
                    path="tests/kernels",
                    line=1,
                    message=(
                        f"kernel parity test directory {test_dir} not found; "
                        "cannot verify KERNEL_REGISTRY coverage"
                    ),
                )
            ]
        test_paths = sorted(test_dir.glob("test_*.py"))

    tokens: set[str] = set()
    for path in test_paths:
        try:
            tokens |= _identifiers_in_parity_classes(ast.parse(Path(path).read_text()))
        except (OSError, SyntaxError):
            continue

    findings: list[Finding] = []
    for kernel_name in KERNEL_REGISTRY:
        if kernel_name not in tokens:
            findings.append(
                Finding(
                    rule=_KERNEL_RULE,
                    path="kernels/__init__.py",
                    line=1,
                    message=(
                        f"kernel {kernel_name!r} has no numpy-vs-compiled "
                        "*Parity* test class referencing it; every "
                        "KERNEL_REGISTRY member needs one"
                    ),
                )
            )
    return findings


def audit_block_parity_coverage(
    test_paths: "list[Path] | None" = None,
) -> "list[Finding]":
    """Every ``SHARED_ENGINE_ATTACKS`` entry needs a block-degeneracy test.

    The ``block`` candidate strategy promises that a block covering every
    pair selects bit-identical flips to ``full`` for *every* attack (the
    anchor that makes sub-full blocks a pure memory/quality trade, not a
    semantics change).  This audit mirrors :func:`audit_parity_coverage`
    over classes whose name contains both ``Block`` and ``Parity``, so an
    attack added to the campaign without extending the degenerate-parity
    suite fails the same CI gate as one without a backend-parity test.
    """
    from repro.attacks import ATTACK_REGISTRY
    from repro.attacks.campaign import SHARED_ENGINE_ATTACKS

    if test_paths is None:
        test_dir = _default_parity_test_dir()
        if not test_dir.is_dir():
            return [
                Finding(
                    rule=_BLOCK_RULE,
                    path="tests/attacks",
                    line=1,
                    message=(
                        f"parity test directory {test_dir} not found; cannot "
                        "verify block-degeneracy coverage"
                    ),
                )
            ]
        test_paths = sorted(test_dir.glob("test_*.py"))

    tokens: set[str] = set()
    for path in test_paths:
        try:
            tree = ast.parse(Path(path).read_text())
        except (OSError, SyntaxError):
            continue
        tokens |= _identifiers_in_classes(tree, "block", "parity")

    findings: list[Finding] = []
    for attack_name in sorted(SHARED_ENGINE_ATTACKS):
        attack_cls = ATTACK_REGISTRY.get(attack_name)
        if attack_cls is None:
            continue  # already reported by audit_parity_coverage
        if attack_cls.__name__ not in tokens and attack_name not in tokens:
            findings.append(
                Finding(
                    rule=_BLOCK_RULE,
                    path="attacks/campaign.py",
                    line=1,
                    message=(
                        f"attack {attack_name!r} ({attack_cls.__name__}) has "
                        "no *Block*Parity* test class referencing it; every "
                        "SHARED_ENGINE_ATTACKS member needs a degenerate-"
                        "block-equals-full parity test"
                    ),
                )
            )
    return findings


def run_audits() -> "list[Finding]":
    """Run every reflection audit and concatenate the findings."""
    return (
        audit_engine_api()
        + audit_parity_coverage()
        + audit_kernel_parity_coverage()
        + audit_block_parity_coverage()
    )

"""Committed baseline of grandfathered findings.

The baseline lets the analysis gate turn on *strict* from day one without
first fixing every historical finding: existing findings are recorded
(fingerprint → count) in a committed JSON file, the CI job fails only on
findings **beyond** the baseline, and shrinking the file over time is the
paydown workflow.  Fingerprints are line-number-free (see
:meth:`repro.analysis.findings.Finding.fingerprint`), so unrelated edits
never invalidate entries; editing a baselined line *does* (the changed
line needs a fresh look — exactly the right trigger).

Counts matter: two identical ``.toarray()`` lines in one file share a
fingerprint, and baselining one of them must not silence the other.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline"]

_BASELINE_VERSION = 1


class Baseline:
    """Fingerprint → allowed-count map, JSON round-trippable.

    ``Baseline.load(path)`` on a missing file yields an empty baseline, so
    a repo with zero grandfathered findings needs no file at all.
    """

    def __init__(self, counts: "dict[str, int] | None" = None):
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: "Path | str | None") -> "Baseline":
        """Read a baseline file (missing file or ``None`` → empty)."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != _BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version')!r} (this build reads {_BASELINE_VERSION})"
            )
        counts = {
            str(fp): int(count) for fp, count in payload.get("findings", {}).items()
        }
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: "list[Finding]") -> "Baseline":
        """Baseline covering exactly ``findings`` (the ``--write-baseline`` path)."""
        return cls(Counter(f.fingerprint() for f in findings))

    def save(self, path: "Path | str") -> None:
        """Write the baseline JSON (sorted keys — diff-friendly commits)."""
        payload = {
            "version": _BASELINE_VERSION,
            "findings": {fp: self.counts[fp] for fp in sorted(self.counts)},
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def filter(
        self, findings: "list[Finding]"
    ) -> "tuple[list[Finding], list[Finding]]":
        """Split ``findings`` into ``(new, baselined)``.

        The first ``count`` occurrences of each baselined fingerprint are
        absorbed (in input order — stable under re-runs); everything past
        the recorded count is new and must fail the gate.
        """
        budget = dict(self.counts)
        new: list[Finding] = []
        absorbed: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                absorbed.append(finding)
            else:
                new.append(finding)
        return new, absorbed

    def __len__(self) -> int:
        return sum(self.counts.values())

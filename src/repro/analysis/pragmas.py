"""Per-line suppression pragmas: ``# repro: allow-<rule>(reason)``.

A pragma acknowledges ONE rule on ONE line, with a mandatory free-text
reason — grandfathering without a recorded justification is what the
baseline file is for, not pragmas.  Syntax::

    x = csr.toarray()  # repro: allow-densify(testing-only helper)

The pragma may sit on the flagged line itself or on a comment-only line
directly above it (for lines too long to carry the comment).

Pragmas are *audited*: one that matches no finding is itself reported
(``unused-pragma``), as is one naming an unknown rule or an empty reason
(``malformed-pragma``).  This keeps suppressions from outliving the code
they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = ["Pragma", "collect_pragmas", "audit_pragmas"]

#: ``# repro: allow-<rule>(<reason>)`` — rule ids are kebab-case; the
#: pragma spells the rule WITHOUT its ``no-`` prefix where one exists
#: (``allow-densify`` suppresses ``no-densify``), reading as permission.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow-([a-z0-9-]+)\s*\(([^()]*)\)")


@dataclass
class Pragma:
    """One parsed suppression pragma."""

    allow: str  # the token after ``allow-`` (e.g. ``densify``)
    reason: str
    line: int  # 1-indexed line the pragma comment sits on
    used: bool = field(default=False, compare=False)

    def suppresses(self, rule_id: str) -> bool:
        """Whether this pragma acknowledges ``rule_id``.

        ``allow-densify`` matches ``no-densify``: the pragma drops a
        leading ``no-`` so suppressions read as permissions.
        """
        return rule_id in (self.allow, f"no-{self.allow}")


def collect_pragmas(source: str) -> "dict[int, list[Pragma]]":
    """Parse every pragma in ``source``, keyed by the line it *covers*.

    A pragma on a comment-only line covers the next line; a trailing
    pragma covers its own line.  Both keys may coexist (two pragmas).

    Comments are located with :mod:`tokenize`, not a text scan, so pragma
    syntax quoted inside a string/docstring (like the example above) is
    never mistaken for a live suppression.
    """
    covered: dict[int, list[Pragma]] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return covered  # unparseable files are reported by the engine
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        lineno, column = token.start
        pragma = Pragma(
            allow=match.group(1), reason=match.group(2).strip(), line=lineno
        )
        comment_only = lineno <= len(lines) and not lines[lineno - 1][:column].strip()
        target = lineno + 1 if comment_only else lineno
        covered.setdefault(target, []).append(pragma)
    return covered


def audit_pragmas(
    pragmas: "dict[int, list[Pragma]]",
    relpath: str,
    lines: "list[str]",
    known_rules: "set[str]",
    applicable_rules: "set[str]",
) -> "list[Finding]":
    """Findings for malformed, unknown-rule, and unused pragmas.

    ``applicable_rules`` are the rules whose scope includes this file: a
    pragma for an in-scope rule that suppressed nothing is dead weight
    (``unused-pragma``); one naming a rule that does not exist at all is
    a typo that would silently suppress nothing (``malformed-pragma``).
    """
    findings: list[Finding] = []
    for entries in pragmas.values():
        for pragma in entries:
            snippet = (
                lines[pragma.line - 1].strip()
                if 0 < pragma.line <= len(lines)
                else ""
            )
            resolved = {pragma.allow, f"no-{pragma.allow}"} & known_rules
            if not pragma.reason:
                findings.append(
                    Finding(
                        rule="malformed-pragma",
                        path=relpath,
                        line=pragma.line,
                        message=(
                            f"pragma allow-{pragma.allow} has an empty reason; "
                            "every suppression must record why it is safe"
                        ),
                        snippet=snippet,
                    )
                )
                continue
            if not resolved:
                findings.append(
                    Finding(
                        rule="malformed-pragma",
                        path=relpath,
                        line=pragma.line,
                        message=(
                            f"pragma allow-{pragma.allow} names no known rule "
                            "(it would suppress nothing)"
                        ),
                        snippet=snippet,
                    )
                )
                continue
            if pragma.used:
                continue
            if resolved & applicable_rules:
                findings.append(
                    Finding(
                        rule="unused-pragma",
                        path=relpath,
                        line=pragma.line,
                        message=(
                            f"pragma allow-{pragma.allow} suppresses no finding; "
                            "remove it (the code it excused is gone)"
                        ),
                        snippet=snippet,
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule="unused-pragma",
                        path=relpath,
                        line=pragma.line,
                        message=(
                            f"pragma allow-{pragma.allow} sits in a file outside "
                            "that rule's scope; remove it"
                        ),
                        snippet=snippet,
                    )
                )
    return findings

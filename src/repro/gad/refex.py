"""ReFeX: Recursive Feature eXtraction (Henderson et al., KDD 2011) —
transfer target #2.

ReFeX starts from local and egonet features, recursively aggregates them
over neighbourhoods (means and sums), prunes redundant features with
*vertical logarithmic binning* + feature-graph deduplication, and emits
binary-valued embeddings (the one-hot encoding of each surviving feature's
bin index).  The BinarizedAttack paper feeds these embeddings to an MLP for
anomaly classification.
"""

from __future__ import annotations

import numpy as np

from repro.graph.features import egonet_features

__all__ = ["ReFeX", "vertical_log_binning"]


def vertical_log_binning(values: np.ndarray, fraction: float = 0.5, n_bins: int = 4) -> np.ndarray:
    """Assign logarithmic-bin codes 0..n_bins−1 to ``values``.

    The lowest ``fraction`` of the (rank-ordered) nodes get bin 0, the same
    fraction of the remainder bin 1, and so on — ReFeX's vertical binning,
    which is robust to the heavy-tailed feature distributions of real graphs.
    Ties are broken stably so equal values land in the same-or-adjacent bin.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    values = np.asarray(values, dtype=np.float64).ravel()
    n = len(values)
    codes = np.full(n, n_bins - 1, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    start = 0
    for bin_index in range(n_bins - 1):
        remaining = n - start
        if remaining <= 0:
            break
        take = max(int(np.ceil(fraction * remaining)), 1)
        codes[order[start : start + take]] = bin_index
        start += take
    return codes


class ReFeX:
    """Recursive structural feature extractor producing binary embeddings.

    Parameters
    ----------
    levels:
        Number of recursive aggregation rounds (each appends neighbour means
        and sums of the current feature set).
    n_bins:
        Bins of the vertical logarithmic binning (embedding width per
        retained feature is ``n_bins``).
    bin_fraction:
        Fraction parameter of the binning.
    prune_tolerance:
        Two features are considered redundant when their bin codes disagree
        on no node by more than this many levels; redundant features are
        dropped (connected-component representative retained).
    """

    def __init__(
        self,
        levels: int = 2,
        n_bins: int = 4,
        bin_fraction: float = 0.5,
        prune_tolerance: int = 0,
    ):
        if levels < 0:
            raise ValueError(f"levels must be non-negative, got {levels}")
        if prune_tolerance < 0:
            raise ValueError(f"prune_tolerance must be non-negative, got {prune_tolerance}")
        self.levels = levels
        self.n_bins = n_bins
        self.bin_fraction = bin_fraction
        self.prune_tolerance = prune_tolerance
        self.retained_: "list[int] | None" = None

    # ------------------------------------------------------------------ #
    def base_features(self, adjacency: np.ndarray) -> np.ndarray:
        """Local + egonet features: degree, E_within, E_out.

        ``E_out`` (edges leaving the egonet) follows the original ReFeX
        feature set: total degree mass of the egonet minus twice its
        internal edges.
        """
        adjacency = np.asarray(adjacency, dtype=np.float64)
        degrees, e_within = egonet_features(adjacency)
        ego_degree_mass = degrees + adjacency @ degrees
        e_out = np.maximum(ego_degree_mass - 2.0 * e_within, 0.0)
        return np.column_stack([degrees, e_within, e_out])

    def recursive_features(self, adjacency: np.ndarray) -> np.ndarray:
        """Base features plus ``levels`` rounds of neighbour mean/sum."""
        adjacency = np.asarray(adjacency, dtype=np.float64)
        degrees = adjacency.sum(axis=1)
        safe_degrees = np.maximum(degrees, 1.0)
        features = self.base_features(adjacency)
        current = features
        for _ in range(self.levels):
            sums = adjacency @ current
            means = sums / safe_degrees[:, None]
            current = np.column_stack([sums, means])
            features = np.column_stack([features, current])
        return features

    # ------------------------------------------------------------------ #
    def transform(self, adjacency: np.ndarray) -> np.ndarray:
        """Full pipeline: recursion → binning → pruning → binary embedding."""
        recursive = self.recursive_features(adjacency)
        codes = np.column_stack(
            [
                vertical_log_binning(recursive[:, j], self.bin_fraction, self.n_bins)
                for j in range(recursive.shape[1])
            ]
        )
        retained = self._prune(codes)
        self.retained_ = retained
        return self._binarize(codes[:, retained])

    def _prune(self, codes: np.ndarray) -> list[int]:
        """Connected-component pruning on the feature agreement graph."""
        n_features = codes.shape[1]
        parent = list(range(n_features))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for i in range(n_features):
            for j in range(i + 1, n_features):
                if np.max(np.abs(codes[:, i] - codes[:, j])) <= self.prune_tolerance:
                    root_i, root_j = find(i), find(j)
                    if root_i != root_j:
                        parent[max(root_i, root_j)] = min(root_i, root_j)
        # Keep the earliest feature of every component (ReFeX keeps the
        # "simplest", and earlier columns are lower recursion depth).
        return sorted({find(i) for i in range(n_features)})

    def _binarize(self, codes: np.ndarray) -> np.ndarray:
        """One-hot encode bin codes → binary embedding matrix."""
        n, k = codes.shape
        out = np.zeros((n, k * self.n_bins), dtype=np.float64)
        for j in range(k):
            out[np.arange(n), j * self.n_bins + codes[:, j]] = 1.0
        return out

"""GAL: Graph Anomaly Loss (Zhao et al., CIKM 2020) — transfer target #1.

GAL learns node embeddings with a GNN trained under a class-distribution-
aware margin loss (Eq. 9 of the BinarizedAttack paper):

.. math::

    L(u) = E_{u^+ ∼ U_{u^+}, u^- ∼ U_{u^-}}
           \\max\\{0,\\; g(u, u^-) − g(u, u^+) + Δ_{y_u}\\},
    \\qquad Δ_{y_u} = C / n_{y_u}^{1/4},

where ``g(u, v) = f(u)ᵀ f(v)`` is the embedding similarity, ``U_{u^+}`` the
nodes sharing ``u``'s label, and ``n_y`` the size of class ``y``.  The
``n^{-1/4}`` margin enlarges the separation required around the minority
(anomaly) class.  A downstream MLP classifies the learned embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.nn import normalized_adjacency
from repro.autograd.ops import maximum
from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor, no_grad
from repro.gad.gcn import GCNEncoder, structural_features
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["GAL"]


class GAL:
    """GNN embedding model trained with the graph anomaly (margin) loss.

    Parameters
    ----------
    hidden_dim, embedding_dim:
        GCN encoder widths.
    margin_constant:
        The constant ``C`` of the class-distribution-aware margin.
    pairs_per_node:
        How many (u⁺, u⁻) pairs are sampled per anchor per epoch (Monte-Carlo
        estimate of the expectation in Eq. 9).
    epochs, lr:
        Optimisation schedule (Adam).
    """

    def __init__(
        self,
        hidden_dim: int = 32,
        embedding_dim: int = 16,
        margin_constant: float = 1.0,
        pairs_per_node: int = 2,
        epochs: int = 100,
        lr: float = 0.01,
        rng=None,
    ):
        if margin_constant <= 0:
            raise ValueError(f"margin constant C must be positive, got {margin_constant}")
        if pairs_per_node < 1:
            raise ValueError(f"pairs_per_node must be >= 1, got {pairs_per_node}")
        self.hidden_dim = hidden_dim
        self.embedding_dim = embedding_dim
        self.margin_constant = margin_constant
        self.pairs_per_node = pairs_per_node
        self.epochs = epochs
        self.lr = lr
        self._init_rng, self._sample_rng = spawn_generators(as_generator(rng), 2)
        self.encoder: "GCNEncoder | None" = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------ #
    def fit(self, adjacency: np.ndarray, labels: np.ndarray, train_index: np.ndarray) -> "GAL":
        """Train the encoder on ``adjacency`` using labels of ``train_index``."""
        adjacency = np.asarray(adjacency, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64).ravel()
        train_index = np.asarray(train_index, dtype=np.intp)
        if len(labels) != adjacency.shape[0]:
            raise ValueError("labels must align with the adjacency matrix")

        features = structural_features(adjacency)
        propagation = Tensor(normalized_adjacency(adjacency))
        feature_tensor = Tensor(features)
        self.encoder = GCNEncoder(
            features.shape[1], self.hidden_dim, self.embedding_dim, rng=self._init_rng
        )

        train_labels = labels[train_index]
        positives = train_index[train_labels == 1]
        negatives = train_index[train_labels == 0]
        if len(positives) < 2 or len(negatives) < 2:
            raise ValueError(
                "GAL needs at least two nodes of each class in the training split"
            )
        margins = self._margins(labels, train_index)

        optimizer = Adam(self.encoder.parameters(), lr=self.lr)
        self.loss_history_ = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            embeddings = self.encoder(propagation, feature_tensor)
            anchors, same, other = self._sample_pairs(train_index, labels)
            anchor_e = embeddings[anchors]
            positive_similarity = (anchor_e * embeddings[same]).sum(axis=1)
            negative_similarity = (anchor_e * embeddings[other]).sum(axis=1)
            margin = Tensor(margins[anchors])
            zeros = Tensor(np.zeros(len(anchors)))
            hinge = maximum(zeros, negative_similarity - positive_similarity + margin)
            loss = hinge.mean()
            loss.backward()
            optimizer.step()
            self.loss_history_.append(float(loss.data))
        return self

    def _margins(self, labels: np.ndarray, train_index: np.ndarray) -> np.ndarray:
        """Per-node margin Δ_y = C / n_y^{1/4} from training-class counts."""
        counts = np.bincount(labels[train_index], minlength=2).astype(np.float64)
        counts = np.maximum(counts, 1.0)
        per_class = self.margin_constant / counts**0.25
        return per_class[labels]

    def _sample_pairs(
        self, train_index: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Monte-Carlo (anchor, same-class, other-class) index triples."""
        train_labels = labels[train_index]
        by_class = {c: train_index[train_labels == c] for c in (0, 1)}
        anchors, same, other = [], [], []
        for anchor in np.repeat(train_index, self.pairs_per_node):
            y = labels[anchor]
            same_pool = by_class[y]
            other_pool = by_class[1 - y]
            positive = anchor
            while positive == anchor:
                positive = int(same_pool[self._sample_rng.integers(len(same_pool))])
            negative = int(other_pool[self._sample_rng.integers(len(other_pool))])
            anchors.append(int(anchor))
            same.append(positive)
            other.append(negative)
        return np.array(anchors), np.array(same), np.array(other)

    # ------------------------------------------------------------------ #
    def embeddings(self, adjacency: np.ndarray) -> np.ndarray:
        """Node embeddings for (a possibly different) adjacency matrix."""
        if self.encoder is None:
            raise RuntimeError("GAL must be fitted before computing embeddings")
        with no_grad():
            return self.encoder.embed(np.asarray(adjacency, dtype=np.float64)).data

"""GCN encoder and structural input features for GAL.

The paper's graphs carry no node attributes, so — as is standard for
structure-only anomaly detection — the GCN consumes structural features
derived from the adjacency matrix (degree, egonet features, triangle counts,
clustering coefficient), standardised per column.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.nn import GraphConvolution, Module, normalized_adjacency
from repro.autograd.tensor import Tensor
from repro.graph.features import egonet_features
from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import as_generator

__all__ = ["GCNEncoder", "structural_features"]


def structural_features(adjacency: np.ndarray) -> np.ndarray:
    """Per-node structural feature matrix (n × 6), standardised.

    Columns: degree, log-degree, egonet edges E, log-E, triangles, local
    clustering coefficient.  These are the same quantities OddBall-style
    detectors consume, which is precisely why the transfer attack works: the
    poison perturbs the inputs every structure-based GAD system relies on.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n_feature, e_feature = egonet_features(adjacency)
    degrees = n_feature
    triangles = ((adjacency @ adjacency) * adjacency).sum(axis=1) / 2.0
    possible = np.maximum(degrees * (degrees - 1.0) / 2.0, 1.0)
    clustering = triangles / possible
    raw = np.column_stack(
        [
            degrees,
            np.log1p(degrees),
            e_feature,
            np.log1p(e_feature),
            triangles,
            clustering,
        ]
    )
    return StandardScaler().fit_transform(raw)


class GCNEncoder(Module):
    """Two-layer graph convolutional encoder producing node embeddings."""

    def __init__(self, in_features: int, hidden_dim: int = 32, embedding_dim: int = 16, rng=None):
        generator = as_generator(rng)
        self.layer1 = GraphConvolution(in_features, hidden_dim, rng=generator)
        self.layer2 = GraphConvolution(hidden_dim, embedding_dim, rng=generator)

    def forward(self, propagation: Tensor, features: Tensor) -> Tensor:
        hidden = self.layer1(propagation, features).relu()
        return self.layer2(propagation, hidden)

    def embed(self, adjacency: np.ndarray, features: "np.ndarray | None" = None) -> Tensor:
        """Embeddings for a raw adjacency matrix (propagation built inside)."""
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if features is None:
            features = structural_features(adjacency)
        propagation = Tensor(normalized_adjacency(adjacency))
        return self.forward(propagation, Tensor(features))

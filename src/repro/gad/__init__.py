"""Representation-learning GAD systems (transfer-attack targets) and pipeline."""

from repro.gad.gal import GAL
from repro.gad.gcn import GCNEncoder, structural_features
from repro.gad.mlp import MLPClassifier
from repro.gad.pipeline import TransferAttackPipeline, TransferOutcome, TransferRow
from repro.gad.refex import ReFeX, vertical_log_binning

__all__ = [
    "GAL",
    "GCNEncoder",
    "MLPClassifier",
    "ReFeX",
    "TransferAttackPipeline",
    "TransferOutcome",
    "TransferRow",
    "structural_features",
    "vertical_log_binning",
]

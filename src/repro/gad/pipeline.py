"""Transfer-attack methodology (Section VI-B) and its evaluation harness.

Four steps, exactly as the paper describes:

1. **Data pre-processing** — OddBall (unsupervised) scores the clean graph;
   the top fraction becomes the anomaly class; nodes are split into
   stratified train/test sets.
2. **Targets identification** — the victim GAD system (GAL or ReFeX + MLP)
   is trained on the clean graph; the *test* nodes it predicts anomalous
   become the attack targets.
3. **Graph poisoning** — BinarizedAttack (designed for OddBall, black-box
   w.r.t. the victim) poisons the clean graph for those targets.
4. **Evaluation** — the victim is retrained from the same initialisation on
   clean and poisoned graphs; we report global AUC/F1 on the test split,
   the targets' soft-label sum, and its decrease δ_B (Tables III/IV), plus
   penultimate MLP features for the embedding analysis (Figs. 8/9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack
from repro.gad.gal import GAL
from repro.gad.mlp import MLPClassifier
from repro.gad.refex import ReFeX
from repro.graph.graph import Graph
from repro.ml.metrics import f1_score, roc_auc_score
from repro.ml.preprocessing import train_test_split_indices
from repro.oddball.detector import OddBall
from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequenceFactory

__all__ = ["TransferAttackPipeline", "TransferOutcome", "TransferRow"]

_log = get_logger("gad.pipeline")


@dataclass(frozen=True)
class TransferRow:
    """One row of Table III / Table IV."""

    budget: int
    edges_changed_pct: float
    auc: float
    f1: float
    soft_label_sum: float
    delta_b_pct: float


@dataclass
class TransferOutcome:
    """Everything the transfer experiments need downstream."""

    system: str
    rows: list[TransferRow]
    targets: np.ndarray
    labels: np.ndarray
    train_index: np.ndarray
    test_index: np.ndarray
    attack_result: "AttackResult | None" = None
    penultimate_clean: "np.ndarray | None" = None
    penultimate_poisoned: "np.ndarray | None" = None
    metadata: dict = field(default_factory=dict)


class TransferAttackPipeline:
    """Black-box transfer attack from OddBall's poison to GAL / ReFeX.

    Parameters
    ----------
    system:
        ``"gal"`` or ``"refex"``.
    anomaly_fraction:
        Fraction of top-scored OddBall nodes labelled anomalous in step 1.
    test_fraction:
        Test split size (stratified).
    seed:
        Root seed; model initialisation is held fixed across budgets so that
        metric changes are attributable to the poison alone.
    gal_kwargs / refex_kwargs / mlp_kwargs:
        Forwarded to the respective constructors.
    """

    def __init__(
        self,
        system: str = "gal",
        anomaly_fraction: float = 0.1,
        test_fraction: float = 0.3,
        seed: int = 0,
        gal_kwargs: "dict | None" = None,
        refex_kwargs: "dict | None" = None,
        mlp_kwargs: "dict | None" = None,
    ):
        system = system.lower()
        if system not in ("gal", "refex"):
            raise ValueError(f"system must be 'gal' or 'refex', got {system!r}")
        self.system = system
        self.anomaly_fraction = anomaly_fraction
        self.test_fraction = test_fraction
        self.seeds = SeedSequenceFactory(seed)
        self.gal_kwargs = dict(gal_kwargs or {})
        self.refex_kwargs = dict(refex_kwargs or {})
        self.mlp_kwargs = dict(mlp_kwargs or {})

    # ------------------------------------------------------------------ #
    def prepare(self, adjacency: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Step 1: OddBall labels + stratified split → (labels, train, test)."""
        labels = OddBall().label_anomalies(adjacency, fraction=self.anomaly_fraction)
        train_index, test_index = train_test_split_indices(
            len(labels),
            test_fraction=self.test_fraction,
            rng=self.seeds.generator("split"),
            stratify=labels,
        )
        return labels, train_index, test_index

    def train_victim(
        self, adjacency: np.ndarray, labels: np.ndarray, train_index: np.ndarray
    ) -> tuple[np.ndarray, MLPClassifier]:
        """Train the victim system; returns (embeddings, classifier)."""
        if self.system == "gal":
            gal = GAL(rng=self.seeds.seed("gal-init"), **self.gal_kwargs)
            gal.fit(adjacency, labels, train_index)
            embeddings = gal.embeddings(adjacency)
        else:
            embeddings = ReFeX(**self.refex_kwargs).transform(adjacency)
        classifier = MLPClassifier(
            embeddings.shape[1], rng=self.seeds.seed("mlp-init"), **self.mlp_kwargs
        )
        classifier.fit(embeddings[train_index], labels[train_index])
        return embeddings, classifier

    def identify_targets(
        self,
        adjacency: np.ndarray,
        labels: np.ndarray,
        train_index: np.ndarray,
        test_index: np.ndarray,
        max_targets: "int | None" = None,
    ) -> np.ndarray:
        """Step 2: test nodes the clean victim predicts anomalous."""
        embeddings, classifier = self.train_victim(adjacency, labels, train_index)
        predicted = classifier.predict(embeddings[test_index])
        targets = test_index[predicted == 1]
        if max_targets is not None and len(targets) > max_targets:
            scores = classifier.predict_proba(embeddings[targets])
            targets = targets[np.argsort(-scores, kind="stable")[:max_targets]]
        return np.sort(targets)

    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: "Graph | np.ndarray",
        attack: StructuralAttack,
        budgets: Sequence[int],
        max_targets: "int | None" = 10,
        keep_embeddings: bool = True,
    ) -> TransferOutcome:
        """Full four-step pipeline over a family of budgets.

        ``budgets`` must be sorted ascending; budget 0 (the clean baseline)
        is always included.
        """
        adjacency = graph.adjacency if isinstance(graph, Graph) else np.asarray(
            graph, dtype=np.float64
        )
        budgets = sorted(set(int(b) for b in budgets) | {0})
        labels, train_index, test_index = self.prepare(adjacency)
        targets = self.identify_targets(
            adjacency, labels, train_index, test_index, max_targets=max_targets
        )
        if len(targets) == 0:
            raise RuntimeError(
                "the clean victim predicted no test node anomalous; "
                "increase anomaly_fraction or the graph's anomaly content"
            )
        _log.info("transfer attack on %s: %d targets", self.system, len(targets))

        attack_result = attack.attack(adjacency, targets.tolist(), max(budgets))
        n_edges = int(adjacency.sum()) // 2

        rows: list[TransferRow] = []
        baseline_soft_sum: "float | None" = None
        penultimate_clean: "np.ndarray | None" = None
        penultimate_poisoned: "np.ndarray | None" = None
        for budget in budgets:
            poisoned = attack_result.poisoned(budget)
            embeddings, classifier = self.train_victim(poisoned, labels, train_index)
            probabilities = classifier.predict_proba(embeddings[test_index])
            predictions = (probabilities >= 0.5).astype(np.int64)
            soft_sum = float(classifier.predict_proba(embeddings[targets]).sum())
            if baseline_soft_sum is None:
                baseline_soft_sum = soft_sum
            delta = (
                (baseline_soft_sum - soft_sum) / baseline_soft_sum * 100.0
                if baseline_soft_sum > 0
                else 0.0
            )
            rows.append(
                TransferRow(
                    budget=budget,
                    edges_changed_pct=len(attack_result.flips(budget)) / max(n_edges, 1) * 100.0,
                    auc=roc_auc_score(labels[test_index], probabilities),
                    f1=f1_score(labels[test_index], predictions),
                    soft_label_sum=soft_sum,
                    delta_b_pct=delta,
                )
            )
            if keep_embeddings and budget == 0:
                penultimate_clean = classifier.penultimate(embeddings)
            if keep_embeddings and budget == budgets[-1]:
                penultimate_poisoned = classifier.penultimate(embeddings)

        return TransferOutcome(
            system=self.system,
            rows=rows,
            targets=targets,
            labels=labels,
            train_index=train_index,
            test_index=test_index,
            attack_result=attack_result,
            penultimate_clean=penultimate_clean,
            penultimate_poisoned=penultimate_poisoned,
            metadata={"attack": attack.name, "budgets": budgets},
        )

"""MLP classification head used by both GAL and ReFeX (Section VI-A).

The representation-learning GAD systems share the same second stage: an MLP
that maps node embeddings to an anomaly probability ("soft label").  The
penultimate hidden activations are what Figs. 8/9 visualise with t-SNE.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.nn import Linear, Module, ReLU, Sequential
from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor, no_grad
from repro.utils.rng import as_generator

__all__ = ["MLPClassifier"]


class MLPClassifier(Module):
    """Binary MLP classifier with access to penultimate features.

    Parameters
    ----------
    n_features:
        Input embedding dimensionality.
    hidden:
        Sizes of the hidden layers (ReLU between them).
    class_weight:
        ``"balanced"`` re-weights the BCE loss inversely to class frequency
        (anomalies are a small minority), or ``None`` for uniform weights.
    """

    def __init__(
        self,
        n_features: int,
        hidden: tuple[int, ...] = (32, 16),
        lr: float = 0.01,
        epochs: int = 300,
        l2: float = 1e-4,
        class_weight: "str | None" = "balanced",
        rng=None,
    ):
        if not hidden:
            raise ValueError("MLP needs at least one hidden layer")
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        generator = as_generator(rng)
        layers: list[Module] = []
        previous = n_features
        for width in hidden:
            layers.append(Linear(previous, width, rng=generator))
            layers.append(ReLU())
            previous = width
        self.body = Sequential(*layers)
        self.head = Linear(previous, 1, rng=generator)
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.class_weight = class_weight
        self.loss_history_: list[float] = []

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.body(x)).reshape(-1)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        """Train on ``(features, labels)`` with Adam + (weighted) BCE."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be 2-D and aligned with labels")
        if not np.isin(labels, (0.0, 1.0)).all():
            raise ValueError("labels must be binary (0/1)")
        weights = self._sample_weights(labels)
        x = Tensor(features)
        y = Tensor(labels)
        w = Tensor(weights)
        optimizer = Adam(self.parameters(), lr=self.lr, weight_decay=self.l2)
        self.loss_history_ = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            logits = self.forward(x)
            per_sample = F.binary_cross_entropy_with_logits(logits, y, reduction="none")
            loss = (per_sample * w).sum() / float(len(labels))
            loss.backward()
            optimizer.step()
            self.loss_history_.append(float(loss.data))
        return self

    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(labels)
        n = len(labels)
        n_pos = max(labels.sum(), 1.0)
        n_neg = max(n - labels.sum(), 1.0)
        # inverse-frequency weights normalised to mean 1
        weights = np.where(labels == 1.0, n / (2.0 * n_pos), n / (2.0 * n_neg))
        return weights

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Soft labels P(anomalous | embedding)."""
        with no_grad():
            logits = self.forward(Tensor(np.asarray(features, dtype=np.float64)))
            return logits.sigmoid().data

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def penultimate(self, features: np.ndarray) -> np.ndarray:
        """Hidden activations feeding the output layer (Figs. 8/9 input)."""
        with no_grad():
            return self.body(Tensor(np.asarray(features, dtype=np.float64))).data

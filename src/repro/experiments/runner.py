"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner --experiment fig4 --scale ci
    python -m repro.experiments.runner --experiment fig4 --backend sparse
    python -m repro.experiments.runner --all --scale paper --output results/

Each driver returns a JSON-serialisable payload and a formatted text block;
the runner prints the text and optionally persists the payload.

``--backend {auto,dense,sparse}`` selects the surrogate engine for the
attack-driven figures (fig4, fig5) and ``--candidates
{target_incident,two_hop,adaptive}`` optionally prunes their decision
variables.  At large n use both: the sparse engine removes the O(n³)
forward pass and the candidate strategy removes the O(n²) pair arrays —
e.g.::

    python -m repro.experiments.runner -e fig4 --backend sparse \
        --candidates target_incident

``--kernels {auto,numpy,compiled}`` sets the process-wide default for the
hot-loop kernel backend (:mod:`repro.kernels`); flip sets are bit-identical
either way, ``compiled`` is purely a wall-clock lever.

``--campaign-checkpoint DIR`` makes the campaign-driven sweeps (fig4)
persist per-panel job checkpoints under DIR, so an interrupted sweep
resumes from the last completed job::

    python -m repro.experiments.runner -e fig4 --scale paper \
        --campaign-checkpoint results/checkpoints/

``--workers N`` shards the campaign-driven sweeps (fig4, table1) across N
worker processes — one surrogate engine per worker, results bit-identical
to the serial run, and checkpoints that resume across *different* worker
counts::

    python -m repro.experiments.runner -e fig4 --scale paper \
        --backend sparse --workers 4

``--scheduler`` (with ``--workers N``) drains those sweeps through the
work-stealing scheduler (:mod:`repro.attacks.scheduler`) instead of static
round-robin shards: identical results, better wall-clock on cost-skewed
grids, and a killed worker's jobs are requeued after ``--lease-ttl``
seconds instead of failing the sweep.

``--telemetry DIR`` turns on :mod:`repro.telemetry` process-wide: the
campaigns, executors, scheduler and kernels the drivers touch write a
structured trace (spans, scheduler events, kernel counters) under DIR —
inspect it afterwards with ``python -m repro.telemetry report DIR``.
Results are bit-identical with or without it.

Drivers that do not run attacks ignore these flags.
"""

from __future__ import annotations

import argparse
import inspect
from pathlib import Path
from typing import Callable

from repro.experiments import (
    fig4_effectiveness,
    fig5_case_study,
    fig6_preferences,
    fig7_distributions,
    fig8_9_embeddings,
    fig10_defense,
    table1_datasets,
    table2_side_effects,
    table3_gal,
    table4_refex,
)
from repro.experiments.config import CI, PAPER, SMOKE, Scale
from repro.utils.serialization import save_json

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

EXPERIMENTS: dict[str, tuple[Callable, Callable]] = {
    "table1": (table1_datasets.run, table1_datasets.format_results),
    "fig4": (fig4_effectiveness.run, fig4_effectiveness.format_results),
    "fig5": (fig5_case_study.run, fig5_case_study.format_results),
    "fig6": (fig6_preferences.run, fig6_preferences.format_results),
    "table2": (table2_side_effects.run, table2_side_effects.format_results),
    "fig7": (fig7_distributions.run, fig7_distributions.format_results),
    "table3": (table3_gal.run, table3_gal.format_results),
    "table4": (table4_refex.run, table4_refex.format_results),
    "fig8_9": (fig8_9_embeddings.run, fig8_9_embeddings.format_results),
    "fig10": (fig10_defense.run, fig10_defense.format_results),
}

_SCALES = {"paper": PAPER, "ci": CI, "smoke": SMOKE}


def run_experiment(
    name: str,
    scale: Scale = CI,
    seed: int = 7,
    output_dir: "Path | None" = None,
    backend: str = "auto",
    candidates: "str | None" = None,
    block_size: "int | None" = None,
    block_seed: int = 0,
    campaign_checkpoint: "Path | None" = None,
    workers: int = 1,
    store_datasets: bool = False,
    store_cache: "Path | None" = None,
    scheduler: bool = False,
    lease_ttl: "float | None" = None,
) -> tuple[dict, str]:
    """Run one experiment; returns (payload, formatted text).

    ``backend``, ``candidates``, ``campaign_checkpoint``, ``workers``,
    ``scheduler``/``lease_ttl`` and the store flags are forwarded to
    drivers that accept them (the attack-driven figures;
    ``store_datasets`` currently extends table1 with memory-mapped
    paper-scale rows); the rest run unchanged.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    run_fn, format_fn = EXPERIMENTS[name]
    parameters = inspect.signature(run_fn).parameters
    kwargs = {}
    if "backend" in parameters:
        kwargs["backend"] = backend
    if "candidates" in parameters:
        kwargs["candidates"] = candidates
    if "block_size" in parameters and candidates == "block":
        kwargs["block_size"] = block_size
        kwargs["block_seed"] = block_seed
    if "campaign_checkpoint" in parameters and campaign_checkpoint is not None:
        kwargs["campaign_checkpoint"] = campaign_checkpoint
    if "workers" in parameters and workers != 1:
        kwargs["workers"] = workers
    if "scheduler" in parameters and scheduler:
        kwargs["scheduler"] = scheduler
        kwargs["lease_ttl"] = lease_ttl
    if "store_datasets" in parameters and store_datasets:
        kwargs["store_datasets"] = store_datasets
        kwargs["store_cache"] = store_cache
    payload = run_fn(scale=scale, seed=seed, **kwargs)
    text = format_fn(payload)
    if output_dir is not None:
        save_json(Path(output_dir) / f"{name}_{scale.name}.json", payload)
        (Path(output_dir) / f"{name}_{scale.name}.txt").write_text(text + "\n")
    return payload, text


def _list_experiments() -> str:
    """One line per experiment: name, whether it takes --backend, summary."""
    lines = []
    for name in sorted(EXPERIMENTS):
        run_fn, _ = EXPERIMENTS[name]
        doc = (inspect.getdoc(inspect.getmodule(run_fn)) or "").splitlines()
        summary = doc[0].strip() if doc else ""
        backend_aware = "backend" in inspect.signature(run_fn).parameters
        flag = " [--backend]" if backend_aware else ""
        lines.append(f"{name:<8}{flag:<12} {summary}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS), default=None)
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="ci")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backend", choices=["auto", "dense", "sparse"], default="auto",
                        help="surrogate engine for the attack-driven figures")
    parser.add_argument("--kernels", choices=["auto", "numpy", "compiled"],
                        default=None,
                        help="hot-loop kernel backend (repro.kernels); sets "
                             "the process-wide default, so every engine the "
                             "drivers build picks it up")
    parser.add_argument("--candidates",
                        choices=["full", "target_incident", "two_hop",
                                 "adaptive", "adaptive_gradient", "block"],
                        default=None,
                        help="candidate-pair strategy for the attack-driven "
                             "figures (default: legacy full-pair variables); "
                             "'block' is the PRBCD random block with "
                             "gradient resampling, O(block-size) memory "
                             "regardless of n")
    parser.add_argument("--block-size", type=int, default=None,
                        help="size cap of the 'block' candidate strategy "
                             "(default: budget-scaled via "
                             "repro.attacks.candidates.default_block_size)")
    parser.add_argument("--block-seed", type=int, default=0,
                        help="sampling seed of the 'block' strategy; part "
                             "of each job's content hash, so reruns and "
                             "checkpoint resumes reproduce the same blocks")
    parser.add_argument("--campaign-checkpoint", type=Path, default=None,
                        help="directory for resumable per-panel campaign "
                             "checkpoints (campaign-driven sweeps only)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the campaign-driven sweeps "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--scheduler", action="store_true",
                        help="drain campaign jobs through the work-stealing "
                             "scheduler instead of static round-robin shards "
                             "(needs --workers > 1; results are identical, "
                             "cost-skewed grids finish sooner and a killed "
                             "worker's jobs are requeued)")
    parser.add_argument("--lease-ttl", type=float, default=None,
                        help="scheduler lease time-to-live in seconds "
                             "(default: $REPRO_LEASE_TTL or 30; bounds how "
                             "long a dead worker's jobs wait before requeue)")
    parser.add_argument("--store-datasets", action="store_true",
                        help="include the memory-mapped paper-scale *-full "
                             "datasets (table1; builds/reuses graph stores)")
    parser.add_argument("--store-cache", type=Path, default=None,
                        help="graph-store cache directory (default: "
                             "$REPRO_STORE_CACHE or ./.repro-store-cache)")
    parser.add_argument("--telemetry", type=Path, default=None, metavar="DIR",
                        help="write a structured trace (repro.telemetry "
                             "spans/events/counters) under DIR; inspect "
                             "afterwards with `python -m repro.telemetry "
                             "report DIR` (default: $REPRO_TELEMETRY or "
                             "off; results are bit-identical either way)")
    parser.add_argument("--output", type=Path, default=None, help="directory for JSON/text dumps")
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    if args.kernels is not None:
        from repro.kernels import set_default_kernels

        # Process-wide default: drivers build engines many layers down, so
        # one switch here beats threading the flag through every driver
        # signature (workers inherit it through the EngineSpec they get).
        set_default_kernels(args.kernels)
    if args.telemetry is not None:
        from repro import telemetry

        # Same process-wide pattern as --kernels: the drivers' campaigns,
        # executors and engines pick the active tracer up wherever they
        # run, and executor children get their own sink via worker specs.
        telemetry.configure(args.telemetry)
    names = sorted(EXPERIMENTS) if args.all else [args.experiment]
    if names == [None]:
        parser.error("provide --experiment NAME, --all or --list")
    from repro import telemetry

    for name in names:
        # One span per experiment even when the driver itself emits
        # nothing (dense path, no campaign), so a --telemetry run always
        # produces a trace to report on.
        with telemetry.span("runner.experiment", experiment=name,
                            scale=args.scale):
            _, text = run_experiment(
                name,
                scale=_SCALES[args.scale],
                seed=args.seed,
                output_dir=args.output,
                backend=args.backend,
                candidates=args.candidates,
                block_size=args.block_size,
                block_seed=args.block_seed,
                campaign_checkpoint=args.campaign_checkpoint,
                workers=args.workers,
                store_datasets=args.store_datasets,
                store_cache=args.store_cache,
                scheduler=args.scheduler,
                lease_ttl=args.lease_ttl,
            )
        print(text)
        print()
    if args.telemetry is not None:
        from repro import telemetry

        telemetry.shutdown()
        print(
            f"telemetry trace: {args.telemetry} (inspect with "
            f"`python -m repro.telemetry report {args.telemetry}`)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

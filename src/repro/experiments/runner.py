"""Experiment runner: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.experiments.runner --experiment fig4 --scale ci
    python -m repro.experiments.runner --all --scale paper --output results/

Each driver returns a JSON-serialisable payload and a formatted text block;
the runner prints the text and optionally persists the payload.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable

from repro.experiments import (
    fig4_effectiveness,
    fig5_case_study,
    fig6_preferences,
    fig7_distributions,
    fig8_9_embeddings,
    fig10_defense,
    table1_datasets,
    table2_side_effects,
    table3_gal,
    table4_refex,
)
from repro.experiments.config import CI, PAPER, SMOKE, Scale
from repro.utils.serialization import save_json

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

EXPERIMENTS: dict[str, tuple[Callable, Callable]] = {
    "table1": (table1_datasets.run, table1_datasets.format_results),
    "fig4": (fig4_effectiveness.run, fig4_effectiveness.format_results),
    "fig5": (fig5_case_study.run, fig5_case_study.format_results),
    "fig6": (fig6_preferences.run, fig6_preferences.format_results),
    "table2": (table2_side_effects.run, table2_side_effects.format_results),
    "fig7": (fig7_distributions.run, fig7_distributions.format_results),
    "table3": (table3_gal.run, table3_gal.format_results),
    "table4": (table4_refex.run, table4_refex.format_results),
    "fig8_9": (fig8_9_embeddings.run, fig8_9_embeddings.format_results),
    "fig10": (fig10_defense.run, fig10_defense.format_results),
}

_SCALES = {"paper": PAPER, "ci": CI, "smoke": SMOKE}


def run_experiment(
    name: str, scale: Scale = CI, seed: int = 7, output_dir: "Path | None" = None
) -> tuple[dict, str]:
    """Run one experiment; returns (payload, formatted text)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    run_fn, format_fn = EXPERIMENTS[name]
    payload = run_fn(scale=scale, seed=seed)
    text = format_fn(payload)
    if output_dir is not None:
        save_json(Path(output_dir) / f"{name}_{scale.name}.json", payload)
        (Path(output_dir) / f"{name}_{scale.name}.txt").write_text(text + "\n")
    return payload, text


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS), default=None)
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="ci")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=None, help="directory for JSON/text dumps")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.all else [args.experiment]
    if names == [None]:
        parser.error("provide --experiment NAME or --all")
    for name in names:
        _, text = run_experiment(
            name, scale=_SCALES[args.scale], seed=args.seed, output_dir=args.output
        )
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

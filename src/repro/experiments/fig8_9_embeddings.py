"""Figs. 8 & 9 — t-SNE of penultimate MLP features, clean vs poisoned.

The paper shows scatter plots where, before the attack, anomalous targets sit
on one side of a linear decision boundary, and after the attack they mix into
the benign cloud.  We reproduce the underlying data: the 2-D t-SNE
coordinates plus a quantitative proxy for "the boundary broke" — the accuracy
and AUC of a logistic-regression probe separating targets from the rest of
the test nodes in the penultimate feature space.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.gad.pipeline import TransferAttackPipeline
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy, roc_auc_score
from repro.ml.preprocessing import StandardScaler
from repro.ml.tsne import TSNE
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

#: (system, dataset, paper max budget) panels of Figs. 8 and 9.
PANELS = (
    ("gal", "bitcoin-alpha", 50),
    ("gal", "wikivote", 100),
    ("refex", "bitcoin-alpha", 50),
    ("refex", "wikivote", 100),
)


def _probe(features: np.ndarray, labels: np.ndarray, seed: int) -> dict[str, float]:
    """Linear separability of ``labels`` in ``features`` (probe accuracy/AUC)."""
    if labels.sum() < 2 or labels.sum() > len(labels) - 2:
        return {"accuracy": float("nan"), "auc": float("nan")}
    scaled = StandardScaler().fit_transform(features)
    model = LogisticRegression(scaled.shape[1], rng=seed, epochs=200).fit(scaled, labels)
    probabilities = model.predict_proba(scaled)
    return {
        "accuracy": accuracy(labels, (probabilities >= 0.5).astype(np.int64)),
        "auc": roc_auc_score(labels, probabilities),
    }


def run(scale: Scale = CI, seed: int = 7, panels=PANELS) -> dict:
    """t-SNE coordinates + separability probes for each panel."""
    seeds = SeedSequenceFactory(seed)
    results = []
    for system, dataset_name, paper_budget in panels:
        dataset = load_experiment_graph(dataset_name, scale, seeds)
        budget = max(scale.scaled(paper_budget), 4)
        pipeline = TransferAttackPipeline(
            system=system,
            seed=seeds.seed(f"fig89-{system}-{dataset_name}"),
            gal_kwargs={"epochs": scale.gal_epochs} if system == "gal" else None,
            mlp_kwargs={"epochs": scale.mlp_epochs},
        )
        attack = BinarizedAttack(iterations=scale.attack_iterations)
        outcome = pipeline.run(
            dataset.graph, attack, [0, budget], max_targets=10, keep_embeddings=True
        )
        test_index = outcome.test_index
        target_mask = np.isin(test_index, outcome.targets).astype(np.int64)

        panel = {
            "system": system,
            "dataset": dataset_name,
            "budget": budget,
            "n_test": len(test_index),
            "n_targets": int(target_mask.sum()),
        }
        for phase, features in (
            ("clean", outcome.penultimate_clean),
            ("poisoned", outcome.penultimate_poisoned),
        ):
            assert features is not None
            test_features = features[test_index]
            tsne = TSNE(
                n_iter=scale.tsne_iterations,
                rng=seeds.seed(f"tsne-{system}-{dataset_name}-{phase}"),
            )
            coordinates = tsne.fit_transform(test_features)
            panel[f"{phase}_coordinates"] = coordinates.tolist()
            # The paper's claim is about the *2-D* decision boundary, so the
            # headline probe separates targets from the rest in t-SNE space;
            # the raw penultimate-space probe is kept as a secondary check.
            panel[f"{phase}_probe"] = _probe(
                coordinates, target_mask, seeds.seed(f"probe2d-{system}-{dataset_name}-{phase}")
            )
            panel[f"{phase}_probe_raw"] = _probe(
                test_features, target_mask, seeds.seed(f"probe-{system}-{dataset_name}-{phase}")
            )
            panel[f"{phase}_kl"] = tsne.kl_divergence_
        results.append(panel)
    return {"scale": scale.name, "seed": seed, "panels": results}


def format_results(payload: dict) -> str:
    rows = []
    for panel in payload["panels"]:
        rows.append(
            [
                f"{panel['system']}/{panel['dataset']}",
                panel["budget"],
                panel["n_targets"],
                panel["clean_probe"]["auc"],
                panel["poisoned_probe"]["auc"],
                panel["clean_probe"]["accuracy"],
                panel["poisoned_probe"]["accuracy"],
            ]
        )
    return format_table(
        ["panel", "B", "targets", "probe-AUC-clean", "probe-AUC-poisoned",
         "probe-acc-clean", "probe-acc-poisoned"],
        rows,
        title=(
            "Figs 8/9 — separability of targets in penultimate feature space "
            f"(t-SNE coordinates stored in payload, scale={payload['scale']})"
        ),
    )

"""Table III — transfer attack against GAL (AUC / F1 / δ_B vs attack power).

For Bitcoin-Alpha and Wikivote, BinarizedAttack's poison (generated against
OddBall, black-box w.r.t. GAL) is evaluated at 0–2% edges changed.  Paper
shape: AUC/F1 degrade mildly (0.72→0.65 AUC on Bitcoin-Alpha) while the
targets' soft-label sum drops by ~20–28%.
"""

from __future__ import annotations

from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.gad.pipeline import TransferAttackPipeline
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

DATASETS = ("bitcoin-alpha", "wikivote")
#: Paper grid: 0% to 2% in 0.2% steps (we thin it at smaller scales).
PAPER_EDGE_FRACTIONS = tuple(round(0.002 * k, 4) for k in range(11))


def run(
    scale: Scale = CI,
    seed: int = 7,
    datasets=DATASETS,
    edge_fractions: "tuple[float, ...] | None" = None,
    max_targets: int = 10,
) -> dict:
    """Run the GAL transfer pipeline on each dataset over the budget grid."""
    seeds = SeedSequenceFactory(seed)
    if edge_fractions is None:
        edge_fractions = (
            PAPER_EDGE_FRACTIONS if scale.graph_scale >= 0.9 else (0.0, 0.005, 0.01, 0.015, 0.02)
        )
    results = {}
    for name in datasets:
        dataset = load_experiment_graph(name, scale, seeds)
        n_edges = dataset.graph.number_of_edges
        budgets = sorted({int(round(f * n_edges)) for f in edge_fractions})
        pipeline = TransferAttackPipeline(
            system="gal",
            seed=seeds.seed(f"gal-{name}"),
            gal_kwargs={"epochs": scale.gal_epochs},
            mlp_kwargs={"epochs": scale.mlp_epochs},
        )
        attack = BinarizedAttack(iterations=scale.attack_iterations)
        outcome = pipeline.run(dataset.graph, attack, budgets, max_targets=max_targets)
        results[name] = {
            "n_edges": n_edges,
            "n_targets": len(outcome.targets),
            "rows": [vars(r) for r in outcome.rows],
        }
    return {"scale": scale.name, "seed": seed, "system": "gal", "datasets": results}


def format_results(payload: dict) -> str:
    blocks = []
    for name, data in payload["datasets"].items():
        rows = [
            [f"{r['edges_changed_pct']:.2f}%", r["auc"], r["f1"], f"{r['delta_b_pct']:.2f}"]
            for r in data["rows"]
        ]
        blocks.append(
            format_table(
                ["edges-changed", "AUC", "F1", "deltaB(%)"],
                rows,
                title=(
                    f"Table III [{name}] — GAL under transfer attack "
                    f"({data['n_targets']} targets, scale={payload['scale']})"
                ),
            )
        )
    return "\n\n".join(blocks)

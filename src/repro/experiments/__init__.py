"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes ``run(scale, seed) -> payload`` and
``format_results(payload) -> str``; :mod:`repro.experiments.runner` wires
them into a CLI, and the :mod:`benchmarks` suite calls them through
pytest-benchmark.
"""

from repro.experiments import (
    fig4_effectiveness,
    fig5_case_study,
    fig6_preferences,
    fig7_distributions,
    fig8_9_embeddings,
    fig10_defense,
    table1_datasets,
    table2_side_effects,
    table3_gal,
    table4_refex,
)
from repro.experiments.config import CI, PAPER, SMOKE, Scale

__all__ = [
    "CI",
    "PAPER",
    "SMOKE",
    "Scale",
    "fig10_defense",
    "fig4_effectiveness",
    "fig5_case_study",
    "fig6_preferences",
    "fig7_distributions",
    "fig8_9_embeddings",
    "table1_datasets",
    "table2_side_effects",
    "table3_gal",
    "table4_refex",
]

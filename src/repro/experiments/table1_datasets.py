"""Table I — statistics of the five evaluation graphs.

Extended beyond the paper's raw counts with a campaign-driven
*attackability* column: for every dataset one
:class:`~repro.attacks.campaign.AttackCampaign` sweeps GradMaxSearch over
the top-scoring OddBall targets (one job per target, shared engine) and the
table reports the mean τ_as and mean rank burial at the smallest Fig. 4
budget — a one-line summary of how hideable each graph's anomalies are.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.campaign import grid_jobs
from repro.attacks.executor import build_campaign
from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.graph.datasets import DATASET_NAMES, dataset_statistics
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

#: The paper's Table I (nodes, edges) for reference in the printed output.
PAPER_TABLE_I = {
    "er": (1000, 9948),
    "ba": (1000, 4975),
    "blogcatalog": (1000, 6190),
    "wikivote": (1012, 4860),
    "bitcoin-alpha": (1025, 2311),
}

#: Targets per dataset in the attackability sweep (top AScore nodes).
ATTACK_TARGETS = 3


def run(scale: Scale = CI, seed: int = 7, workers: int = 1) -> dict:
    """Generate all five graphs; collect statistics + attackability.

    ``workers > 1`` runs each dataset's attackability sweep through the
    parallel campaign executor (bit-identical outcomes, sharded across
    worker processes).
    """
    seeds = SeedSequenceFactory(seed)
    detector = OddBall()
    rows = []
    for name in DATASET_NAMES:
        dataset = load_experiment_graph(name, scale, seeds)
        stats = dataset_statistics(dataset)
        paper_nodes, paper_edges = PAPER_TABLE_I[name]
        stats["paper_nodes"] = round(paper_nodes * scale.graph_scale)
        stats["paper_edges"] = round(paper_edges * scale.graph_scale)

        # Attackability: one campaign, one job per top-scoring target.
        graph = dataset.graph
        budget = scale.budgets_for(graph.number_of_edges)[0]
        targets = detector.analyze(graph).top_k(ATTACK_TARGETS).tolist()
        campaign = build_campaign(graph, workers=workers)
        sweep = campaign.run(
            grid_jobs(
                "gradmaxsearch",
                [[t] for t in targets],
                budgets=[budget],
                candidates="target_incident",
            )
        )
        shifts = [
            shift for outcome in sweep for shift in outcome.rank_shifts.values()
        ]
        stats["attack_budget"] = budget
        stats["attack_tau"] = float(
            np.mean([outcome.score_decrease for outcome in sweep])
        )
        stats["attack_rank_shift"] = float(np.mean(shifts)) if shifts else 0.0
        rows.append(stats)
    return {"scale": scale.name, "seed": seed, "rows": rows}


def format_results(payload: dict) -> str:
    """Printable Table I reproduction (+ attackability summary)."""
    rows = [
        [
            r["name"],
            r["nodes"],
            r["edges"],
            r["paper_nodes"],
            r["paper_edges"],
            r["mean_degree"],
            r["max_degree"],
            "yes" if r["connected"] else "no",
            f"{r['attack_tau']:.3f}@{r['attack_budget']}",
            r["attack_rank_shift"],
        ]
        for r in payload["rows"]
    ]
    return format_table(
        ["dataset", "nodes", "edges", "paper-nodes(scaled)", "paper-edges(scaled)",
         "mean-deg", "max-deg", "connected", "tau@b", "rank-shift"],
        rows,
        title=f"Table I — dataset statistics (scale={payload['scale']})",
    )

"""Table I — statistics of the five evaluation graphs.

Extended beyond the paper's raw counts with a campaign-driven
*attackability* column: for every dataset one
:class:`~repro.attacks.campaign.AttackCampaign` sweeps GradMaxSearch over
the top-scoring OddBall targets (one job per target, shared engine) and the
table reports the mean τ_as and mean rank burial at the smallest Fig. 4
budget — a one-line summary of how hideable each graph's anomalies are.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.campaign import grid_jobs
from repro.attacks.executor import build_campaign
from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.graph.datasets import DATASET_NAMES, dataset_statistics
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

#: The paper's Table I (nodes, edges) for reference in the printed output.
PAPER_TABLE_I = {
    "er": (1000, 9948),
    "ba": (1000, 4975),
    "blogcatalog": (1000, 6190),
    "wikivote": (1012, 4860),
    "bitcoin-alpha": (1025, 2311),
}

#: Targets per dataset in the attackability sweep (top AScore nodes).
ATTACK_TARGETS = 3

#: Fixed attack budget for the store-backed (paper-scale) rows: the
#: fraction-of-edges budgets the sampled graphs use would mean tens of
#: thousands of flips per job at 2.1M edges — the store rows instead probe
#: the paper's budget-5 GradMaxSearch setting.
STORE_ATTACK_BUDGET = 5


def run(
    scale: Scale = CI,
    seed: int = 7,
    workers: int = 1,
    store_datasets: "Sequence[str] | bool" = False,
    store_cache=None,
    scheduler: bool = False,
    lease_ttl: "float | None" = None,
) -> dict:
    """Generate all five graphs; collect statistics + attackability.

    ``workers > 1`` runs each dataset's attackability sweep through the
    parallel campaign executor (bit-identical outcomes, sharded across
    worker processes).  ``store_datasets`` appends paper-scale rows backed
    by memory-mapped graph stores: ``True`` for every ``*-full`` name, or
    an explicit name list (``["blogcatalog-full"]`` is the one the paper
    attacks at 88.8k nodes).  Store rows run their attackability sweep
    through ``store``-kind engine specs — workers mmap the graph instead
    of receiving an array payload.  ``scheduler=True`` drains the sweeps
    through the work-stealing scheduler instead of static shards (same
    outcomes; crash-requeue and better balance on skewed grids).
    """
    seeds = SeedSequenceFactory(seed)
    detector = OddBall()
    rows = []
    for name in DATASET_NAMES:
        dataset = load_experiment_graph(name, scale, seeds)
        stats = dataset_statistics(dataset)
        paper_nodes, paper_edges = PAPER_TABLE_I[name]
        stats["paper_nodes"] = round(paper_nodes * scale.graph_scale)
        stats["paper_edges"] = round(paper_edges * scale.graph_scale)

        # Attackability: one campaign, one job per top-scoring target.
        graph = dataset.graph
        budget = scale.budgets_for(graph.number_of_edges)[0]
        targets = detector.analyze(graph).top_k(ATTACK_TARGETS).tolist()
        rows.append(
            _attackability(stats, graph, targets, budget, workers,
                           scheduler, lease_ttl)
        )

    if store_datasets:
        from repro.store import STORE_DATASET_NAMES

        names = (
            STORE_DATASET_NAMES if store_datasets is True else store_datasets
        )
        for name in names:
            rows.append(
                _store_row(name, scale, seed, workers, store_cache,
                           scheduler, lease_ttl)
            )
    return {"scale": scale.name, "seed": seed, "rows": rows}


def _attackability(
    stats: dict, graph, targets: "list[int]", budget: int, workers: int,
    scheduler: bool = False, lease_ttl: "float | None" = None,
) -> dict:
    """Fill the attackability columns of one table row in place."""
    campaign = build_campaign(graph, workers=workers,
                              scheduler=scheduler, lease_ttl=lease_ttl)
    sweep = campaign.run(
        grid_jobs(
            "gradmaxsearch",
            [[t] for t in targets],
            budgets=[budget],
            candidates="target_incident",
        )
    )
    shifts = [
        shift for outcome in sweep for shift in outcome.rank_shifts.values()
    ]
    stats["attack_budget"] = budget
    stats["attack_tau"] = float(
        np.mean([outcome.score_decrease for outcome in sweep])
    )
    stats["attack_rank_shift"] = float(np.mean(shifts)) if shifts else 0.0
    return stats


def _store_row(
    name: str, scale: Scale, seed: int, workers: int, store_cache,
    scheduler: bool = False, lease_ttl: "float | None" = None,
) -> dict:
    """One paper-scale row: store-backed stats + a budget-5 sweep."""
    from repro.graph.datasets import load_dataset

    dataset = load_dataset(name, rng=seed, scale=scale.graph_scale,
                           cache_dir=store_cache)
    stats = dataset_statistics(dataset)
    store = dataset.graph
    stats["paper_nodes"] = store.recipe["nodes"]
    stats["paper_edges"] = store.recipe["edges"]
    targets = store.top_targets(ATTACK_TARGETS)
    return _attackability(stats, store, targets, STORE_ATTACK_BUDGET,
                          workers, scheduler, lease_ttl)


def format_results(payload: dict) -> str:
    """Printable Table I reproduction (+ attackability summary)."""
    rows = [
        [
            r["name"],
            r["nodes"],
            r["edges"],
            r["paper_nodes"],
            r["paper_edges"],
            r["mean_degree"],
            r["max_degree"],
            "yes" if r["connected"] else "no",
            f"{r['attack_tau']:.3f}@{r['attack_budget']}",
            r["attack_rank_shift"],
        ]
        for r in payload["rows"]
    ]
    return format_table(
        ["dataset", "nodes", "edges", "paper-nodes(scaled)", "paper-edges(scaled)",
         "mean-deg", "max-deg", "connected", "tau@b", "rank-shift"],
        rows,
        title=f"Table I — dataset statistics (scale={payload['scale']})",
    )

"""Table I — statistics of the five evaluation graphs."""

from __future__ import annotations

from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.graph.datasets import DATASET_NAMES, dataset_statistics
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

#: The paper's Table I (nodes, edges) for reference in the printed output.
PAPER_TABLE_I = {
    "er": (1000, 9948),
    "ba": (1000, 4975),
    "blogcatalog": (1000, 6190),
    "wikivote": (1012, 4860),
    "bitcoin-alpha": (1025, 2311),
}


def run(scale: Scale = CI, seed: int = 7) -> dict:
    """Generate all five graphs and collect their statistics."""
    seeds = SeedSequenceFactory(seed)
    rows = []
    for name in DATASET_NAMES:
        dataset = load_experiment_graph(name, scale, seeds)
        stats = dataset_statistics(dataset)
        paper_nodes, paper_edges = PAPER_TABLE_I[name]
        stats["paper_nodes"] = round(paper_nodes * scale.graph_scale)
        stats["paper_edges"] = round(paper_edges * scale.graph_scale)
        rows.append(stats)
    return {"scale": scale.name, "seed": seed, "rows": rows}


def format_results(payload: dict) -> str:
    """Printable Table I reproduction."""
    rows = [
        [
            r["name"],
            r["nodes"],
            r["edges"],
            r["paper_nodes"],
            r["paper_edges"],
            r["mean_degree"],
            r["max_degree"],
            "yes" if r["connected"] else "no",
        ]
        for r in payload["rows"]
    ]
    return format_table(
        ["dataset", "nodes", "edges", "paper-nodes(scaled)", "paper-edges(scaled)",
         "mean-deg", "max-deg", "connected"],
        rows,
        title=f"Table I — dataset statistics (scale={payload['scale']})",
    )

"""Fig. 4 — attack effectiveness: τ_as vs. edges-changed % for the three
attack methods on all five datasets.

Protocol (Section VIII-A/B): targets are sampled from the top-50 AScore
nodes (|T| = 10 for the synthetic graphs and both 10 and 30 for the real
ones), 5 samplings are averaged, and each attack is swept over a budget grid
expressed as a fraction of the clean edge count.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    attack_suite,
    format_table,
    load_experiment_graph,
    sample_targets,
    tau_for_budgets,
)
from repro.experiments.config import CI, Scale
from repro.oddball.detector import OddBall
from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

_log = get_logger("experiments.fig4")

#: (dataset, paper target count) pairs — one per Fig. 4 panel.
PANELS = (
    ("er", 10),
    ("ba", 10),
    ("blogcatalog", 10),
    ("blogcatalog", 30),
    ("bitcoin-alpha", 10),
    ("bitcoin-alpha", 30),
    ("wikivote", 10),
    ("wikivote", 30),
)


def run(
    scale: Scale = CI,
    seed: int = 7,
    panels=PANELS,
    backend: str = "auto",
    candidates: "str | None" = None,
) -> dict:
    """Sweep every panel; returns per-panel series (mean over repeats).

    ``backend`` picks the surrogate engine for every attack (see
    :func:`repro.experiments.common.attack_suite`) and ``candidates`` an
    optional candidate-pair strategy (``"target_incident"``/``"two_hop"``;
    ``None`` keeps the exact legacy full-pair decision variables).  At
    large n both matter: the sparse engine removes the O(n³) forward, and a
    pruned candidate set removes the O(n²) decision-variable arrays — the
    combination is what lets the sweep run at scales the dense pipeline
    cannot hold in memory.
    """
    seeds = SeedSequenceFactory(seed)
    detector = OddBall()
    results = []
    for dataset_name, paper_targets in panels:
        dataset = load_experiment_graph(dataset_name, scale, seeds)
        graph = dataset.graph
        adjacency = graph.adjacency
        n_edges = graph.number_of_edges
        budgets = scale.budgets_for(n_edges)
        n_targets = max(scale.scaled(paper_targets), 3)
        report = detector.analyze(graph)

        per_method: dict[str, list[list[float]]] = {
            name: [] for name in attack_suite(scale, backend)
        }
        for repeat in range(scale.n_repeats):
            rng = seeds.generator(f"targets-{dataset_name}-{paper_targets}-{repeat}")
            targets = sample_targets(report, n_targets, rng)
            for method_name, attack in attack_suite(scale, backend).items():
                result = attack.attack(
                    graph, targets, budgets[-1], candidates=candidates
                )
                taus = tau_for_budgets(adjacency, result, targets, budgets)
                per_method[method_name].append(taus)
                _log.info(
                    "%s |T|=%d rep=%d %s tau@max=%.3f",
                    dataset_name, n_targets, repeat, method_name, taus[-1],
                )
        results.append(
            {
                "panel": f"{dataset_name}-{paper_targets}",
                "dataset": dataset_name,
                "paper_target_count": paper_targets,
                "target_count": n_targets,
                "n_edges": n_edges,
                "budgets": budgets,
                "edges_changed_pct": [100.0 * b / n_edges for b in budgets],
                "tau_mean": {
                    name: np.mean(np.array(rows), axis=0).tolist()
                    for name, rows in per_method.items()
                },
                "tau_std": {
                    name: np.std(np.array(rows), axis=0).tolist()
                    for name, rows in per_method.items()
                },
            }
        )
    return {
        "scale": scale.name,
        "seed": seed,
        "backend": backend,
        "candidates": candidates,
        "panels": results,
    }


def format_results(payload: dict) -> str:
    """One text block per Fig. 4 panel: the plotted series as numbers."""
    blocks = []
    for panel in payload["panels"]:
        rows = []
        for i, pct in enumerate(panel["edges_changed_pct"]):
            rows.append(
                [
                    f"{pct:.2f}%",
                    panel["tau_mean"]["gradmaxsearch"][i],
                    panel["tau_mean"]["continuousa"][i],
                    panel["tau_mean"]["binarizedattack"][i],
                ]
            )
        blocks.append(
            format_table(
                ["edges-changed", "gradmaxsearch", "continuousa", "binarizedattack"],
                rows,
                title=(
                    f"Fig 4 [{panel['panel']}] τ_as (|T|={panel['target_count']}, "
                    f"mean of repeats, scale={payload['scale']})"
                ),
            )
        )
    return "\n\n".join(blocks)

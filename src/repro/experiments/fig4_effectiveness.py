"""Fig. 4 — attack effectiveness: τ_as vs. edges-changed % for the three
attack methods on all five datasets.

Protocol (Section VIII-A/B): targets are sampled from the top-50 AScore
nodes (|T| = 10 for the synthetic graphs and both 10 and 30 for the real
ones), 5 samplings are averaged, and each attack is swept over a budget grid
expressed as a fraction of the clean edge count.

The sweep itself — (repeat × method) jobs per panel — is executed through
:class:`~repro.attacks.campaign.AttackCampaign`: one shared surrogate
engine per dataset instead of one per attack call, duplicate target
samplings deduplicated, and (with ``campaign_checkpoint``) every panel
resumable mid-sweep.  Flip sets are identical to the pre-campaign
per-call driver (the campaign equivalence suite pins this down).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.attacks.campaign import AttackJob
from repro.attacks.executor import build_campaign
from repro.experiments.common import (
    attack_suite_params,
    format_table,
    load_experiment_graph,
    sample_targets,
    tau_for_budgets,
)
from repro.experiments.config import CI, Scale
from repro.oddball.detector import OddBall
from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

_log = get_logger("experiments.fig4")

#: (dataset, paper target count) pairs — one per Fig. 4 panel.
PANELS = (
    ("er", 10),
    ("ba", 10),
    ("blogcatalog", 10),
    ("blogcatalog", 30),
    ("bitcoin-alpha", 10),
    ("bitcoin-alpha", 30),
    ("wikivote", 10),
    ("wikivote", 30),
)


def run(
    scale: Scale = CI,
    seed: int = 7,
    panels=PANELS,
    backend: str = "auto",
    candidates: "str | None" = None,
    block_size: "int | None" = None,
    block_seed: int = 0,
    campaign_checkpoint: "Path | str | None" = None,
    workers: int = 1,
    scheduler: bool = False,
    lease_ttl: "float | None" = None,
) -> dict:
    """Sweep every panel; returns per-panel series (mean over repeats).

    ``backend`` picks the surrogate engine for every attack and
    ``candidates`` an optional candidate-pair strategy
    (``"target_incident"``/``"two_hop"``/``"adaptive"``/``"block"``;
    ``None`` keeps the exact legacy full-pair decision variables).  At
    large n both matter: the sparse engine removes the O(n³) forward, and
    a pruned candidate set removes the O(n²) decision-variable arrays —
    the combination is what lets the sweep run at scales the dense
    pipeline cannot hold in memory.  ``block_size``/``block_seed``
    parametrise the ``"block"`` strategy (they enter each job's content
    hash, keeping block sweeps checkpoint-resumable) and are ignored
    otherwise.

    ``campaign_checkpoint`` names a directory: each panel's campaign then
    persists completed jobs to ``fig4_<panel>.json`` there, and an
    interrupted sweep resumes from the last completed job.

    ``workers > 1`` drains each panel's job grid through a
    :class:`~repro.attacks.executor.ParallelCampaignExecutor` (one engine
    per worker process, sharded job queue) — results are bit-identical to
    the serial campaign, and checkpoints interoperate across worker
    counts.

    ``scheduler=True`` (with ``workers > 1``) swaps the static shards for
    the work-stealing :class:`~repro.attacks.scheduler.SchedulingCampaignExecutor`
    — same results, but the mixed-cost panel grids drain without idle
    workers and a killed worker's jobs requeue after ``lease_ttl`` seconds.
    """
    seeds = SeedSequenceFactory(seed)
    detector = OddBall()
    method_params = attack_suite_params(scale)
    block_params: dict[str, int] = {}
    if candidates == "block":
        if block_size is not None:
            block_params["block_size"] = int(block_size)
        if block_seed:
            block_params["block_seed"] = int(block_seed)
    results = []
    for dataset_name, paper_targets in panels:
        dataset = load_experiment_graph(dataset_name, scale, seeds)
        graph = dataset.graph
        adjacency = graph.adjacency
        n_edges = graph.number_of_edges
        budgets = scale.budgets_for(n_edges)
        n_targets = max(scale.scaled(paper_targets), 3)
        report = detector.analyze(graph)

        # Build the whole panel's job grid up front: (repeat × method) jobs
        # against ONE shared engine.  Identical samplings collapse to one
        # job (same content hash), so repeated target draws are free.
        panel_name = f"{dataset_name}-{paper_targets}"
        repeat_jobs: list[dict[str, AttackJob]] = []
        unique_jobs: dict[str, AttackJob] = {}
        for repeat in range(scale.n_repeats):
            rng = seeds.generator(f"targets-{dataset_name}-{paper_targets}-{repeat}")
            targets = sample_targets(report, n_targets, rng)
            methods = {}
            for method_name, params in method_params.items():
                job = AttackJob.make(
                    method_name, targets, budgets[-1],
                    candidates=candidates, **params, **block_params,
                )
                methods[method_name] = job
                unique_jobs.setdefault(job.job_id, job)
            repeat_jobs.append(methods)

        checkpoint_path = None
        if campaign_checkpoint is not None:
            checkpoint_path = Path(campaign_checkpoint) / f"fig4_{panel_name}.json"
        campaign = build_campaign(
            graph, backend=backend, checkpoint_path=checkpoint_path,
            compute_ranks=False, workers=workers,
            scheduler=scheduler, lease_ttl=lease_ttl,
        )
        sweep = campaign.run(unique_jobs.values())

        per_method: dict[str, list[list[float]]] = {
            name: [] for name in method_params
        }
        for repeat, methods in enumerate(repeat_jobs):
            for method_name, job in methods.items():
                outcome = sweep.outcome(job)
                result = outcome.attack_result(adjacency)
                taus = tau_for_budgets(adjacency, result, job.targets, budgets)
                per_method[method_name].append(taus)
                _log.info(
                    "%s |T|=%d rep=%d %s tau@max=%.3f",
                    dataset_name, n_targets, repeat, method_name, taus[-1],
                )
        results.append(
            {
                "panel": panel_name,
                "dataset": dataset_name,
                "paper_target_count": paper_targets,
                "target_count": n_targets,
                "n_edges": n_edges,
                "budgets": budgets,
                "edges_changed_pct": [100.0 * b / n_edges for b in budgets],
                "campaign_seconds": sweep.seconds,
                "campaign_jobs": len(sweep),
                "campaign_resumed_jobs": sweep.resumed_jobs,
                "campaign_peak_rss_kb": sweep.peak_rss_kb,
                "campaign_dead_workers": list(sweep.dead_workers),
                "campaign_requeues": sweep.requeues,
                "tau_mean": {
                    name: np.mean(np.array(rows), axis=0).tolist()
                    for name, rows in per_method.items()
                },
                "tau_std": {
                    name: np.std(np.array(rows), axis=0).tolist()
                    for name, rows in per_method.items()
                },
            }
        )
    return {
        "scale": scale.name,
        "seed": seed,
        "backend": backend,
        "candidates": candidates,
        "block_size": block_size,
        "block_seed": block_seed,
        "workers": workers,
        "panels": results,
    }


def format_results(payload: dict) -> str:
    """One text block per Fig. 4 panel: the plotted series as numbers."""
    blocks = []
    for panel in payload["panels"]:
        rows = []
        for i, pct in enumerate(panel["edges_changed_pct"]):
            rows.append(
                [
                    f"{pct:.2f}%",
                    panel["tau_mean"]["gradmaxsearch"][i],
                    panel["tau_mean"]["continuousa"][i],
                    panel["tau_mean"]["binarizedattack"][i],
                ]
            )
        blocks.append(
            format_table(
                ["edges-changed", "gradmaxsearch", "continuousa", "binarizedattack"],
                rows,
                title=(
                    f"Fig 4 [{panel['panel']}] τ_as (|T|={panel['target_count']}, "
                    f"mean of repeats, scale={payload['scale']})"
                ),
            )
        )
        if panel.get("campaign_peak_rss_kb") or panel.get("campaign_requeues"):
            blocks.append(
                f"  run stats [{panel['panel']}]: "
                f"peak worker RSS {panel['campaign_peak_rss_kb'] / 1024:.1f} MiB, "
                f"requeues {panel['campaign_requeues']}, "
                f"dead workers {panel['campaign_dead_workers'] or 'none'}"
            )
    return "\n\n".join(blocks)

"""Fig. 5 — case studies: how BinarizedAttack rewires individual egonets.

The paper shows three single-target cases on Wikivote: (1) the attack adds
edges only, (2) deletes edges only, (3) mixes both — in every case the
near-star / near-clique egonet is pushed back to a "normal" density and the
AScore collapses (e.g. 6.05 → 0.69).  We reproduce the numbers behind the
drawings: per-case AScore before/after, the add/delete split, and the egonet
density before/after.
"""

from __future__ import annotations


from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.graph.graph import Graph
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]


def _egonet_density(graph: Graph, node: int) -> float:
    """Edge density of the node's egonet (1.0 = clique, →0 = star)."""
    ego = graph.egonet(node)
    n = ego.number_of_nodes
    possible = n * (n - 1) / 2
    return ego.number_of_edges / possible if possible > 0 else 0.0


def _classify_case(adds: int, deletes: int) -> str:
    if adds and not deletes:
        return "add-only"
    if deletes and not adds:
        return "delete-only"
    if adds and deletes:
        return "add+delete"
    return "no-op"


def run(
    scale: Scale = CI,
    seed: int = 7,
    dataset: str = "wikivote",
    n_cases: int = 3,
    backend: str = "auto",
    candidates: "str | None" = None,
) -> dict:
    """Attack the ``n_cases`` top anomalies one at a time, logging the rewiring.

    ``backend`` selects BinarizedAttack's surrogate engine and
    ``candidates`` an optional pair-pruning strategy, so the case studies
    can be reproduced on full-size graphs (``backend="sparse"`` together
    with ``candidates="target_incident"`` keeps both the forward pass and
    the decision variables sub-quadratic).
    """
    seeds = SeedSequenceFactory(seed)
    ds = load_experiment_graph(dataset, scale, seeds)
    graph = ds.graph
    detector = OddBall()
    report = detector.analyze(graph)
    # Prefer structurally diverse cases: highest-scoring star-like (sparse
    # egonet) and clique-like (dense egonet) nodes first.
    ranked = report.top_k(min(20, graph.number_of_nodes))
    densities = {int(v): _egonet_density(graph, int(v)) for v in ranked}
    stars = sorted(ranked, key=lambda v: densities[int(v)])
    cliques = sorted(ranked, key=lambda v: -densities[int(v)])
    chosen: list[int] = []
    for pool in (stars, cliques, list(ranked)):
        for v in pool:
            if int(v) not in chosen:
                chosen.append(int(v))
                break
    chosen = chosen[:n_cases]

    attack = BinarizedAttack(iterations=scale.attack_iterations, backend=backend)
    budget = max(scale.scaled(10), 4)
    cases = []
    for node in chosen:
        result = attack.attack(graph, [node], budget, candidates=candidates)
        flips = result.flips()
        adds = sum(1 for u, v in flips if graph.adjacency_view[u, v] == 0.0)
        deletes = len(flips) - adds
        poisoned = result.poisoned_graph()
        cases.append(
            {
                "target": node,
                "case": _classify_case(adds, deletes),
                "ascore_before": float(report.scores[node]),
                "ascore_after": float(detector.scores(poisoned)[node]),
                "edges_added": adds,
                "edges_deleted": deletes,
                "egonet_density_before": densities.get(node, _egonet_density(graph, node)),
                "egonet_density_after": _egonet_density(poisoned, node),
                "egonet_size_before": int(graph.degree(node)) + 1,
                "egonet_size_after": int(poisoned.degree(node)) + 1,
            }
        )
    return {"scale": scale.name, "seed": seed, "dataset": dataset, "budget": budget,
            "backend": backend, "candidates": candidates, "cases": cases}


def format_results(payload: dict) -> str:
    rows = [
        [
            f"v{c['target']}",
            c["case"],
            c["ascore_before"],
            c["ascore_after"],
            c["edges_added"],
            c["edges_deleted"],
            c["egonet_density_before"],
            c["egonet_density_after"],
        ]
        for c in payload["cases"]
    ]
    return format_table(
        ["target", "case", "AScore-before", "AScore-after", "added", "deleted",
         "ego-density-before", "ego-density-after"],
        rows,
        title=(
            f"Fig 5 — BinarizedAttack case studies on {payload['dataset']} "
            f"(B={payload['budget']}, scale={payload['scale']})"
        ),
    )

"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks import BinarizedAttack, ContinuousA, GradMaxSearch, StructuralAttack
from repro.experiments.config import Scale
from repro.graph.datasets import Dataset, load_dataset
from repro.graph.graph import Graph
from repro.oddball.detector import DetectionReport, OddBall
from repro.oddball.scores import anomaly_scores
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "attack_suite",
    "attack_suite_params",
    "format_table",
    "load_experiment_graph",
    "sample_targets",
    "tau_for_budgets",
]


def load_experiment_graph(name: str, scale: Scale, seeds: SeedSequenceFactory) -> Dataset:
    """Dataset for an experiment, at the preset's graph scale."""
    return load_dataset(name, rng=seeds.generator(f"dataset-{name}"), scale=scale.graph_scale)


def sample_targets(
    report: DetectionReport,
    count: int,
    rng: np.random.Generator,
    pool_size: int = 50,
) -> list[int]:
    """Sample ``count`` targets from the top-``pool_size`` AScore nodes.

    Mirrors the paper's protocol: "sampling 10 or 30 target nodes from the
    top-50 nodes based on AScore rankings".
    """
    pool = report.top_k(min(pool_size, len(report.scores)))
    count = min(count, len(pool))
    chosen = rng.choice(pool, size=count, replace=False)
    return sorted(int(v) for v in chosen)


def attack_suite(scale: Scale, backend: str = "auto") -> dict[str, StructuralAttack]:
    """The paper's three methods with scale-appropriate iteration counts.

    ``backend`` selects the surrogate engine (``auto``/``dense``/``sparse``,
    see :mod:`repro.oddball.surrogate`) so figure sweeps can be regenerated
    at sizes the dense pipeline cannot reach.
    """
    return {
        "gradmaxsearch": GradMaxSearch(backend=backend),
        "continuousa": ContinuousA(max_iter=scale.attack_iterations, backend=backend),
        "binarizedattack": BinarizedAttack(
            iterations=scale.attack_iterations, backend=backend
        ),
    }


def attack_suite_params(scale: Scale) -> dict[str, dict]:
    """:func:`attack_suite` as campaign job parameters.

    The campaign layer instantiates attacks from serialisable specs, so
    the sweep drivers describe the suite as constructor kwargs instead of
    instances — keeping :func:`attack_suite` and the campaign-driven
    figures in lock-step (a mismatch here would break the figure-level
    equivalence tests).
    """
    return {
        "gradmaxsearch": {},
        "continuousa": {"max_iter": scale.attack_iterations},
        "binarizedattack": {"iterations": scale.attack_iterations},
    }


def tau_for_budgets(
    original: np.ndarray,
    result,
    targets: Sequence[int],
    budgets: Sequence[int],
) -> list[float]:
    """τ_as at each budget, computing clean scores once."""
    targets = list(targets)
    before = float(anomaly_scores(original)[targets].sum())
    out = []
    for budget in budgets:
        after = float(anomaly_scores(result.poisoned(budget))[targets].sum())
        out.append(0.0 if before <= 0 else (before - after) / before)
    return out


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width text table (the benches print these as the paper's artefacts)."""
    headers = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def top_score_groups(
    graph: Graph, low_pct: float = 10.0, high_pct: float = 90.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split nodes into low/medium/high AScore groups (Fig. 6 protocol)."""
    scores = OddBall().scores(graph)
    q1, q2 = np.percentile(scores, [low_pct, high_pct])
    low = np.flatnonzero(scores <= q1)
    high = np.flatnonzero(scores >= q2)
    medium = np.flatnonzero((scores > q1) & (scores < q2))
    return scores, low, medium, high

"""Table II — side effects: does the attack shift the ego-feature
distributions?

For each real dataset, 5 independent target samplings (|T| = 30 in the
paper) are attacked at the maximum budget; a Monte-Carlo permutation test
(Eq. 11) then compares the clean vs poisoned distributions of N and of E.
Paper finding: N is never significantly shifted; E occasionally is
(one Wikivote run at p < 0.01) — the attack is largely unnoticeable.
"""

from __future__ import annotations

from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph, sample_targets
from repro.experiments.config import CI, Scale
from repro.graph.features import egonet_features
from repro.ml.stats import permutation_test
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

DATASETS = ("bitcoin-alpha", "blogcatalog", "wikivote")


def run(
    scale: Scale = CI,
    seed: int = 7,
    datasets=DATASETS,
    paper_targets: int = 30,
    n_experiments: int = 5,
) -> dict:
    """p-values for N and E over ``n_experiments`` repeats per dataset."""
    seeds = SeedSequenceFactory(seed)
    detector = OddBall()
    n_experiments = min(n_experiments, max(scale.n_repeats * 2, 2))
    table: dict[str, list[dict[str, float]]] = {}
    for name in datasets:
        dataset = load_experiment_graph(name, scale, seeds)
        graph = dataset.graph
        adjacency = graph.adjacency
        n_clean, e_clean = egonet_features(adjacency)
        budget = scale.budgets_for(graph.number_of_edges)[-1]
        report = detector.analyze(graph)
        n_targets = max(scale.scaled(paper_targets), 5)
        attack = BinarizedAttack(iterations=scale.attack_iterations)

        rows = []
        for experiment in range(n_experiments):
            rng = seeds.generator(f"table2-{name}-{experiment}")
            targets = sample_targets(report, n_targets, rng)
            result = attack.attack(graph, targets, budget)
            poisoned = result.poisoned()
            n_poisoned, e_poisoned = egonet_features(poisoned)
            p_n = permutation_test(
                n_clean, n_poisoned, n_resamples=scale.permutation_resamples,
                rng=seeds.generator(f"table2-perm-n-{name}-{experiment}"),
            )
            p_e = permutation_test(
                e_clean, e_poisoned, n_resamples=scale.permutation_resamples,
                rng=seeds.generator(f"table2-perm-e-{name}-{experiment}"),
            )
            rows.append({"experiment": experiment + 1, "p_n": p_n.p_value, "p_e": p_e.p_value,
                         "flips": len(result.flips())})
        table[name] = rows
    return {
        "scale": scale.name,
        "seed": seed,
        "n_resamples": scale.permutation_resamples,
        "paper_targets": paper_targets,
        "table": table,
    }


def format_results(payload: dict) -> str:
    datasets = list(payload["table"])
    headers = ["experiment"] + [f"{d}:{f}" for d in datasets for f in ("N", "E")]
    n_rows = max(len(rows) for rows in payload["table"].values())
    rows = []
    for i in range(n_rows):
        row = [i + 1]
        for dataset in datasets:
            entry = payload["table"][dataset][i]
            row.extend([entry["p_n"], entry["p_e"]])
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            f"Table II — permutation-test p-values for ego-features "
            f"(M={payload['n_resamples']}, scale={payload['scale']})"
        ),
    )

"""Fig. 10 — countermeasures: OddBall with robust estimators under attack.

BinarizedAttack poisons the graph as usual (against OLS OddBall); the
defender then re-estimates the regression with Huber or RANSAC.  Paper
finding: both robust estimators *slightly* mitigate the attack — the τ_as
curves sit a little below the no-defence curve — but the attack remains very
effective.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph, sample_targets
from repro.experiments.config import CI, Scale
from repro.graph.features import egonet_features
from repro.oddball.detector import OddBall
from repro.oddball.robust import fit_with_estimator
from repro.oddball.scores import score_from_features
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

DATASETS = ("bitcoin-alpha", "wikivote")
ESTIMATORS = ("ols", "huber", "ransac")


def _scores_with(adjacency: np.ndarray, estimator: str, rng) -> np.ndarray:
    n_feature, e_feature = egonet_features(adjacency)
    fit = fit_with_estimator(n_feature, e_feature, estimator=estimator, rng=rng)
    return score_from_features(n_feature, e_feature, fit)


def run(
    scale: Scale = CI,
    seed: int = 7,
    datasets=DATASETS,
    paper_targets: int = 10,
) -> dict:
    """τ_as under each estimator, averaged over target samplings."""
    seeds = SeedSequenceFactory(seed)
    detector = OddBall()
    results = {}
    for name in datasets:
        dataset = load_experiment_graph(name, scale, seeds)
        graph = dataset.graph
        adjacency = graph.adjacency
        budgets = scale.budgets_for(graph.number_of_edges)
        n_targets = max(scale.scaled(paper_targets), 3)
        report = detector.analyze(graph)
        attack = BinarizedAttack(iterations=scale.attack_iterations)

        curves = {est: np.zeros(len(budgets)) for est in ESTIMATORS}
        for repeat in range(scale.n_repeats):
            rng = seeds.generator(f"fig10-{name}-{repeat}")
            targets = sample_targets(report, n_targets, rng)
            result = attack.attack(graph, targets, budgets[-1])
            for estimator in ESTIMATORS:
                est_rng = seeds.generator(f"fig10-est-{name}-{estimator}-{repeat}")
                before = float(
                    _scores_with(adjacency, estimator, est_rng)[targets].sum()
                )
                for i, budget in enumerate(budgets):
                    est_rng_b = seeds.generator(
                        f"fig10-est-{name}-{estimator}-{repeat}-{budget}"
                    )
                    after = float(
                        _scores_with(result.poisoned(budget), estimator, est_rng_b)[
                            targets
                        ].sum()
                    )
                    tau = 0.0 if before <= 0 else (before - after) / before
                    curves[estimator][i] += tau / scale.n_repeats
        results[name] = {
            "budgets": budgets,
            "edges_changed_pct": [100.0 * b / graph.number_of_edges for b in budgets],
            "tau": {est: curve.tolist() for est, curve in curves.items()},
        }
    return {"scale": scale.name, "seed": seed, "datasets": results}


def format_results(payload: dict) -> str:
    blocks = []
    for name, data in payload["datasets"].items():
        rows = []
        for i, pct in enumerate(data["edges_changed_pct"]):
            rows.append(
                [
                    f"{pct:.2f}%",
                    data["tau"]["ols"][i],
                    data["tau"]["huber"][i],
                    data["tau"]["ransac"][i],
                ]
            )
        blocks.append(
            format_table(
                ["edges-changed", "no-defence(OLS)", "Huber", "RANSAC"],
                rows,
                title=f"Fig 10 [{name}] — defence curves (scale={payload['scale']})",
            )
        )
    return "\n\n".join(blocks)

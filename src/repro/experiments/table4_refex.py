"""Table IV — transfer attack against ReFeX (AUC / F1 / δ_B vs budget B).

Paper grids: Bitcoin-Alpha B ∈ {0, 5, ..., 50}; Wikivote B ∈ {0, 10, ...,
100}.  Shape: AUC drifts down a few points while δ_B climbs to ~33%
(Bitcoin-Alpha) and ~56% (Wikivote).
"""

from __future__ import annotations

from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph
from repro.experiments.config import CI, Scale
from repro.gad.pipeline import TransferAttackPipeline
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]

#: Paper budget grids per dataset.
PAPER_BUDGETS = {
    "bitcoin-alpha": tuple(range(0, 55, 5)),
    "wikivote": tuple(range(0, 110, 10)),
}


def run(
    scale: Scale = CI,
    seed: int = 7,
    budgets_by_dataset: "dict[str, tuple[int, ...]] | None" = None,
    max_targets: int = 10,
) -> dict:
    """Run the ReFeX transfer pipeline over the per-dataset budget grids."""
    seeds = SeedSequenceFactory(seed)
    grids = budgets_by_dataset or {
        name: tuple(sorted({scale.scaled(b) for b in grid} | {0}))
        for name, grid in PAPER_BUDGETS.items()
    }
    results = {}
    for name, budgets in grids.items():
        dataset = load_experiment_graph(name, scale, seeds)
        pipeline = TransferAttackPipeline(
            system="refex",
            seed=seeds.seed(f"refex-{name}"),
            mlp_kwargs={"epochs": scale.mlp_epochs},
        )
        attack = BinarizedAttack(iterations=scale.attack_iterations)
        outcome = pipeline.run(dataset.graph, attack, list(budgets), max_targets=max_targets)
        results[name] = {
            "n_edges": dataset.graph.number_of_edges,
            "n_targets": len(outcome.targets),
            "rows": [vars(r) for r in outcome.rows],
        }
    return {"scale": scale.name, "seed": seed, "system": "refex", "datasets": results}


def format_results(payload: dict) -> str:
    blocks = []
    for name, data in payload["datasets"].items():
        rows = [
            [r["budget"], r["auc"], r["f1"], f"{r['delta_b_pct']:.2f}"]
            for r in data["rows"]
        ]
        blocks.append(
            format_table(
                ["B", "AUC", "F1", "deltaB(%)"],
                rows,
                title=(
                    f"Table IV [{name}] — ReFeX under transfer attack "
                    f"({data['n_targets']} targets, scale={payload['scale']})"
                ),
            )
        )
    return "\n\n".join(blocks)

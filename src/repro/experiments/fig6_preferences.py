"""Fig. 6 — attack preferences across initial-AScore groups.

Nodes are split at the 10th/90th AScore percentiles into low/medium/high
groups; 10 targets are sampled from each and attacked *jointly*.  The paper
observes that the high group's scores drop far more than the others', i.e.
BinarizedAttack concentrates its budget on the most anomalous targets.  The
companion panels report the log-log regression line before (B=0) and after
(B=60) poisoning.
"""

from __future__ import annotations


from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph, top_score_groups
from repro.experiments.config import CI, Scale
from repro.oddball.detector import OddBall
from repro.oddball.scores import anomaly_scores
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]


def run(
    scale: Scale = CI,
    seed: int = 7,
    dataset: str = "blogcatalog",
    per_group: int = 10,
    paper_budget: int = 60,
) -> dict:
    """Joint attack on a low/medium/high target mix; per-group τ series."""
    seeds = SeedSequenceFactory(seed)
    ds = load_experiment_graph(dataset, scale, seeds)
    graph = ds.graph
    scores, low, medium, high = top_score_groups(graph)

    rng = seeds.generator("fig6-targets")
    per_group = min(per_group, len(low), len(medium), len(high))
    groups = {
        "low": sorted(int(v) for v in rng.choice(low, size=per_group, replace=False)),
        "medium": sorted(int(v) for v in rng.choice(medium, size=per_group, replace=False)),
        "high": sorted(int(v) for v in rng.choice(high, size=per_group, replace=False)),
    }
    targets = sorted(groups["low"] + groups["medium"] + groups["high"])

    max_budget = max(scale.scaled(paper_budget), 6)
    budgets = sorted({max(int(round(f * max_budget)), 1) for f in (0.25, 0.5, 0.75, 1.0)})
    attack = BinarizedAttack(iterations=scale.attack_iterations)
    result = attack.attack(graph, targets, max_budget)

    series: dict[str, list[float]] = {name: [] for name in groups}
    for budget in budgets:
        poisoned_scores = anomaly_scores(result.poisoned(budget))
        for name, members in groups.items():
            before = float(scores[members].sum())
            after = float(poisoned_scores[members].sum())
            series[name].append(0.0 if before <= 0 else (before - after) / before)

    detector = OddBall()
    fit_clean = detector.analyze(graph).fit
    fit_poisoned = detector.analyze(result.poisoned_graph(max_budget)).fit
    return {
        "scale": scale.name,
        "seed": seed,
        "dataset": dataset,
        "budgets": budgets,
        "edges_changed_pct": [100.0 * b / graph.number_of_edges for b in budgets],
        "groups": groups,
        "tau_by_group": series,
        "regression_clean": {"beta0": fit_clean.beta0, "beta1": fit_clean.beta1},
        "regression_poisoned": {"beta0": fit_poisoned.beta0, "beta1": fit_poisoned.beta1},
    }


def format_results(payload: dict) -> str:
    rows = []
    for i, pct in enumerate(payload["edges_changed_pct"]):
        rows.append(
            [
                f"{pct:.2f}%",
                payload["tau_by_group"]["low"][i],
                payload["tau_by_group"]["medium"][i],
                payload["tau_by_group"]["high"][i],
            ]
        )
    table = format_table(
        ["edges-changed", "tau-low", "tau-medium", "tau-high"],
        rows,
        title=(
            f"Fig 6 — per-group AScore decrease on {payload['dataset']} "
            f"(scale={payload['scale']})"
        ),
    )
    clean = payload["regression_clean"]
    poisoned = payload["regression_poisoned"]
    lines = [
        table,
        "",
        f"regression clean    : lnE = {clean['beta0']:.3f} + {clean['beta1']:.3f} lnN",
        f"regression poisoned : lnE = {poisoned['beta0']:.3f} + {poisoned['beta1']:.3f} lnN",
    ]
    return "\n".join(lines)

"""Fig. 7 — probability densities of ego-features N and E, clean vs
poisoned (Bitcoin-Alpha in the paper).

The plotted curves are reproduced as numeric (bin-center, density) series,
plus summary statistics making the "distributions barely move" point
quantitative.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import BinarizedAttack
from repro.experiments.common import format_table, load_experiment_graph, sample_targets
from repro.experiments.config import CI, Scale
from repro.graph.features import egonet_features
from repro.ml.stats import histogram_density
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory

__all__ = ["format_results", "run"]


def run(
    scale: Scale = CI,
    seed: int = 7,
    dataset: str = "bitcoin-alpha",
    paper_targets: int = 30,
    bins: int = 30,
) -> dict:
    """Density series of N and E before/after a max-budget attack."""
    seeds = SeedSequenceFactory(seed)
    ds = load_experiment_graph(dataset, scale, seeds)
    graph = ds.graph
    adjacency = graph.adjacency
    detector = OddBall()
    report = detector.analyze(graph)
    targets = sample_targets(
        report, max(scale.scaled(paper_targets), 5), seeds.generator("fig7-targets")
    )
    budget = scale.budgets_for(graph.number_of_edges)[-1]
    result = BinarizedAttack(iterations=scale.attack_iterations).attack(graph, targets, budget)
    poisoned = result.poisoned()

    n_clean, e_clean = egonet_features(adjacency)
    n_poisoned, e_poisoned = egonet_features(poisoned)

    payload = {"scale": scale.name, "seed": seed, "dataset": dataset, "budget": budget,
               "series": {}, "summary": {}}
    for label, clean, dirty in (("N", n_clean, n_poisoned), ("E", e_clean, e_poisoned)):
        low = float(min(clean.min(), dirty.min()))
        high = float(max(clean.max(), dirty.max()))
        centers, density_clean = histogram_density(clean, bins=bins, value_range=(low, high))
        _, density_poisoned = histogram_density(dirty, bins=bins, value_range=(low, high))
        payload["series"][label] = {
            "centers": centers.tolist(),
            "clean": density_clean.tolist(),
            "poisoned": density_poisoned.tolist(),
        }
        payload["summary"][label] = {
            "mean_clean": float(clean.mean()),
            "mean_poisoned": float(dirty.mean()),
            "std_clean": float(clean.std()),
            "std_poisoned": float(dirty.std()),
            "total_variation": float(
                0.5 * np.abs(density_clean - density_poisoned).sum()
                * (centers[1] - centers[0] if len(centers) > 1 else 1.0)
            ),
        }
    return payload


def format_results(payload: dict) -> str:
    rows = []
    for feature, stats in payload["summary"].items():
        rows.append(
            [
                feature,
                stats["mean_clean"],
                stats["mean_poisoned"],
                stats["std_clean"],
                stats["std_poisoned"],
                stats["total_variation"],
            ]
        )
    return format_table(
        ["feature", "mean-clean", "mean-poisoned", "std-clean", "std-poisoned", "TV-distance"],
        rows,
        title=(
            f"Fig 7 — ego-feature distributions on {payload['dataset']} "
            f"(B={payload['budget']}, scale={payload['scale']})"
        ),
    )

"""Experiment scale presets.

``PAPER`` matches the paper's settings (1000-node graphs, 5 repeats,
100k-permutation Monte-Carlo tests); ``CI`` shrinks every axis so the whole
benchmark suite reruns in minutes on a laptop.  Every experiment driver and
benchmark takes a :class:`Scale`, and EXPERIMENTS.md records which preset
produced the recorded numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CI", "PAPER", "SMOKE", "Scale"]


@dataclass(frozen=True)
class Scale:
    """Knobs controlling experiment size.

    Attributes
    ----------
    name:
        Preset label recorded in result payloads.
    graph_scale:
        Multiplier on the paper's Table I node counts (1.0 → 1000-node graphs).
    n_repeats:
        Target-sampling repetitions; the paper reports means of 5.
    permutation_resamples:
        Monte-Carlo resamples of the Table II permutation test.
    attack_iterations:
        Inner-loop length T of BinarizedAttack / iteration cap of ContinuousA.
    gal_epochs / mlp_epochs:
        Training epochs for the transfer-attack victims.
    tsne_iterations:
        Gradient steps of the Fig. 8/9 t-SNE embeddings.
    budget_fractions:
        Attack-power grid (fraction of clean edges flipped) for Fig. 4/10.
    """

    name: str
    graph_scale: float
    n_repeats: int
    permutation_resamples: int
    attack_iterations: int
    gal_epochs: int
    mlp_epochs: int
    tsne_iterations: int
    budget_fractions: tuple[float, ...]

    def budgets_for(self, n_edges: int) -> list[int]:
        """Distinct integer budgets realising :attr:`budget_fractions`."""
        budgets = sorted({max(int(round(f * n_edges)), 1) for f in self.budget_fractions})
        return budgets

    def scaled(self, count: "int | float") -> int:
        """Scale a paper-sized count (targets, budgets) to this preset."""
        return max(int(round(count * self.graph_scale)), 1)

    def with_(self, **overrides) -> "Scale":
        """Copy with selected fields replaced."""
        return replace(self, **overrides)


PAPER = Scale(
    name="paper",
    graph_scale=1.0,
    n_repeats=5,
    permutation_resamples=100_000,
    attack_iterations=200,
    gal_epochs=100,
    mlp_epochs=300,
    tsne_iterations=500,
    budget_fractions=(0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015, 0.0175, 0.02),
)

CI = Scale(
    name="ci",
    graph_scale=0.25,
    n_repeats=2,
    permutation_resamples=2_000,
    attack_iterations=120,
    gal_epochs=60,
    mlp_epochs=150,
    tsne_iterations=250,
    budget_fractions=(0.005, 0.01, 0.02, 0.03),
)

#: Minimal preset for unit/integration tests: single repeat, tiny graphs.
SMOKE = Scale(
    name="smoke",
    graph_scale=0.12,
    n_repeats=1,
    permutation_resamples=200,
    attack_iterations=40,
    gal_epochs=25,
    mlp_epochs=60,
    tsne_iterations=60,
    budget_fractions=(0.01, 0.02),
)

"""ParallelCampaignExecutor: one engine per worker, sharded job queue.

The paper's headline experiments — Fig. 4's effectiveness sweeps, Table I's
attackability column — are grids of *independent* (target × budget × λ ×
attack) jobs.  :class:`~repro.attacks.campaign.AttackCampaign` already
amortises per-job fixed costs onto one shared engine, but it drains the
grid on a single core.  Per-target structural attacks are embarrassingly
parallel across jobs (each job starts from the same clean graph and the
campaign restores the engine between jobs), so the next multiplier is
process-level parallelism:

* the parent captures the graph once as a picklable
  :class:`~repro.oddball.surrogate.EngineSpec` and **shards** the pending
  job list round-robin across N worker processes;
* each worker rebuilds its own :class:`SurrogateEngine` from the spec
  (``EngineSpec.build`` → ``SurrogateEngine.from_spec``) exactly once,
  then drains its shard through a plain :class:`AttackCampaign` — the
  existing ``retarget()``/``checkpoint()``/``restore()`` primitives do the
  per-job work, so worker code adds no new attack semantics;
* workers append completed jobs to **per-worker JSONL shard files** in the
  standard :class:`~repro.attacks.campaign.CheckpointStore` format; the
  parent merges the shards into the single-file checkpoint after joining
  (and *before* raising, if a worker died — completed work is never lost).

Because jobs are keyed by the content hash :attr:`AttackJob.job_id`,
merge/dedupe/resume are order-independent: a run interrupted mid-shard can
be resumed with a **different** worker count (leftover shards are folded
into the main checkpoint first), and the merged result is bit-identical to
a serial :class:`AttackCampaign` run of the same grid — same flips, same
losses, same rank shifts (parity-tested; the executor is purely a
wall-clock lever).

Scaling: with W workers the critical path drops from ``E + J·t`` to
``E + ceil(J/W)·t`` (E = one engine build + clean-score pass, t = per-job
cost) plus fork/merge overhead — near-linear while ``J·t`` dominates,
which Fig. 4-scale grids (hundreds of jobs) comfortably reach.  See
``benchmarks/bench_parallel_campaign.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path
from typing import Iterable

try:  # Unix-only stdlib module; absent on Windows
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

import numpy as np

from repro import telemetry as _telemetry
from repro.attacks.campaign import (
    AttackCampaign,
    AttackJob,
    CampaignResult,
    CheckpointStore,
    JobOutcome,
    _normalize_graph,
    checkpoint_aliases,
    graph_fingerprint,
    validate_jobs,
)
from repro.kernels import validate_kernels
from repro.oddball.surrogate import (
    EngineSpec,
    SurrogateEngine,
    resolve_backend,
    validate_backend,
)
from repro.utils.logging import get_logger

__all__ = ["ParallelCampaignExecutor", "build_campaign"]

_log = get_logger("attacks.executor")


def build_campaign(
    graph,
    *,
    workers: int = 1,
    backend: str = "auto",
    kernels: str = "auto",
    checkpoint_path=None,
    compute_ranks: bool = True,
    scheduler: bool = False,
    lease_ttl: "float | None" = None,
    telemetry: "str | None" = None,
):
    """Serial :class:`AttackCampaign` or a :class:`ParallelCampaignExecutor`.

    The one switch the experiment drivers call: ``workers <= 1`` returns
    the serial campaign, anything larger the parallel executor — with
    ``scheduler=True`` the work-stealing
    :class:`~repro.attacks.scheduler.SchedulingCampaignExecutor`, whose
    shared queue keeps workers busy on cost-skewed grids and requeues a
    killed worker's jobs (``lease_ttl`` bounds the requeue latency; ``None``
    defers to ``$REPRO_LEASE_TTL``, then 30 s).  All three expose the same
    ``run(jobs) -> CampaignResult`` surface and produce bit-identical
    results, so callers never branch again.  ``kernels`` selects the
    hot-loop kernel backend (see :mod:`repro.kernels`); either value
    yields the same flips.  ``telemetry`` names a trace directory for the
    :mod:`repro.telemetry` layer (``None`` defers to
    ``$REPRO_TELEMETRY``); tracing changes no results.
    """
    if workers <= 1:
        return AttackCampaign(
            graph,
            backend=backend,
            kernels=kernels,
            checkpoint_path=checkpoint_path,
            compute_ranks=compute_ranks,
            telemetry=telemetry,
        )
    if scheduler:
        # Imported lazily: scheduler.py imports from this module.
        from repro.attacks.scheduler import SchedulingCampaignExecutor

        return SchedulingCampaignExecutor(
            graph,
            workers=workers,
            backend=backend,
            kernels=kernels,
            checkpoint_path=checkpoint_path,
            compute_ranks=compute_ranks,
            lease_ttl=lease_ttl,
            telemetry=telemetry,
        )
    return ParallelCampaignExecutor(
        graph,
        workers=workers,
        backend=backend,
        kernels=kernels,
        checkpoint_path=checkpoint_path,
        compute_ranks=compute_ranks,
        telemetry=telemetry,
    )


def _worker_main(
    spec: EngineSpec,
    jobs: "list[AttackJob]",
    shard_path: str,
    compute_ranks: bool,
    telemetry: "dict | None" = None,
) -> None:
    """Entry point of one worker process: build one engine, drain one shard.

    Runs in the child.  The engine comes from the spec round-trip
    (:meth:`EngineSpec.build`), the shard drains through a plain
    :class:`AttackCampaign` whose checkpoint file *is* the shard, so every
    completed job is durable the moment it finishes — a killed worker
    loses at most the job it was executing.

    ``telemetry`` is a :func:`repro.telemetry.worker_spec` payload (or
    ``None``): the first thing the worker does is open its OWN per-worker
    sink (or disable the fork-inherited tracer), so parent and child
    never write one file and the merged trace stays one tree.

    A ``<shard>.stats`` sidecar records the worker's CPU and wall seconds;
    the parent collects these into
    :attr:`ParallelCampaignExecutor.last_worker_stats`.  CPU seconds are
    the contention-free cost signal: on a core-starved machine the wall
    clock of W time-sharing workers stretches by up to W×, while CPU time
    measures the work itself.
    """
    _telemetry.worker_configure(telemetry)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        with _telemetry.span("worker.run", jobs=len(jobs)):
            # Empty candidate set, exactly like AttackCampaign's lazy
            # construction: every job retargets with its own pairs, and
            # ``None`` would materialise all n(n−1)/2 upper-triangle pairs
            # — 50M entries at n = 10 000.
            empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
            graph = spec.to_graph()  # materialised once: engine + campaign share it
            engine = SurrogateEngine.from_spec(
                spec, jobs[0].targets, candidates=empty, graph=graph
            )
            campaign = AttackCampaign(
                graph,
                backend=spec.backend,
                # The spec carries the REQUESTED kernels flag (possibly
                # "auto"); the engine build above resolved it against THIS
                # host, and the campaign default keeps per-job attack
                # params consistent with it.
                kernels=spec.kernels,
                checkpoint_path=shard_path,
                compute_ranks=compute_ranks,
                engine=engine,
            )
            campaign.run(jobs)
        stats = {
            "jobs": len(jobs),
            "cpu_seconds": time.process_time() - cpu_start,
            "wall_seconds": time.perf_counter() - wall_start,
            # Peak resident set of this worker in KiB: the memory signal the
            # store-vs-payload benchmark compares.  With the fork start method
            # this includes pages inherited copy-on-write from the parent, so
            # it is an honest "what this process kept mapped" number, not a
            # private-bytes number.  0 where getrusage is unavailable.
            "max_rss_kb": _max_rss_kb(),
        }
        Path(shard_path + ".stats").write_text(json.dumps(stats) + "\n")
    finally:
        _telemetry.shutdown()  # flush the worker's counters before exit


def _max_rss_kb() -> int:
    """This process's peak RSS in KiB (0 on platforms without getrusage).

    ``ru_maxrss`` is KiB on Linux but *bytes* on macOS — normalised here so
    every ``.stats`` sidecar speaks the same unit.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak // 1024) if sys.platform == "darwin" else int(peak)


class ParallelCampaignExecutor:
    """Drain a campaign's job grid across N worker processes.

    Parameters
    ----------
    graph:
        :class:`~repro.graph.graph.Graph`, dense adjacency array, scipy
        sparse matrix — the same inputs :class:`AttackCampaign` takes — or
        a :class:`~repro.store.GraphStore`: workers then receive a
        ``store``-kind spec (a path, not arrays) and memory-map one shared
        on-disk graph instead of each holding a CSR copy (sparse-only).
    workers:
        Worker process count.  Sharding is round-robin over the pending
        (non-checkpointed) jobs; a shard never exceeds
        ``ceil(pending / workers)`` jobs.
    backend:
        Surrogate backend (``"auto"``/``"dense"``/``"sparse"``), resolved
        once in the parent and baked into the :class:`EngineSpec` every
        worker receives — all workers run the identical engine class.
    kernels:
        Hot-loop kernel backend (``"auto"``/``"numpy"``/``"compiled"``,
        see :mod:`repro.kernels`).  Unlike ``backend`` it is shipped
        **unresolved**: each worker resolves it against its own host at
        engine-build time, so an ``"auto"`` fleet mixing hosts with and
        without a C toolchain still produces bit-identical results, while
        an explicit ``"compiled"`` is enforced on every worker.
    checkpoint_path:
        Optional JSONL checkpoint (same single-file format as the serial
        campaign — the two are interchangeable run-over-run).  Worker
        shards live next to it as ``<name>.shard<k>`` and are merged in
        after every run; leftover shards from a killed run are merged
        *before* scheduling, which is what makes resume independent of the
        original worker count.  Without a checkpoint path, shards live in
        a temporary directory and only the in-memory result survives.
    compute_ranks:
        Forwarded to every worker's campaign (per-target rank shifts).
    telemetry:
        Optional trace directory for the :mod:`repro.telemetry` layer.
        The parent configures its tracer here (spec capture, drain and
        merge become spans) and each worker opens its own per-worker sink
        keyed by worker id, parented to the drain span — so the merged
        trace directory reads as ONE tree.  ``None`` defers to
        ``$REPRO_TELEMETRY``/earlier configuration; results are
        bit-identical with telemetry on or off.
    mp_context:
        Optional :mod:`multiprocessing` start-method name.  Defaults to
        ``"fork"`` where available (workers inherit loaded modules — no
        per-worker interpreter/import cost) and ``"spawn"`` elsewhere.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.attacks import grid_jobs
    >>> graph = erdos_renyi(60, 0.1, rng=0)
    >>> jobs = grid_jobs("gradmaxsearch", [[1], [2], [3]], budgets=[2],
    ...                  candidates="target_incident")
    >>> result = ParallelCampaignExecutor(graph, workers=2).run(jobs)
    >>> len(result) == 3
    True
    """

    def __init__(
        self,
        graph,
        *,
        workers: int = 2,
        backend: str = "auto",
        kernels: str = "auto",
        checkpoint_path=None,
        compute_ranks: bool = True,
        mp_context: "str | None" = None,
        telemetry: "str | None" = None,
    ):
        validate_backend(backend)
        if telemetry is not None:
            _telemetry.configure(telemetry)
        self.kernels = validate_kernels(kernels)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # A GraphStore-backed executor ships a ``store``-kind EngineSpec (a
        # path, not arrays): workers memory-map the one on-disk graph
        # instead of each holding an unpickled CSR copy.
        from repro.store import GraphStore

        self._graph_store = graph if isinstance(graph, GraphStore) else None
        self._original = _normalize_graph(graph)
        self.backend = resolve_backend(backend, self._original)
        if self._graph_store is not None and self.backend != "sparse":
            raise ValueError(
                "store-backed campaigns are sparse-only; "
                f"got backend={backend!r}"
            )
        self.n = int(self._original.shape[0])
        self.workers = int(workers)
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.compute_ranks = compute_ranks
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._mp = multiprocessing.get_context(mp_context)
        self._fingerprint = graph_fingerprint(self._original, self.backend)
        #: job-id lists per shard of the most recent :meth:`run` — the
        #: scaling bench groups per-job timings by worker through this.
        self.last_shards: "list[list[str]]" = []
        #: per-worker ``{"jobs", "cpu_seconds", "wall_seconds"}`` dicts from
        #: the most recent :meth:`run` (empty if every job was resumed).
        #: CPU seconds are contention-free, so they remain the honest
        #: per-worker cost signal even when workers outnumber cores.
        self.last_worker_stats: "list[dict]" = []
        #: parent-side seconds of the most recent :meth:`run` spent outside
        #: the worker drain: checkpoint load, sharding, spec capture, shard
        #: merge.  ``overhead + max(worker seconds)`` models the wall time
        #: of a run whose workers never contend for cores.
        self.last_overhead_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #
    def run(self, jobs: Iterable[AttackJob]) -> CampaignResult:
        """Execute the grid across workers; ordered, serial-identical result."""
        jobs = validate_jobs(jobs, self.n)
        if self.checkpoint_path is not None:
            completed = self._merge_and_load()
            outcomes = self._execute(jobs, completed, self.checkpoint_path.parent)
        else:
            with tempfile.TemporaryDirectory(prefix="campaign-shards-") as scratch:
                outcomes = self._execute(jobs, {}, Path(scratch))
        return outcomes

    def _execute(
        self,
        jobs: "list[AttackJob]",
        completed: "dict[str, JobOutcome]",
        shard_dir: Path,
    ) -> CampaignResult:
        resumed = sum(1 for job in jobs if job.job_id in completed)
        if resumed:
            _log.info(
                "resuming parallel campaign: %d/%d jobs checkpointed",
                resumed, len(jobs),
            )
        start = time.perf_counter()
        pending = [job for job in jobs if job.job_id not in completed]
        shards = self._shard(pending)
        self.last_shards = [[job.job_id for job in shard] for shard in shards]
        self.last_worker_stats = []
        drain_seconds = 0.0
        with _telemetry.span(
            "executor.run", workers=self.workers, jobs=len(jobs),
            resumed=resumed,
        ):
            if shards:
                drain_seconds = self._run_workers(shards, shard_dir)
                self.last_worker_stats = self._collect_stats(
                    shard_dir, len(shards)
                )
                with _telemetry.span("executor.merge", shards=len(shards)):
                    merged = self._collect(shard_dir, into=completed)
                missing = [
                    job for job in pending if job.job_id not in completed
                ]
                if missing:
                    raise RuntimeError(
                        f"parallel campaign finished with {len(missing)} jobs "
                        "unaccounted for (first missing: "
                        f"{missing[0].to_dict()!r})"
                    )
                _log.debug(
                    "merged %d outcomes from %d shards", merged, len(shards)
                )
        elapsed = time.perf_counter() - start
        self.last_overhead_seconds = max(elapsed - drain_seconds, 0.0)
        return CampaignResult(
            outcomes=[completed[job.job_id] for job in jobs],
            backend=self.backend,
            n=self.n,
            seconds=elapsed,
            resumed_jobs=resumed,
            worker_stats=list(self.last_worker_stats),
        )

    def _shard(self, pending: "list[AttackJob]") -> "list[list[AttackJob]]":
        """Round-robin shards (at most ``workers``, none empty)."""
        count = min(self.workers, len(pending))
        shards: "list[list[AttackJob]]" = [[] for _ in range(count)]
        for index, job in enumerate(pending):
            shards[index % count].append(job)
        return shards

    def _run_workers(self, shards, shard_dir: Path) -> float:
        """Spawn one process per shard; join; merge shards even on failure.

        Returns the wall seconds of the drain (start of first fork to last
        join) so :meth:`run` can separate parent overhead from worker time.
        """
        # Spec capture copies the whole graph payload (store-backed specs
        # capture only the path) — that is parent overhead (see
        # ``last_overhead_seconds``), so it runs before the drain clock
        # starts.
        shard_dir.mkdir(parents=True, exist_ok=True)
        with _telemetry.span("executor.spec", store=self._graph_store is not None):
            if self._graph_store is not None:
                spec = EngineSpec.from_store(
                    self._graph_store, kernels=self.kernels
                )
            else:
                spec = EngineSpec.from_graph(
                    self._original, backend=self.backend, kernels=self.kernels
                )
        drain_start = time.perf_counter()
        drain_span = _telemetry.span("executor.drain", workers=len(shards))
        processes = []
        with drain_span:
            for index, shard in enumerate(shards):
                args = (spec, shard, str(self._shard_path(shard_dir, index)),
                        self.compute_ranks)
                # Only extend the args tuple when tracing, so the worker
                # entry point keeps its historical positional signature
                # (tests monkeypatch it) on untraced runs.
                tspec = _telemetry.worker_spec(f"worker-{index}")
                if tspec is not None:
                    args += (tspec,)
                process = self._mp.Process(
                    target=_worker_main,
                    args=args,
                    name=f"campaign-worker-{index}",
                )
                process.start()
                processes.append(process)
            try:
                for process in processes:
                    process.join()
            except BaseException:
                # Parent interrupted (e.g. KeyboardInterrupt): stop the
                # workers; whatever they checkpointed stays on disk for the
                # next resume.
                for process in processes:
                    if process.is_alive():
                        process.terminate()
                for process in processes:
                    process.join()
                raise
        failed = [p.name for p in processes if p.exitcode != 0]
        if failed:
            if self.checkpoint_path is not None:
                # Merge what the dead workers DID complete before raising,
                # so a rerun resumes instead of repeating their work.
                self._merge_and_load()
                detail = (
                    "completed jobs were checkpointed and a rerun will "
                    "resume from them"
                )
            else:
                detail = (
                    "no checkpoint_path was set, so completed jobs were "
                    "discarded with the run — set one to make failed runs "
                    "resumable"
                )
            raise RuntimeError(
                f"campaign worker(s) {failed} exited abnormally; {detail}"
            )
        return time.perf_counter() - drain_start

    # ------------------------------------------------------------------ #
    # Shard bookkeeping
    # ------------------------------------------------------------------ #
    def _shard_path(self, shard_dir: Path, index: int) -> Path:
        stem = (
            self.checkpoint_path.name
            if self.checkpoint_path is not None
            else "campaign"
        )
        return shard_dir / f"{stem}.shard{index}"

    def _store(self, path: Path) -> CheckpointStore:
        return CheckpointStore(
            path, self._fingerprint, self.backend, self.n,
            aliases=checkpoint_aliases(self._original, self._fingerprint),
        )

    def _leftover_shards(self) -> "list[Path]":
        # Literal prefix match, NOT a glob: a checkpoint named e.g.
        # "fig4[ci].json" would turn glob metacharacters into a character
        # class and silently miss every shard.
        assert self.checkpoint_path is not None
        parent = self.checkpoint_path.parent
        if not parent.exists():
            return []
        prefix = self.checkpoint_path.name + ".shard"
        return sorted(
            path
            for path in parent.iterdir()
            if path.name.startswith(prefix) and not path.name.endswith(".stats")
        )

    def _collect_stats(self, shard_dir: Path, count: int) -> "list[dict]":
        """Read (and remove) the per-worker ``.stats`` sidecars of this run."""
        stats = []
        for index in range(count):
            path = Path(str(self._shard_path(shard_dir, index)) + ".stats")
            if not path.exists():
                continue
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError:
                payload = {}
            payload["worker"] = index
            stats.append(payload)
            path.unlink()
        return stats

    def _merge_and_load(self) -> "dict[str, JobOutcome]":
        """Fold any shard files into the main checkpoint, then load it.

        Called before scheduling (folding in a killed run's leftovers — the
        step that makes resume worker-count-independent) and after a failed
        run.  Merged shards are deleted; merging is idempotent because
        outcomes are keyed by content-hashed job id.
        """
        assert self.checkpoint_path is not None
        main = self._store(self.checkpoint_path)
        # One parse of the main file, then O(1) appends per new shard
        # outcome — merge_from would re-load the whole checkpoint per
        # shard, which is O(W · file size) on big resumed campaigns.
        outcomes = main.load()
        for shard_path in self._leftover_shards():
            for job_id, outcome in self._store(shard_path).load().items():
                if job_id not in outcomes:
                    main.append(outcome)
                    outcomes[job_id] = outcome
            shard_path.unlink()
            stale_stats = Path(str(shard_path) + ".stats")
            if stale_stats.exists():
                stale_stats.unlink()
        return outcomes

    def _collect(
        self, shard_dir: Path, into: "dict[str, JobOutcome]"
    ) -> int:
        """Merge this run's shards into the result dict (and main file).

        Returns the number of outcomes actually added to ``into`` (not the
        total checkpoint size — resumed jobs are already there).
        """
        before = len(into)
        if self.checkpoint_path is not None:
            into.update(self._merge_and_load())
            return len(into) - before
        prefix = "campaign.shard"
        shard_paths = sorted(
            path
            for path in shard_dir.iterdir()
            if path.name.startswith(prefix) and not path.name.endswith(".stats")
        )
        for shard_path in shard_paths:
            into.update(self._store(shard_path).load())
        return len(into) - before

"""GradMaxSearch (Section V-A-1): greedy gradient-guided edge flipping.

At each of the ``B`` steps the surrogate loss is differentiated w.r.t. the
*current* (discrete) adjacency matrix; among the sign-valid pairs (add needs a
negative gradient, delete a positive one) that neither repeat an earlier
modification nor create a singleton, the pair with the largest absolute
gradient is flipped.  This is the standard greedy baseline most prior
structural attacks use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.constraints import no_singleton_mask, sign_valid_mask
from repro.oddball.surrogate import adjacency_gradient, surrogate_loss_numpy
from repro.utils.logging import get_logger
from repro.utils.validation import check_budget

__all__ = ["GradMaxSearch"]

_log = get_logger("attacks.gradmax")


class GradMaxSearch(StructuralAttack):
    """Greedy structural attack driven by per-step adjacency gradients.

    Parameters
    ----------
    floor:
        Clamp floor for the log-features inside the surrogate (see
        :mod:`repro.oddball.surrogate`).

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.oddball import OddBall
    >>> graph = erdos_renyi(40, 0.15, rng=3)
    >>> targets = OddBall().analyze(graph).top_k(2).tolist()
    >>> result = GradMaxSearch().attack(graph, targets, budget=4)
    >>> len(result.flips()) <= 4
    True
    """

    name = "gradmaxsearch"

    def __init__(self, floor: float = 1.0):
        self.floor = floor

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
    ) -> AttackResult:
        adjacency = self._adjacency_of(graph)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)

        current = adjacency.copy()
        ordered_flips: list[tuple[int, int]] = []
        surrogate_by_budget = {0: surrogate_loss_numpy(adjacency, targets, target_weights)}
        modified = np.zeros((n, n), dtype=bool)  # the "pool" of used pairs

        for step in range(budget):
            gradient = adjacency_gradient(
                current, targets, floor=self.floor, weights=target_weights
            )
            valid = (
                sign_valid_mask(current, gradient)
                & no_singleton_mask(current)
                & ~modified
            )
            if not valid.any():
                _log.debug("no valid flip left after %d steps", step)
                break
            magnitude = np.where(valid, np.abs(gradient), -np.inf)
            flat = int(np.argmax(magnitude))
            u, v = divmod(flat, n)
            pair = (u, v) if u < v else (v, u)
            new_value = 1.0 - current[u, v]
            current[u, v] = current[v, u] = new_value
            modified[u, v] = modified[v, u] = True
            ordered_flips.append(pair)
            surrogate_by_budget[len(ordered_flips)] = surrogate_loss_numpy(
                current, targets, target_weights
            )

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={"steps_taken": len(ordered_flips)},
        )

"""GradMaxSearch (Section V-A-1): greedy gradient-guided edge flipping.

At each of the ``B`` steps the surrogate loss is differentiated w.r.t. the
*current* (discrete) adjacency matrix; among the sign-valid pairs (add needs a
negative gradient, delete a positive one) that neither repeat an earlier
modification nor create a singleton, the pair with the largest absolute
gradient is flipped.  This is the standard greedy baseline most prior
structural attacks use.

Two execution engines back the greedy loop:

* the **dense engine** (``candidates=None``) — the seed implementation:
  a full autograd backward pass over all ``n²`` entries per step, O(n³)
  work, exact;
* the **candidate engine** (any ``candidates``) — decision variables are
  restricted to a :class:`~repro.attacks.candidates.CandidateSet`, egonet
  features are maintained incrementally at O(deg) per flip
  (:class:`~repro.graph.incremental.IncrementalEgonetFeatures`) and the
  gradient is scattered onto candidate pairs only
  (:func:`~repro.oddball.surrogate.adjacency_gradient` with
  ``candidates``), so one greedy step costs O(m + |C|) instead of O(n³).
  With the ``full`` strategy the engine reproduces the dense path's flips
  bit-for-bit (equivalence-tested); with ``target_incident``/``two_hop``
  it prunes the search Nettack-style.  Sparse adjacency inputs are
  supported and never densified by this engine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.attacks.constraints import no_singleton_mask, sign_valid_mask
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.oddball.surrogate import (
    adjacency_gradient,
    surrogate_loss_from_features,
    surrogate_loss_numpy,
)
from repro.utils.logging import get_logger
from repro.utils.validation import check_budget

__all__ = ["GradMaxSearch"]

_log = get_logger("attacks.gradmax")


class GradMaxSearch(StructuralAttack):
    """Greedy structural attack driven by per-step adjacency gradients.

    Parameters
    ----------
    floor:
        Clamp floor for the log-features inside the surrogate (see
        :mod:`repro.oddball.surrogate`); used consistently for both the
        gradients and the per-budget surrogate bookkeeping.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.oddball import OddBall
    >>> graph = erdos_renyi(40, 0.15, rng=3)
    >>> targets = OddBall().analyze(graph).top_k(2).tolist()
    >>> result = GradMaxSearch().attack(graph, targets, budget=4)
    >>> len(result.flips()) <= 4
    True
    >>> fast = GradMaxSearch().attack(graph, targets, budget=4,
    ...                               candidates="target_incident")
    >>> len(fast.flips()) <= 4
    True
    """

    name = "gradmaxsearch"

    def __init__(self, floor: float = 1.0):
        self.floor = floor

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
    ) -> AttackResult:
        if candidates is not None:
            return self._attack_candidates(
                graph, targets, budget, target_weights, candidates
            )
        adjacency = self._adjacency_of(graph)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)

        current = adjacency.copy()
        ordered_flips: list[tuple[int, int]] = []
        surrogate_by_budget = {
            0: surrogate_loss_numpy(adjacency, targets, target_weights, floor=self.floor)
        }
        modified = np.zeros((n, n), dtype=bool)  # the "pool" of used pairs

        for step in range(budget):
            gradient = adjacency_gradient(
                current, targets, floor=self.floor, weights=target_weights
            )
            valid = (
                sign_valid_mask(current, gradient)
                & no_singleton_mask(current)
                & ~modified
            )
            if not valid.any():
                _log.debug("no valid flip left after %d steps", step)
                break
            magnitude = np.where(valid, np.abs(gradient), -np.inf)
            flat = int(np.argmax(magnitude))
            u, v = divmod(flat, n)
            pair = (u, v) if u < v else (v, u)
            new_value = 1.0 - current[u, v]
            current[u, v] = current[v, u] = new_value
            modified[u, v] = modified[v, u] = True
            ordered_flips.append(pair)
            surrogate_by_budget[len(ordered_flips)] = surrogate_loss_numpy(
                current, targets, target_weights, floor=self.floor
            )

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={"steps_taken": len(ordered_flips), "engine": "dense"},
        )

    # ------------------------------------------------------------------ #
    def _attack_candidates(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None",
        candidates: "CandidateSet | str",
    ) -> AttackResult:
        """Candidate-set engine: incremental features + scattered gradients."""
        engine = IncrementalEgonetFeatures(graph)
        n = engine.n
        targets = validate_targets(targets, n)
        budget = check_budget(budget)
        candidate_set = self._resolve_candidates(candidates, graph, targets, n)
        assert candidate_set is not None
        rows, cols = candidate_set.rows, candidate_set.cols

        ordered_flips: list[tuple[int, int]] = []
        surrogate_by_budget = {
            0: surrogate_loss_from_features(
                *engine.features(), targets, floor=self.floor, weights=target_weights
            )
        }
        modified = np.zeros(len(candidate_set), dtype=bool)
        # A pair's adjacency value only changes when the pair itself flips,
        # and flipped pairs leave the pool through ``modified`` — so the
        # per-pair edge values can be computed once instead of per step.
        edge_values = engine.edge_values(rows, cols)

        for step in range(budget):
            n_feature, e_feature = engine.features()
            gradient = adjacency_gradient(
                engine.adjacency_csr(),
                targets,
                floor=self.floor,
                weights=target_weights,
                candidates=candidate_set,
                features=(n_feature, e_feature),
            )
            sign_valid = ((edge_values == 0.0) & (gradient < 0.0)) | (
                (edge_values == 1.0) & (gradient > 0.0)
            )
            unsafe_delete = (edge_values == 1.0) & (
                (n_feature[rows] <= 1.0) | (n_feature[cols] <= 1.0)
            )
            valid = sign_valid & ~unsafe_delete & ~modified
            if not valid.any():
                _log.debug("no valid candidate flip left after %d steps", step)
                break
            magnitude = np.where(valid, np.abs(gradient), -np.inf)
            k = int(np.argmax(magnitude))
            u, v = int(rows[k]), int(cols[k])
            engine.flip(u, v)
            modified[k] = True
            ordered_flips.append((u, v))
            surrogate_by_budget[len(ordered_flips)] = surrogate_loss_from_features(
                *engine.features(), targets, floor=self.floor, weights=target_weights
            )

        original = graph if sparse.issparse(graph) else self._adjacency_of(graph)
        return self._prefix_result(
            self.name,
            original,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "steps_taken": len(ordered_flips),
                "engine": "candidates",
                "candidate_strategy": candidate_set.strategy,
                "candidate_count": len(candidate_set),
            },
        )

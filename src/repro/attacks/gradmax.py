"""GradMaxSearch (Section V-A-1): greedy gradient-guided edge flipping.

At each of the ``B`` steps the surrogate loss is differentiated w.r.t. the
*current* (discrete) adjacency matrix; among the sign-valid pairs (add needs a
negative gradient, delete a positive one) that neither repeat an earlier
modification nor create a singleton, the pair with the largest absolute
gradient is flipped.  This is the standard greedy baseline most prior
structural attacks use.

Two execution paths back the greedy loop:

* the **legacy dense loop** (``candidates=None`` with a dense-resolved
  backend) — the seed implementation: a full autograd backward pass over
  all ``n²`` entries per step, O(n³) work, exact;
* the **engine loop** (any ``candidates``, any sparse-resolved backend) —
  the greedy search runs through the shared
  :class:`~repro.oddball.surrogate.SurrogateEngine`.  With the sparse
  backend, egonet features are maintained incrementally at O(deg) per flip
  and the gradient is scattered onto candidate pairs only, so one greedy
  step costs O(m + |C|) instead of O(n³); with the dense backend the engine
  gathers the full autograd gradient at the candidate pairs (the reference
  the parity suite checks against).  With the ``full`` strategy the engine
  reproduces the dense path's flips bit-for-bit (equivalence-tested); with
  ``target_incident``/``two_hop`` it prunes the search Nettack-style.
  Sparse adjacency inputs are supported and never densified by this path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.attacks.constraints import no_singleton_mask, sign_valid_mask
from repro.kernels import validate_kernels
from repro.oddball.surrogate import (
    SurrogateEngine,
    adjacency_gradient,
    resolve_backend,
    surrogate_loss_numpy,
    validate_backend,
)
from repro.utils.logging import get_logger
from repro.utils.validation import check_budget

__all__ = ["GradMaxSearch"]

_log = get_logger("attacks.gradmax")


class GradMaxSearch(StructuralAttack):
    """Greedy structural attack driven by per-step adjacency gradients.

    Parameters
    ----------
    floor:
        Clamp floor for the log-features inside the surrogate (see
        :mod:`repro.oddball.surrogate`); used consistently for both the
        gradients and the per-budget surrogate bookkeeping.
    backend:
        Surrogate engine backend.  ``"auto"`` keeps the historical
        behaviour: the legacy dense loop for small dense inputs without
        ``candidates``, the sparse-incremental engine whenever a candidate
        set is given, the graph is scipy-sparse, or it is large.
    block_size, block_seed:
        Parameters of the ``candidates="block"`` strategy (PRBCD random
        block with gradient resampling); part of the attack's campaign-job
        identity.  Ignored for every other strategy.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.oddball import OddBall
    >>> graph = erdos_renyi(40, 0.15, rng=3)
    >>> targets = OddBall().analyze(graph).top_k(2).tolist()
    >>> result = GradMaxSearch().attack(graph, targets, budget=4)
    >>> len(result.flips()) <= 4
    True
    >>> fast = GradMaxSearch().attack(graph, targets, budget=4,
    ...                               candidates="target_incident")
    >>> len(fast.flips()) <= 4
    True
    """

    name = "gradmaxsearch"

    def __init__(self, floor: float = 1.0, backend: str = "auto",
                 kernels: str = "auto", block_size: "int | None" = None,
                 block_seed: int = 0):
        self.floor = floor
        self.backend = validate_backend(backend)
        self.kernels = validate_kernels(kernels)
        self.block_size = None if block_size is None else int(block_size)
        self.block_seed = int(block_seed)

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
        engine: "SurrogateEngine | None" = None,
    ) -> AttackResult:
        # An injected shared engine (campaign path) is retargeted in place
        # and always drives the engine loop.  Otherwise: a candidate set
        # always means the pruned engine; else fall back to the backend rule
        # (sparse/large inputs get the engine over the full pair set, small
        # dense inputs keep the legacy dense loop).
        if engine is not None:
            return self._attack_engine(
                graph, targets, budget, target_weights, candidates,
                engine.backend, engine=engine,
            )
        if candidates is not None and self.backend == "auto":
            backend = "sparse"
        else:
            backend = resolve_backend(self.backend, graph)
        if candidates is None and backend == "dense":
            return self._attack_dense(graph, targets, budget, target_weights)
        return self._attack_engine(
            graph, targets, budget, target_weights, candidates, backend
        )

    # ------------------------------------------------------------------ #
    def _attack_dense(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None",
    ) -> AttackResult:
        """Legacy full-matrix loop (the seed implementation, kept as oracle)."""
        adjacency = self._adjacency_of(graph)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)

        current = adjacency.copy()
        ordered_flips: list[tuple[int, int]] = []
        surrogate_by_budget = {
            0: surrogate_loss_numpy(adjacency, targets, target_weights, floor=self.floor)
        }
        modified = np.zeros((n, n), dtype=bool)  # the "pool" of used pairs

        for step in range(budget):
            gradient = adjacency_gradient(
                current, targets, floor=self.floor, weights=target_weights
            )
            valid = (
                sign_valid_mask(current, gradient)
                & no_singleton_mask(current)
                & ~modified
            )
            if not valid.any():
                _log.debug("no valid flip left after %d steps", step)
                break
            magnitude = np.where(valid, np.abs(gradient), -np.inf)
            flat = int(np.argmax(magnitude))
            u, v = divmod(flat, n)
            pair = (u, v) if u < v else (v, u)
            new_value = 1.0 - current[u, v]
            current[u, v] = current[v, u] = new_value
            modified[u, v] = modified[v, u] = True
            ordered_flips.append(pair)
            surrogate_by_budget[len(ordered_flips)] = surrogate_loss_numpy(
                current, targets, target_weights, floor=self.floor
            )

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={"steps_taken": len(ordered_flips), "engine": "dense"},
        )

    # ------------------------------------------------------------------ #
    def _attack_engine(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None",
        candidates: "CandidateSet | str | None",
        backend: str,
        engine: "SurrogateEngine | None" = None,
    ) -> AttackResult:
        """Greedy loop through the (possibly shared) surrogate engine."""
        adjacency = self._adjacency_of(graph, allow_sparse=True)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)
        candidate_set = self._resolve_candidates(
            candidates, adjacency, targets, n,
            budget=budget, block_size=self.block_size, block_seed=self.block_seed,
        )
        if candidate_set is None:
            candidate_set = CandidateSet.full(n)
        rows, cols = candidate_set.rows, candidate_set.cols

        if engine is None:
            engine = SurrogateEngine.create(
                adjacency,
                targets,
                candidate_set,
                backend=backend,
                floor=self.floor,
                weights=target_weights,
                kernels=self.kernels,
            )
        else:
            engine.retarget(
                targets, candidate_set, floor=self.floor, weights=target_weights
            )
        ordered_flips: list[tuple[int, int]] = []
        surrogate_by_budget = {0: engine.current_loss()}
        modified = np.zeros(len(candidate_set), dtype=bool)
        # A pair's adjacency value only changes when the pair itself flips,
        # and flipped pairs leave the pool through ``modified`` — so the
        # per-pair edge values are only recomputed when the candidate set
        # itself adapts.
        edge_values = engine.edge_values

        for step in range(budget):
            gradient = engine.candidate_gradient()
            degrees = engine.degrees()
            sign_valid = ((edge_values == 0.0) & (gradient < 0.0)) | (
                (edge_values == 1.0) & (gradient > 0.0)
            )
            unsafe_delete = (edge_values == 1.0) & (
                (degrees[rows] <= 1.0) | (degrees[cols] <= 1.0)
            )
            valid = sign_valid & ~unsafe_delete & ~modified
            if not valid.any():
                _log.debug("no valid candidate flip left after %d steps", step)
                break
            magnitude = np.where(valid, np.abs(gradient), -np.inf)
            k = int(np.argmax(magnitude))
            u, v = int(rows[k]), int(cols[k])
            engine.apply_flip(u, v)
            modified[k] = True
            ordered_flips.append((u, v))
            surrogate_by_budget[len(ordered_flips)] = engine.current_loss()
            # Per-step adaptation: the landed flip may grow the ball
            # (adaptive) or trigger a resample of the low-gradient half
            # (block).  The greedy state (``modified``) migrates via
            # ``transfer_positions`` — flipped pairs are never evicted by
            # any strategy, so no used-pair flag is ever lost; membership
            # can change at constant |C|, so equality is checked on the
            # pairs themselves.
            refreshed = candidate_set.refresh([(u, v)], engine)
            if refreshed is not candidate_set:
                if not refreshed.same_pairs(candidate_set):
                    migrated = np.zeros(len(refreshed), dtype=bool)
                    positions = refreshed.transfer_positions(rows, cols)
                    survived = positions >= 0
                    migrated[positions[survived]] = modified[survived]
                    modified = migrated
                    engine.set_candidates(refreshed)
                    rows, cols = refreshed.rows, refreshed.cols
                    edge_values = engine.edge_values
                candidate_set = refreshed

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "steps_taken": len(ordered_flips),
                "engine": "candidates",
                "backend": engine.backend,
                "candidate_strategy": candidate_set.strategy,
                "candidate_count": len(candidate_set),
            },
        )

"""Candidate pair sets: restricting the attack's decision variables.

Every attack in this package optimises over *pairs* of nodes (potential edge
flips).  The seed implementation materialised all ``n(n−1)/2`` upper-triangle
pairs, which is exact but quadratic — at the paper's full dataset scale
(Blogcatalog: 88.8k nodes) that is 3.9 **billion** decision variables.
Prior structural-attack libraries (Nettack, the GREAT toolbox) solve this
with *candidate pruning*: only pairs that can plausibly move the objective
are enumerated.  For OddBall's egonet objective, flipping ``{u, v}`` changes
the features of ``u``, ``v`` and their common neighbours only, so pairs far
from every target are useless until the graph around a target has grown.

:class:`CandidateSet` is the container threaded through
:meth:`repro.attacks.base.StructuralAttack.attack`.  Three built-in
strategies trade coverage for speed:

``full``
    Every upper-triangle pair — exact, identical to the seed behaviour.
``target_incident``
    Pairs with at least one endpoint in the target set (|C| = |T|·(n−1) −
    |T|(|T|−1)/2).  This is the Nettack-style "direct attack" restriction;
    it captures every first-order effect on the targets' own features.
``two_hop``
    All pairs inside the distance-≤2 ball around the target set.  NOT a
    superset of ``target_incident`` — the two strategies cover different
    slices: ``two_hop`` adds flips between two neighbours of a target
    (which change the target's egonet edge count ``E_t`` without touching
    its degree) and flips among two-hop nodes that reshape the regression
    fit locally, but drops pairs joining a target to a node *outside* its
    ball.  Combine both with :meth:`CandidateSet.from_pairs` when the union
    is wanted.
``adaptive``
    Starts as exactly ``target_incident`` and *grows per step*: every flip
    the attack lands pulls its endpoints into a growing ball, and each ball
    entrant contributes its incident pairs (to its current neighbours and
    to earlier ball members).  Attacks call :meth:`CandidateSet.refresh`
    after each landed flip; static strategies return themselves unchanged,
    so the hook costs nothing unless the set actually adapts.  The adaptive
    set is a superset of ``target_incident`` at every step (invariant
    tested), and reaches the neighbour-neighbour flips ``two_hop`` covers —
    but only around regions the optimiser actually visits, keeping |C|
    near-linear instead of ball-quadratic.
``adaptive_gradient``
    The same growing ball, but admissions are *gradient-informed*: instead
    of admitting every pair incident to a ball entrant, the candidate pool
    is ranked by the engine's predicted |∂L/∂A| at those pairs
    (:meth:`~repro.oddball.surrogate.SurrogateEngine.pair_gradient`) and
    only the top :data:`AdaptiveCandidateSet.GRADIENT_ADMIT_CAP` per
    refresh join the set.  Same superset-of-``target_incident`` invariant
    (growth only ever adds), with |C| growing by a bounded amount per
    landed flip instead of by O(deg) — the ROADMAP's gradient-informed
    growth policy.

Candidate pairs are canonical (``u < v``), unique and lexicographically
sorted, so ``full`` enumerates pairs in exactly the order of
``np.triu_indices(n, k=1)`` — the seed ordering — which is what makes the
candidate-set ``full`` path reproduce the legacy full-pair attacks
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.graph.graph import Graph

__all__ = ["AdaptiveCandidateSet", "CandidateSet", "CANDIDATE_STRATEGIES"]

Edge = tuple[int, int]

CANDIDATE_STRATEGIES = (
    "full", "target_incident", "two_hop", "adaptive", "adaptive_gradient"
)


def _adjacency_rows(graph) -> "tuple[int, object]":
    """(n, neighbour-lookup) from a Graph, dense array or scipy sparse matrix."""
    from scipy import sparse

    if isinstance(graph, Graph):
        matrix = graph.adjacency_view
        return matrix.shape[0], matrix
    if sparse.issparse(graph):
        # validate + drop stored explicit zeros, which are NOT neighbours
        from repro.graph.sparse import to_sparse

        csr = to_sparse(graph)
        return csr.shape[0], csr
    matrix = np.asarray(graph, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {matrix.shape}")
    return matrix.shape[0], matrix


def _node_count(graph) -> int:
    """Node count of a Graph/array/scipy-sparse input, without validation."""
    from scipy import sparse

    if isinstance(graph, Graph):
        return graph.number_of_nodes
    shape = graph.shape if sparse.issparse(graph) else np.asarray(graph).shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"adjacency must be square, got shape {shape}")
    return int(shape[0])


def _neighbors_of(matrix, node: int) -> np.ndarray:
    from scipy import sparse

    if sparse.issparse(matrix):
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        return matrix.indices[start:stop].astype(np.intp)
    return np.flatnonzero(matrix[node]).astype(np.intp)


@dataclass(frozen=True, eq=False)
class CandidateSet:
    """An immutable, canonically-ordered set of candidate pairs.

    Attributes
    ----------
    n:
        Number of nodes of the graph the pairs address.
    rows, cols:
        Aligned ``intp`` arrays with ``rows[k] < cols[k]``, lexicographically
        sorted and duplicate-free.  ``(rows[k], cols[k])`` is the k-th
        candidate pair.
    strategy:
        The name of the strategy that built the set (``"custom"`` for
        :meth:`from_pairs`).
    """

    n: int
    rows: np.ndarray
    cols: np.ndarray
    strategy: str = "custom"
    _pair_set: "frozenset[Edge] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=np.intp)
        cols = np.asarray(self.cols, dtype=np.intp)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError(
                f"rows/cols must be aligned 1-D arrays, got {rows.shape}, {cols.shape}"
            )
        if rows.size:
            if rows.min() < 0 or cols.max() >= self.n:
                raise ValueError(f"pair indices out of range [0, {self.n})")
            if np.any(rows >= cols):
                raise ValueError("candidate pairs must be canonical (u < v)")
            keys = rows * self.n + cols
            if np.any(np.diff(keys) <= 0):
                raise ValueError(
                    "candidate pairs must be lexicographically sorted and unique"
                )
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        strategy: str,
        graph,
        targets: "Sequence[int] | None" = None,
    ) -> "CandidateSet":
        """Build a candidate set with a named strategy.

        ``graph`` may be a :class:`Graph`, a dense adjacency array or a
        scipy sparse matrix; ``targets`` is required for every strategy
        except ``full``.
        """
        if strategy not in CANDIDATE_STRATEGIES:
            raise ValueError(
                f"unknown candidate strategy {strategy!r}; "
                f"choose from {CANDIDATE_STRATEGIES}"
            )
        n = _node_count(graph)
        if strategy == "full":
            return cls.full(n)
        if targets is None:
            raise ValueError(f"strategy {strategy!r} requires a target set")
        targets = sorted({int(t) for t in targets})
        if any(not 0 <= t < n for t in targets):
            raise ValueError(f"target ids out of range [0, {n})")
        if strategy == "target_incident":
            return cls.target_incident(n, targets)
        if strategy == "adaptive":
            return AdaptiveCandidateSet.start(n, targets)
        if strategy == "adaptive_gradient":
            return AdaptiveCandidateSet.start(n, targets, growth="gradient")
        # only two_hop actually walks the adjacency — resolve it lazily so
        # the index-arithmetic strategies skip the O(m) validation pass
        _, matrix = _adjacency_rows(graph)
        return cls.two_hop(matrix, targets, n=n)

    @classmethod
    def full(cls, n: int) -> "CandidateSet":
        """All upper-triangle pairs, in ``np.triu_indices`` order."""
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        rows, cols = np.triu_indices(n, k=1)
        return cls(n=n, rows=rows.astype(np.intp), cols=cols.astype(np.intp),
                   strategy="full")

    @classmethod
    def target_incident(cls, n: int, targets: Sequence[int]) -> "CandidateSet":
        """Pairs with at least one endpoint in ``targets``.

        Built vectorised (|T|·n index arithmetic + one ``np.unique``) — at
        campaign scale this runs once per job, so the Python tuple
        comprehension it replaces was a measurable per-job fixed cost.
        """
        target_list = sorted({int(t) for t in targets})
        if not target_list:
            raise ValueError("target set must not be empty")
        if target_list[0] < 0 or target_list[-1] >= n:
            raise ValueError(f"target ids out of range [0, {n})")
        t = np.asarray(target_list, dtype=np.intp)
        others = np.arange(n, dtype=np.intp)
        rows = np.minimum(t[:, None], others[None, :]).ravel()
        cols = np.maximum(t[:, None], others[None, :]).ravel()
        keys = np.unique(rows * n + cols)  # sorts + dedupes; drops nothing else
        keys = keys[keys // n != keys % n]  # remove the diagonal (v == t) keys
        return cls(
            n=n,
            rows=(keys // n).astype(np.intp),
            cols=(keys % n).astype(np.intp),
            strategy="target_incident",
        )

    @classmethod
    def two_hop(
        cls, graph, targets: Sequence[int], n: "int | None" = None
    ) -> "CandidateSet":
        """All pairs inside the distance-≤2 ball around the target set."""
        resolved_n, matrix = _adjacency_rows(graph) if n is None else (n, graph)
        target_list = sorted({int(t) for t in targets})
        if not target_list:
            raise ValueError("target set must not be empty")
        ball: set[int] = set(target_list)
        one_hop: set[int] = set()
        for t in target_list:
            one_hop.update(int(v) for v in _neighbors_of(matrix, t))
        ball.update(one_hop)
        for v in sorted(one_hop):
            ball.update(int(w) for w in _neighbors_of(matrix, v))
        # vectorised pair construction: the ball can reach thousands of nodes
        # on hub targets, and |ball|² Python tuples would dominate the attack
        nodes = np.fromiter(sorted(ball), dtype=np.intp, count=len(ball))
        i, j = np.triu_indices(len(nodes), k=1)
        # nodes is ascending, so (nodes[i], nodes[j]) is already canonical
        # and lexicographically sorted
        return cls(
            n=resolved_n, rows=nodes[i], cols=nodes[j], strategy="two_hop"
        )

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Iterable[Edge], strategy: str = "custom"
    ) -> "CandidateSet":
        """Build from explicit pairs (canonicalised, deduplicated, sorted)."""
        canonical: set[Edge] = set()
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"diagonal pair ({u}, {u}) is not a candidate")
            canonical.add((u, v) if u < v else (v, u))
        return cls._from_sorted_pairs(n, sorted(canonical), strategy)

    @classmethod
    def _from_sorted_pairs(
        cls, n: int, pairs: Sequence[Edge], strategy: str
    ) -> "CandidateSet":
        if pairs:
            rows = np.fromiter((p[0] for p in pairs), dtype=np.intp, count=len(pairs))
            cols = np.fromiter((p[1] for p in pairs), dtype=np.intp, count=len(pairs))
        else:
            rows = np.empty(0, dtype=np.intp)
            cols = np.empty(0, dtype=np.intp)
        return cls(n=n, rows=rows, cols=cols, strategy=strategy)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.rows.size)

    @property
    def is_full(self) -> bool:
        """Whether the set covers every upper-triangle pair."""
        return len(self) == self.n * (self.n - 1) // 2

    @property
    def density(self) -> float:
        """|C| over the n(n−1)/2 full-pair count."""
        total = self.n * (self.n - 1) // 2
        return len(self) / total if total else 0.0

    def pairs(self) -> list[Edge]:
        """Candidate pairs as a list of (u, v) tuples, u < v."""
        return list(zip(self.rows.tolist(), self.cols.tolist()))

    def pair_set(self) -> "frozenset[Edge]":
        """Frozen membership set (cached after the first call)."""
        cached = self.__dict__.get("_pair_set")
        if cached is None:
            cached = frozenset(self.pairs())
            object.__setattr__(self, "_pair_set", cached)
        return cached

    def __contains__(self, pair: Edge) -> bool:
        u, v = pair
        return ((u, v) if u < v else (v, u)) in self.pair_set()

    # ------------------------------------------------------------------ #
    # Per-step adaptation
    # ------------------------------------------------------------------ #
    def remap_positions(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Positions of the given canonical pairs inside this set.

        The adaptive-refresh contract is that sets only *grow*, so every
        pair of a pre-refresh set appears in the refreshed one; attacks use
        this to remap per-pair optimiser state (``Ż`` values, used-pair
        masks) onto the grown arrays with one vectorised binary search.
        Raises if any queried pair is not a member — a refresh
        implementation that dropped pairs would otherwise corrupt the
        remapped state silently.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        keys = self.rows * self.n + self.cols
        wanted = rows * self.n + cols
        positions = np.searchsorted(keys, wanted)
        if positions.size and (
            positions.max(initial=0) >= keys.size
            or not np.array_equal(keys[positions], wanted)
        ):
            raise ValueError("pairs to remap are not all members of this set")
        return positions

    def refresh(self, flips: "Sequence[Edge]", engine=None) -> "CandidateSet":
        """Hook the attacks call after ``flips`` land: maybe grow the set.

        Static strategies are immutable and return ``self`` (so the hook is
        free); :class:`AdaptiveCandidateSet` returns a grown set.  ``engine``
        is the live :class:`~repro.oddball.surrogate.SurrogateEngine`, used
        for neighbour lookups against the *current* (partially poisoned)
        graph.
        """
        return self


@dataclass(frozen=True, eq=False)
class AdaptiveCandidateSet(CandidateSet):
    """A candidate set that grows its ball as the attack's flips land.

    ``ball`` is the set of nodes whose incident pairs have been admitted;
    it starts as the target set (so the pairs start as exactly
    ``target_incident`` — the containment invariant the tests pin down) and
    every landed flip pulls its endpoints in.  A ball entrant ``w``
    contributes the pairs ``(w, x)`` for ``x ∈ Γ(w) ∪ ball`` — its current
    neighbours (the egonet-internal flips that move ``E`` without moving
    degree, which is what the OddBall objective rewards) plus the earlier
    ball members (so locally-discovered structure can be rewired).

    With ``growth="gradient"`` (strategy name ``adaptive_gradient``) the
    same pool of would-be admissions is *ranked* by the engine's predicted
    |∂L/∂A| at each pair (one
    :meth:`~repro.oddball.surrogate.SurrogateEngine.pair_gradient` call per
    refresh) and only the top :data:`GRADIENT_ADMIT_CAP` join — the set
    stays focused on pairs the objective actually responds to, growing by a
    bounded amount per landed flip instead of by the entrant's degree.

    Instances are immutable like every :class:`CandidateSet`;
    :meth:`refresh` returns a *new* set and the attacks re-point their
    engine at it (:meth:`~repro.oddball.surrogate.SurrogateEngine.set_candidates`).
    """

    ball: "frozenset[int]" = frozenset()
    growth: str = "adjacency"

    #: Pairs admitted per gradient-informed refresh (ties broken by
    #: canonical pair order, so refreshes are deterministic).
    GRADIENT_ADMIT_CAP = 32

    @classmethod
    def start(
        cls, n: int, targets: Sequence[int], growth: str = "adjacency"
    ) -> "AdaptiveCandidateSet":
        """The initial set: exactly ``target_incident`` over ``targets``.

        ``growth`` selects the admission policy for later refreshes:
        ``"adjacency"`` (every incident pair of a ball entrant) or
        ``"gradient"`` (top-|∂L/∂A| pairs of the same pool).
        """
        if growth not in ("adjacency", "gradient"):
            raise ValueError(
                f"unknown adaptive growth policy {growth!r}; "
                "choose 'adjacency' or 'gradient'"
            )
        base = CandidateSet.target_incident(n, targets)
        return cls(
            n=n,
            rows=base.rows,
            cols=base.cols,
            strategy="adaptive" if growth == "adjacency" else "adaptive_gradient",
            ball=frozenset(int(t) for t in targets),
            growth=growth,
        )

    def refresh(self, flips: "Sequence[Edge]", engine=None) -> "CandidateSet":
        """Grow the ball with the endpoints of ``flips``; returns a new set.

        O(Σ_{w new} deg(w) + |C| log |C|) per call (plus one engine
        ``pair_gradient`` evaluation over the pool under the gradient
        policy); ``self`` is returned unchanged when no flip endpoint is
        new.  The result is always a superset of the current set (the
        invariant :meth:`CandidateSet.remap_positions` relies on).
        """
        new_nodes = sorted(
            {int(w) for pair in flips for w in pair} - self.ball
        )
        if not new_nodes:
            return self
        if engine is None:
            raise ValueError(
                "adaptive candidate refresh needs a surrogate engine for "
                "neighbour lookups"
            )
        ball = set(self.ball)
        additions: set[Edge] = set()
        for w in new_nodes:
            partners = set(int(x) for x in engine.neighbors(w)) | ball
            partners.discard(w)
            additions.update((w, x) if w < x else (x, w) for x in partners)
            ball.add(w)
        old_keys = self.rows * self.n + self.cols
        if additions:
            add_keys = np.fromiter(
                (u * self.n + v for u, v in additions),
                dtype=np.intp,
                count=len(additions),
            )
            add_keys = np.setdiff1d(add_keys, old_keys, assume_unique=False)
            if self.growth == "gradient":
                add_keys = self._rank_by_gradient(add_keys, engine)
            keys = np.union1d(old_keys, add_keys)
        else:
            keys = old_keys
        return AdaptiveCandidateSet(
            n=self.n,
            rows=(keys // self.n).astype(np.intp),
            cols=(keys % self.n).astype(np.intp),
            strategy=self.strategy,
            ball=frozenset(ball),
            growth=self.growth,
        )

    def _rank_by_gradient(self, add_keys: np.ndarray, engine) -> np.ndarray:
        """The top-|∂L/∂A| slice of the admission pool (gradient policy).

        The engine evaluates its closed-form gradient at the *candidate*
        pool pairs — pairs that are not yet decision variables — and only
        the :data:`GRADIENT_ADMIT_CAP` strongest predicted movers are
        admitted.  Sorting is on (−|g|, key): deterministic under ties.
        """
        if add_keys.size <= self.GRADIENT_ADMIT_CAP:
            return add_keys
        rows = (add_keys // self.n).astype(np.intp)
        cols = (add_keys % self.n).astype(np.intp)
        magnitude = np.abs(engine.pair_gradient(rows, cols))
        order = np.lexsort((add_keys, -magnitude))
        return add_keys[order[: self.GRADIENT_ADMIT_CAP]]

"""Candidate pair sets: restricting the attack's decision variables.

Every attack in this package optimises over *pairs* of nodes (potential edge
flips).  The seed implementation materialised all ``n(n−1)/2`` upper-triangle
pairs, which is exact but quadratic — at the paper's full dataset scale
(Blogcatalog: 88.8k nodes) that is 3.9 **billion** decision variables.
Prior structural-attack libraries (Nettack, the GREAT toolbox) solve this
with *candidate pruning*: only pairs that can plausibly move the objective
are enumerated.  For OddBall's egonet objective, flipping ``{u, v}`` changes
the features of ``u``, ``v`` and their common neighbours only, so pairs far
from every target are useless until the graph around a target has grown.

:class:`CandidateSet` is the container threaded through
:meth:`repro.attacks.base.StructuralAttack.attack`.  Three built-in
strategies trade coverage for speed:

``full``
    Every upper-triangle pair — exact, identical to the seed behaviour.
``target_incident``
    Pairs with at least one endpoint in the target set (|C| = |T|·(n−1) −
    |T|(|T|−1)/2).  This is the Nettack-style "direct attack" restriction;
    it captures every first-order effect on the targets' own features.
``two_hop``
    All pairs inside the distance-≤2 ball around the target set.  NOT a
    superset of ``target_incident`` — the two strategies cover different
    slices: ``two_hop`` adds flips between two neighbours of a target
    (which change the target's egonet edge count ``E_t`` without touching
    its degree) and flips among two-hop nodes that reshape the regression
    fit locally, but drops pairs joining a target to a node *outside* its
    ball.  Combine both with :meth:`CandidateSet.from_pairs` when the union
    is wanted.
``adaptive``
    Starts as exactly ``target_incident`` and *grows per step*: every flip
    the attack lands pulls its endpoints into a growing ball, and each ball
    entrant contributes its incident pairs (to its current neighbours and
    to earlier ball members).  Attacks call :meth:`CandidateSet.refresh`
    after each landed flip; static strategies return themselves unchanged,
    so the hook costs nothing unless the set actually adapts.  The adaptive
    set is a superset of ``target_incident`` at every step (invariant
    tested), and reaches the neighbour-neighbour flips ``two_hop`` covers —
    but only around regions the optimiser actually visits, keeping |C|
    near-linear instead of ball-quadratic.
``adaptive_gradient``
    The same growing ball, but admissions are *gradient-informed*: instead
    of admitting every pair incident to a ball entrant, the candidate pool
    is ranked by the engine's predicted |∂L/∂A| at those pairs
    (:meth:`~repro.oddball.surrogate.SurrogateEngine.pair_gradient`) and
    only the top :func:`admission_cap` per refresh join the set.  Same
    superset-of-``target_incident`` invariant (growth only ever adds),
    with |C| growing by a bounded amount per landed flip instead of by
    O(deg) — the ROADMAP's gradient-informed growth policy.
``block``
    PRBCD-style randomized block coordinate descent ("Robustness of GNNs
    at Scale"): the decision variables are a seeded uniform random *block*
    of at most ``block_size`` pairs drawn (with replacement, then deduped)
    from all n(n−1)/2, so memory is O(block_size) **independent of n** —
    the only strategy that scales to the 88.8k-node store graphs without
    target-locality assumptions.  Each :meth:`~CandidateSet.refresh`
    re-ranks the live block by |∂L/∂A|, keeps the top half plus every
    already-flipped pair (flips are never evicted — the invariant the
    attacks' state transfer relies on), and resamples the remainder from a
    fresh deterministic draw.  Unlike the adaptive strategies a refresh
    both adds AND drops pairs; attacks migrate per-pair optimiser state
    with :meth:`CandidateSet.transfer_positions` instead of
    :meth:`~CandidateSet.remap_positions`.  When ``block_size`` covers
    every pair the block degenerates to exactly ``full`` (same pairs, same
    order, refresh is a no-op), which is the parity anchor the tests pin.

Admission and block sizing share one budget-aware policy
(:func:`admission_cap`, :func:`default_block_size`): both scale with the
attack budget, and λ-awareness enters through the ranking itself — the
engine's ``pair_gradient`` is the λ-regularised surrogate gradient, so a
sweep's sparsity pressure directly shapes which pairs survive a refresh.
(The former ``AdaptiveCandidateSet.GRADIENT_ADMIT_CAP`` class constant is
retired in favour of this policy.)

Candidate pairs are canonical (``u < v``), unique and lexicographically
sorted, so ``full`` enumerates pairs in exactly the order of
``np.triu_indices(n, k=1)`` — the seed ordering — which is what makes the
candidate-set ``full`` path reproduce the legacy full-pair attacks
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.graph.graph import Graph

__all__ = [
    "AdaptiveCandidateSet",
    "BlockCandidateSet",
    "CandidateSet",
    "CANDIDATE_STRATEGIES",
    "admission_cap",
    "default_block_size",
]

Edge = tuple[int, int]

CANDIDATE_STRATEGIES = (
    "full", "target_incident", "two_hop", "adaptive", "adaptive_gradient",
    "block",
)

#: Baseline per-refresh admission count of the gradient-ranked adaptive
#: policy (the retired ``GRADIENT_ADMIT_CAP`` default, kept as the floor of
#: the budget-aware :func:`admission_cap`).
DEFAULT_ADMIT_CAP = 32

#: Baseline block size of the ``block`` strategy when no explicit
#: ``block_size`` is given — small enough that the per-refresh gradient
#: scatter stays cheap, large enough to cover every pair outright below
#: n ≈ 256 (where blocks degenerate to ``full``).
DEFAULT_BLOCK_SIZE = 32_768


def admission_cap(budget: "int | None" = None) -> int:
    """Per-refresh admission count of the gradient-ranked growth policy.

    The unified budget-aware rule that retired the fixed
    ``GRADIENT_ADMIT_CAP`` constant: a larger flip budget explores more of
    the graph, so each refresh may admit proportionally more pairs
    (``8·budget``, floored at :data:`DEFAULT_ADMIT_CAP` so small budgets
    keep the historical behaviour bit-for-bit).  λ-awareness needs no knob
    here — ranking uses the engine's λ-regularised ``pair_gradient``, so
    sparsity pressure already shapes which pairs win the cap.
    """
    if budget is None:
        return DEFAULT_ADMIT_CAP
    return max(DEFAULT_ADMIT_CAP, 8 * int(budget))


def default_block_size(n: int, budget: "int | None" = None) -> int:
    """Default ``block`` size: budget-scaled, clamped to the full pair count.

    Shares the shape of :func:`admission_cap` — more budget, more
    simultaneous decision variables — with a much larger floor because the
    block is the *entire* variable set, not a per-refresh increment.
    """
    total = n * (n - 1) // 2
    if budget is None:
        return min(total, DEFAULT_BLOCK_SIZE)
    return min(total, max(DEFAULT_BLOCK_SIZE, 4096 * int(budget)))


def _adjacency_rows(graph) -> "tuple[int, object]":
    """(n, neighbour-lookup) from a Graph, dense array or scipy sparse matrix."""
    from scipy import sparse

    if isinstance(graph, Graph):
        matrix = graph.adjacency_view
        return matrix.shape[0], matrix
    if sparse.issparse(graph):
        # validate + drop stored explicit zeros, which are NOT neighbours
        from repro.graph.sparse import to_sparse

        csr = to_sparse(graph)
        return csr.shape[0], csr
    matrix = np.asarray(graph, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {matrix.shape}")
    return matrix.shape[0], matrix


def _node_count(graph) -> int:
    """Node count of a Graph/array/scipy-sparse input, without validation."""
    from scipy import sparse

    if isinstance(graph, Graph):
        return graph.number_of_nodes
    shape = graph.shape if sparse.issparse(graph) else np.asarray(graph).shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"adjacency must be square, got shape {shape}")
    return int(shape[0])


def _neighbors_of(matrix, node: int) -> np.ndarray:
    from scipy import sparse

    if sparse.issparse(matrix):
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        return matrix.indices[start:stop].astype(np.intp)
    return np.flatnonzero(matrix[node]).astype(np.intp)


@dataclass(frozen=True, eq=False)
class CandidateSet:
    """An immutable, canonically-ordered set of candidate pairs.

    Attributes
    ----------
    n:
        Number of nodes of the graph the pairs address.
    rows, cols:
        Aligned ``intp`` arrays with ``rows[k] < cols[k]``, lexicographically
        sorted and duplicate-free.  ``(rows[k], cols[k])`` is the k-th
        candidate pair.
    strategy:
        The name of the strategy that built the set (``"custom"`` for
        :meth:`from_pairs`).
    """

    n: int
    rows: np.ndarray
    cols: np.ndarray
    strategy: str = "custom"
    _pair_set: "frozenset[Edge] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=np.intp)
        cols = np.asarray(self.cols, dtype=np.intp)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError(
                f"rows/cols must be aligned 1-D arrays, got {rows.shape}, {cols.shape}"
            )
        if rows.size:
            if rows.min() < 0 or cols.max() >= self.n:
                raise ValueError(f"pair indices out of range [0, {self.n})")
            if np.any(rows >= cols):
                raise ValueError("candidate pairs must be canonical (u < v)")
            keys = rows * self.n + cols
            if np.any(np.diff(keys) <= 0):
                raise ValueError(
                    "candidate pairs must be lexicographically sorted and unique"
                )
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        strategy: str,
        graph,
        targets: "Sequence[int] | None" = None,
        budget: "int | None" = None,
        block_size: "int | None" = None,
        block_seed: int = 0,
    ) -> "CandidateSet":
        """Build a candidate set with a named strategy.

        ``graph`` may be a :class:`Graph`, a dense adjacency array or a
        scipy sparse matrix; ``targets`` is required for every strategy
        except ``full`` and ``block`` (global random sampling needs no
        locality seed — targets are accepted and ignored).  ``budget``
        feeds the budget-aware sizing policies (:func:`admission_cap` for
        ``adaptive_gradient``, :func:`default_block_size` for ``block``);
        ``block_size``/``block_seed`` parametrise ``block`` only.
        """
        if strategy not in CANDIDATE_STRATEGIES:
            raise ValueError(
                f"unknown candidate strategy {strategy!r}; "
                f"choose from {CANDIDATE_STRATEGIES}"
            )
        n = _node_count(graph)
        if strategy == "full":
            return cls.full(n)
        if strategy == "block":
            return BlockCandidateSet.start(
                n, block_size=block_size, seed=block_seed, budget=budget
            )
        if targets is None:
            raise ValueError(f"strategy {strategy!r} requires a target set")
        targets = sorted({int(t) for t in targets})
        if any(not 0 <= t < n for t in targets):
            raise ValueError(f"target ids out of range [0, {n})")
        if strategy == "target_incident":
            return cls.target_incident(n, targets)
        if strategy == "adaptive":
            return AdaptiveCandidateSet.start(n, targets)
        if strategy == "adaptive_gradient":
            return AdaptiveCandidateSet.start(
                n, targets, growth="gradient", admit_cap=admission_cap(budget)
            )
        # only two_hop actually walks the adjacency — resolve it lazily so
        # the index-arithmetic strategies skip the O(m) validation pass
        _, matrix = _adjacency_rows(graph)
        return cls.two_hop(matrix, targets, n=n)

    @classmethod
    def full(cls, n: int) -> "CandidateSet":
        """All upper-triangle pairs, in ``np.triu_indices`` order."""
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        rows, cols = np.triu_indices(n, k=1)
        return cls(n=n, rows=rows.astype(np.intp), cols=cols.astype(np.intp),
                   strategy="full")

    @classmethod
    def target_incident(cls, n: int, targets: Sequence[int]) -> "CandidateSet":
        """Pairs with at least one endpoint in ``targets``.

        Built vectorised (|T|·n index arithmetic + one ``np.unique``) — at
        campaign scale this runs once per job, so the Python tuple
        comprehension it replaces was a measurable per-job fixed cost.
        """
        target_list = sorted({int(t) for t in targets})
        if not target_list:
            raise ValueError("target set must not be empty")
        if target_list[0] < 0 or target_list[-1] >= n:
            raise ValueError(f"target ids out of range [0, {n})")
        t = np.asarray(target_list, dtype=np.intp)
        others = np.arange(n, dtype=np.intp)
        rows = np.minimum(t[:, None], others[None, :]).ravel()
        cols = np.maximum(t[:, None], others[None, :]).ravel()
        keys = np.unique(rows * n + cols)  # sorts + dedupes; drops nothing else
        keys = keys[keys // n != keys % n]  # remove the diagonal (v == t) keys
        return cls(
            n=n,
            rows=(keys // n).astype(np.intp),
            cols=(keys % n).astype(np.intp),
            strategy="target_incident",
        )

    @classmethod
    def two_hop(
        cls, graph, targets: Sequence[int], n: "int | None" = None
    ) -> "CandidateSet":
        """All pairs inside the distance-≤2 ball around the target set."""
        resolved_n, matrix = _adjacency_rows(graph) if n is None else (n, graph)
        target_list = sorted({int(t) for t in targets})
        if not target_list:
            raise ValueError("target set must not be empty")
        ball: set[int] = set(target_list)
        one_hop: set[int] = set()
        for t in target_list:
            one_hop.update(int(v) for v in _neighbors_of(matrix, t))
        ball.update(one_hop)
        for v in sorted(one_hop):
            ball.update(int(w) for w in _neighbors_of(matrix, v))
        # vectorised pair construction: the ball can reach thousands of nodes
        # on hub targets, and |ball|² Python tuples would dominate the attack
        nodes = np.fromiter(sorted(ball), dtype=np.intp, count=len(ball))
        i, j = np.triu_indices(len(nodes), k=1)
        # nodes is ascending, so (nodes[i], nodes[j]) is already canonical
        # and lexicographically sorted
        return cls(
            n=resolved_n, rows=nodes[i], cols=nodes[j], strategy="two_hop"
        )

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Iterable[Edge], strategy: str = "custom"
    ) -> "CandidateSet":
        """Build from explicit pairs (canonicalised, deduplicated, sorted)."""
        canonical: set[Edge] = set()
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"diagonal pair ({u}, {u}) is not a candidate")
            canonical.add((u, v) if u < v else (v, u))
        return cls._from_sorted_pairs(n, sorted(canonical), strategy)

    @classmethod
    def _from_sorted_pairs(
        cls, n: int, pairs: Sequence[Edge], strategy: str
    ) -> "CandidateSet":
        if pairs:
            rows = np.fromiter((p[0] for p in pairs), dtype=np.intp, count=len(pairs))
            cols = np.fromiter((p[1] for p in pairs), dtype=np.intp, count=len(pairs))
        else:
            rows = np.empty(0, dtype=np.intp)
            cols = np.empty(0, dtype=np.intp)
        return cls(n=n, rows=rows, cols=cols, strategy=strategy)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.rows.size)

    @property
    def is_full(self) -> bool:
        """Whether the set covers every upper-triangle pair."""
        return len(self) == self.n * (self.n - 1) // 2

    @property
    def density(self) -> float:
        """|C| over the n(n−1)/2 full-pair count."""
        total = self.n * (self.n - 1) // 2
        return len(self) / total if total else 0.0

    def pairs(self) -> list[Edge]:
        """Candidate pairs as a list of (u, v) tuples, u < v."""
        return list(zip(self.rows.tolist(), self.cols.tolist()))

    def pair_set(self) -> "frozenset[Edge]":
        """Frozen membership set (cached after the first call)."""
        cached = self.__dict__.get("_pair_set")
        if cached is None:
            cached = frozenset(self.pairs())
            object.__setattr__(self, "_pair_set", cached)
        return cached

    def __contains__(self, pair: Edge) -> bool:
        u, v = pair
        return ((u, v) if u < v else (v, u)) in self.pair_set()

    # ------------------------------------------------------------------ #
    # Per-step adaptation
    # ------------------------------------------------------------------ #
    def remap_positions(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Positions of the given canonical pairs inside this set.

        The adaptive-refresh contract is that sets only *grow*, so every
        pair of a pre-refresh set appears in the refreshed one; attacks use
        this to remap per-pair optimiser state (``Ż`` values, used-pair
        masks) onto the grown arrays with one vectorised binary search.
        Raises if any queried pair is not a member — a refresh
        implementation that dropped pairs would otherwise corrupt the
        remapped state silently.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        keys = self.rows * self.n + self.cols
        wanted = rows * self.n + cols
        positions = np.searchsorted(keys, wanted)
        if positions.size and (
            positions.max(initial=0) >= keys.size
            or not np.array_equal(keys[positions], wanted)
        ):
            raise ValueError("pairs to remap are not all members of this set")
        return positions

    def transfer_positions(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Positions of the given canonical pairs in this set, −1 where absent.

        The resampling counterpart of :meth:`remap_positions`: a ``block``
        refresh both admits and *evicts* pairs, so state transfer must
        tolerate pairs that left the set.  Attacks scatter surviving state
        through the non-negative entries and re-initialise the rest.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        keys = self.rows * self.n + self.cols
        wanted = rows * self.n + cols
        positions = np.searchsorted(keys, wanted)
        if keys.size == 0:
            return np.full(wanted.shape, -1, dtype=np.intp)
        clipped = np.minimum(positions, keys.size - 1)
        return np.where(keys[clipped] == wanted, clipped, -1).astype(np.intp)

    def same_pairs(self, other: "CandidateSet") -> bool:
        """Whether ``other`` holds exactly the same pairs in the same order.

        (Canonical ordering makes order equality equal to set equality.)
        The attacks' per-step adaptation uses this — not ``len()`` equality,
        which a resampling refresh can preserve while changing membership —
        to decide whether optimiser state needs migrating.
        """
        return (
            self.n == other.n
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
        )

    def refresh(self, flips: "Sequence[Edge]", engine=None) -> "CandidateSet":
        """Hook the attacks call after ``flips`` land: maybe grow the set.

        Static strategies are immutable and return ``self`` (so the hook is
        free); :class:`AdaptiveCandidateSet` returns a grown set.  ``engine``
        is the live :class:`~repro.oddball.surrogate.SurrogateEngine`, used
        for neighbour lookups against the *current* (partially poisoned)
        graph.
        """
        return self


@dataclass(frozen=True, eq=False)
class AdaptiveCandidateSet(CandidateSet):
    """A candidate set that grows its ball as the attack's flips land.

    ``ball`` is the set of nodes whose incident pairs have been admitted;
    it starts as the target set (so the pairs start as exactly
    ``target_incident`` — the containment invariant the tests pin down) and
    every landed flip pulls its endpoints in.  A ball entrant ``w``
    contributes the pairs ``(w, x)`` for ``x ∈ Γ(w) ∪ ball`` — its current
    neighbours (the egonet-internal flips that move ``E`` without moving
    degree, which is what the OddBall objective rewards) plus the earlier
    ball members (so locally-discovered structure can be rewired).

    With ``growth="gradient"`` (strategy name ``adaptive_gradient``) the
    same pool of would-be admissions is *ranked* by the engine's predicted
    |∂L/∂A| at each pair (one
    :meth:`~repro.oddball.surrogate.SurrogateEngine.pair_gradient` call per
    refresh) and only the top ``admit_cap`` join (default
    :func:`admission_cap`) — the set stays focused on pairs the objective
    actually responds to, growing by a bounded amount per landed flip
    instead of by the entrant's degree.

    Instances are immutable like every :class:`CandidateSet`;
    :meth:`refresh` returns a *new* set and the attacks re-point their
    engine at it (:meth:`~repro.oddball.surrogate.SurrogateEngine.set_candidates`).
    """

    ball: "frozenset[int]" = frozenset()
    growth: str = "adjacency"
    #: Pairs admitted per gradient-informed refresh (ties broken by
    #: canonical pair order, so refreshes are deterministic).  Sized by the
    #: budget-aware :func:`admission_cap` policy when built via
    #: :meth:`CandidateSet.build`.
    admit_cap: int = DEFAULT_ADMIT_CAP

    @classmethod
    def start(
        cls,
        n: int,
        targets: Sequence[int],
        growth: str = "adjacency",
        admit_cap: int = DEFAULT_ADMIT_CAP,
    ) -> "AdaptiveCandidateSet":
        """The initial set: exactly ``target_incident`` over ``targets``.

        ``growth`` selects the admission policy for later refreshes:
        ``"adjacency"`` (every incident pair of a ball entrant) or
        ``"gradient"`` (top-|∂L/∂A| pairs of the same pool, at most
        ``admit_cap`` per refresh).
        """
        if growth not in ("adjacency", "gradient"):
            raise ValueError(
                f"unknown adaptive growth policy {growth!r}; "
                "choose 'adjacency' or 'gradient'"
            )
        if admit_cap < 1:
            raise ValueError(f"admit_cap must be >= 1, got {admit_cap}")
        base = CandidateSet.target_incident(n, targets)
        return cls(
            n=n,
            rows=base.rows,
            cols=base.cols,
            strategy="adaptive" if growth == "adjacency" else "adaptive_gradient",
            ball=frozenset(int(t) for t in targets),
            growth=growth,
            admit_cap=int(admit_cap),
        )

    def refresh(self, flips: "Sequence[Edge]", engine=None) -> "CandidateSet":
        """Grow the ball with the endpoints of ``flips``; returns a new set.

        O(Σ_{w new} deg(w) + |C| log |C|) per call (plus one engine
        ``pair_gradient`` evaluation over the pool under the gradient
        policy); ``self`` is returned unchanged when no flip endpoint is
        new.  The result is always a superset of the current set (the
        invariant :meth:`CandidateSet.remap_positions` relies on).
        """
        new_nodes = sorted(
            {int(w) for pair in flips for w in pair} - self.ball
        )
        if not new_nodes:
            return self
        if engine is None:
            raise ValueError(
                "adaptive candidate refresh needs a surrogate engine for "
                "neighbour lookups"
            )
        ball = set(self.ball)
        additions: set[Edge] = set()
        for w in new_nodes:
            partners = set(int(x) for x in engine.neighbors(w)) | ball
            partners.discard(w)
            additions.update((w, x) if w < x else (x, w) for x in partners)
            ball.add(w)
        old_keys = self.rows * self.n + self.cols
        if additions:
            add_keys = np.fromiter(
                (u * self.n + v for u, v in additions),
                dtype=np.intp,
                count=len(additions),
            )
            add_keys = np.setdiff1d(add_keys, old_keys, assume_unique=False)
            if self.growth == "gradient":
                add_keys = self._rank_by_gradient(add_keys, engine)
            keys = np.union1d(old_keys, add_keys)
        else:
            keys = old_keys
        _telemetry.count("candidates.admissions", int(keys.size - old_keys.size))
        return AdaptiveCandidateSet(
            n=self.n,
            rows=(keys // self.n).astype(np.intp),
            cols=(keys % self.n).astype(np.intp),
            strategy=self.strategy,
            ball=frozenset(ball),
            growth=self.growth,
            admit_cap=self.admit_cap,
        )

    def _rank_by_gradient(self, add_keys: np.ndarray, engine) -> np.ndarray:
        """The top-|∂L/∂A| slice of the admission pool (gradient policy).

        The engine evaluates its closed-form gradient at the *candidate*
        pool pairs — pairs that are not yet decision variables — and only
        the ``admit_cap`` strongest predicted movers are admitted.
        """
        if add_keys.size <= self.admit_cap:
            return add_keys
        order = _gradient_order(self.n, add_keys, engine)
        return add_keys[order[: self.admit_cap]]


def _gradient_order(n: int, keys: np.ndarray, engine) -> np.ndarray:
    """Indices sorting ``keys`` by descending |∂L/∂A| at their pairs.

    The one ranking rule both gradient-aware policies (adaptive admission
    and block retention) share.  Sorting is on (−|g|, key): deterministic
    under ties, backend-independent because the engines' ``pair_gradient``
    implementations agree bit-for-bit.
    """
    rows = (keys // n).astype(np.intp)
    cols = (keys % n).astype(np.intp)
    magnitude = np.abs(engine.pair_gradient(rows, cols))
    return np.lexsort((keys, -magnitude))


def _sample_pair_keys(n: int, count: int, seed: int, draw: int) -> np.ndarray:
    """``count`` uniform random canonical-pair keys (sorted, deduplicated).

    Sampling is *with replacement* over triangular ranks in
    [0, n(n−1)/2), then deduplicated — the PRBCD recipe — so the result
    may hold fewer than ``count`` keys.  The generator is seeded from
    ``(seed, draw)``: every (seed, draw) pair maps to one fixed block on
    every platform/backend, which is what makes block attacks
    checkpoint-resumable and their flip sets reproducible per seed.
    """
    if count <= 0:
        return np.empty(0, dtype=np.intp)
    total = n * (n - 1) // 2
    rng = np.random.default_rng([int(seed), int(draw)])
    ranks = np.unique(rng.integers(0, total, size=count, dtype=np.int64))
    # Invert the triangular rank: row i owns ranks [S(i), S(i+1)) where
    # S(i) = i·n − i(i+1)/2.  The float solve of the quadratic is within
    # ±1 of the true row; the two fix-up loops each run at most twice.
    approx = (2 * n - 1 - np.sqrt((2.0 * n - 1) ** 2 - 8.0 * ranks)) / 2.0
    i = np.clip(np.floor(approx).astype(np.int64), 0, n - 2)

    def _row_start(row: np.ndarray) -> np.ndarray:
        return row * n - row * (row + 1) // 2

    overshoot = _row_start(i) > ranks
    while overshoot.any():
        i[overshoot] -= 1
        overshoot = _row_start(i) > ranks
    undershoot = _row_start(i + 1) <= ranks
    while undershoot.any():
        i[undershoot] += 1
        undershoot = _row_start(i + 1) <= ranks
    j = ranks - _row_start(i) + i + 1
    return (i * n + j).astype(np.intp)


@dataclass(frozen=True, eq=False)
class BlockCandidateSet(CandidateSet):
    """A PRBCD random block of candidate pairs with gradient resampling.

    The block is a seeded uniform draw of at most ``block_size`` canonical
    pairs over the *whole* upper triangle — no target locality, so memory
    and per-step cost are O(block_size) regardless of n.  Every
    :meth:`refresh` call:

    1. folds the newly landed flips into ``flipped`` (once flipped, a pair
       stays in the block forever — its optimiser state must survive);
    2. ranks the current block by |∂L/∂A| (:func:`_gradient_order`) and
       keeps the top ``block_size // 2`` plus all flipped pairs;
    3. draws a fresh deterministic sample (``draw + 1``) to refill up to
       ``block_size``.

    Determinism: the k-th refresh of a block started with ``seed`` always
    evaluates generator ``(seed, k)``, so identical seeds yield identical
    candidate sequences across backends, kernels, and resumed checkpoints.

    Degenerate case: when ``block_size`` covers all n(n−1)/2 pairs the
    block *is* ``full`` (same pairs, same ``np.triu_indices`` order) and
    :meth:`refresh` returns ``self`` — block attacks then match full-pair
    attacks bit-for-bit (parity-tested for every shared-engine attack).
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    seed: int = 0
    draw: int = 0
    flipped: "frozenset[Edge]" = frozenset()

    @classmethod
    def start(
        cls,
        n: int,
        block_size: "int | None" = None,
        seed: int = 0,
        budget: "int | None" = None,
    ) -> "BlockCandidateSet":
        """Draw the initial block (draw 0) of at most ``block_size`` pairs.

        ``block_size=None`` applies :func:`default_block_size`; explicit
        sizes are clamped to the full pair count (asking for more than
        every pair is the documented degenerate-``full`` mode, not an
        error).
        """
        if n < 2:
            raise ValueError(f"block candidates need >= 2 nodes, got {n}")
        total = n * (n - 1) // 2
        if block_size is None:
            block_size = default_block_size(n, budget)
        block_size = int(block_size)
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        block_size = min(block_size, total)
        if block_size == total:
            rows, cols = np.triu_indices(n, k=1)
            keys = None
        else:
            keys = _sample_pair_keys(n, block_size, seed, 0)
            rows = (keys // n).astype(np.intp)
            cols = (keys % n).astype(np.intp)
        return cls(
            n=n,
            rows=rows.astype(np.intp),
            cols=cols.astype(np.intp),
            strategy="block",
            block_size=block_size,
            seed=int(seed),
            draw=0,
        )

    @property
    def is_degenerate_full(self) -> bool:
        """Whether the block covers every pair (the ``full``-parity mode)."""
        return self.block_size >= self.n * (self.n - 1) // 2

    def refresh(self, flips: "Sequence[Edge]", engine=None) -> "CandidateSet":
        """Resample the low-|gradient| half of the block; returns a new set.

        Keeps the top ``block_size // 2`` pairs by current |∂L/∂A| plus
        every pair ever flipped, then refills from draw ``draw + 1``.
        |result| ≤ ``block_size`` always; flipped pairs are never evicted.
        Degenerate-full blocks return ``self`` (nothing to resample).
        """
        if self.is_degenerate_full:
            return self
        if engine is None:
            raise ValueError(
                "block candidate refresh needs a surrogate engine for "
                "gradient ranking"
            )
        flipped = set(self.flipped)
        for u, v in flips:
            u, v = int(u), int(v)
            flipped.add((u, v) if u < v else (v, u))
        keys = self.rows * self.n + self.cols
        keep = min(self.block_size // 2, keys.size)
        order = _gradient_order(self.n, keys, engine)
        kept = keys[order[:keep]]
        if flipped:
            flip_keys = np.fromiter(
                (u * self.n + v for u, v in flipped),
                dtype=np.intp,
                count=len(flipped),
            )
            kept = np.union1d(kept, flip_keys)
        else:
            kept = np.sort(kept)
        refill = self.block_size - kept.size
        if refill > 0:
            fresh = _sample_pair_keys(self.n, refill, self.seed, self.draw + 1)
            fresh = np.setdiff1d(fresh, kept, assume_unique=True)
            new_keys = np.union1d(kept, fresh[:refill])
        else:
            new_keys = kept
        # Flipped pairs are a subset of the current block (never evicted),
        # so the drop count is exactly the size difference.
        _telemetry.count("candidates.block_refreshes", 1)
        _telemetry.count("candidates.evictions", int(keys.size - kept.size))
        _telemetry.count("candidates.admissions", int(new_keys.size - kept.size))
        return BlockCandidateSet(
            n=self.n,
            rows=(new_keys // self.n).astype(np.intp),
            cols=(new_keys % self.n).astype(np.intp),
            strategy="block",
            block_size=self.block_size,
            seed=self.seed,
            draw=self.draw + 1,
            flipped=frozenset(flipped),
        )

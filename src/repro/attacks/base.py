"""Attack framework: problem definition, result container, shared plumbing.

A structural attack takes a clean graph, a target set ``T`` and a budget
``B`` and returns, for every intermediate budget ``b ≤ B``, a set of edge
flips (Eq. 4c allows up to ``B`` modified pairs).  Keeping the whole
budget-indexed family around is what the paper's Fig. 4 sweeps need.

Every attack additionally accepts a *candidate set* restricting the pairs
it may flip (see :mod:`repro.attacks.candidates`): ``candidates`` may be a
strategy name (``"full"``, ``"target_incident"``, ``"two_hop"``), a
prebuilt :class:`~repro.attacks.candidates.CandidateSet`, or ``None`` for
the legacy full-pair behaviour.  Large graphs may be passed as scipy sparse
matrices to every engine-backed attack (GradMaxSearch, BinarizedAttack,
ContinuousA — see the ``backend`` parameter and
:mod:`repro.oddball.surrogate`); sparse inputs stay sparse end to end:
:class:`AttackResult` keeps the original in whichever representation it was
given and derives poisoned graphs/scores in the same one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.attacks.candidates import CandidateSet
from repro.graph.graph import Graph
from repro.graph.sparse import SparseGraphView, anomaly_scores_sparse, to_sparse
from repro.oddball.scores import anomaly_scores
from repro.utils.validation import check_adjacency, check_budget

__all__ = ["AttackResult", "StructuralAttack", "apply_flips", "validate_targets"]

Edge = tuple[int, int]


def validate_targets(targets: Sequence[int], n: int) -> list[int]:
    """Validate a target node set against a graph of ``n`` nodes."""
    targets = [int(t) for t in targets]
    if not targets:
        raise ValueError("target set must not be empty")
    if len(set(targets)) != len(targets):
        raise ValueError("target ids must be unique")
    out_of_range = [t for t in targets if not 0 <= t < n]
    if out_of_range:
        raise ValueError(f"target ids out of range [0, {n}): {out_of_range}")
    return targets


def apply_flips(adjacency, flips: Sequence[Edge]):
    """Return a copy of ``adjacency`` with each (u, v) pair toggled.

    Dense arrays stay dense; scipy sparse matrices are toggled through a
    LIL scratch copy and returned as CSR.
    """
    if sparse.issparse(adjacency):
        poisoned = adjacency.tolil(copy=True)
    else:
        poisoned = np.array(adjacency, dtype=np.float64, copy=True)
    seen: set[Edge] = set()
    for u, v in flips:
        pair = (u, v) if u < v else (v, u)
        if pair in seen:
            raise ValueError(f"pair {pair} flipped twice")
        if u == v:
            raise ValueError(f"cannot flip the diagonal pair ({u}, {u})")
        seen.add(pair)
        new_value = 1.0 - poisoned[u, v]
        poisoned[u, v] = poisoned[v, u] = new_value
    if sparse.issparse(poisoned):
        poisoned = poisoned.tocsr()
        poisoned.eliminate_zeros()
    return poisoned


@dataclass
class AttackResult:
    """Budget-indexed family of poisoned graphs produced by one attack run.

    ``flips_by_budget[b]`` is the flip set the attack recommends when allowed
    exactly ``b`` modifications (``len(...) <= b``; an attack may decline to
    spend its whole budget if extra flips would hurt the objective).

    ``original`` may be a dense adjacency array or a scipy sparse matrix;
    derived artefacts (:meth:`poisoned`, :meth:`score_decrease`) stay in the
    same representation so large-graph results never densify accidentally.
    """

    method: str
    original: "np.ndarray | sparse.spmatrix"
    flips_by_budget: dict[int, list[Edge]]
    surrogate_by_budget: dict[int, float] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if sparse.issparse(self.original):
            self.original = to_sparse(self.original)
        else:
            self.original = check_adjacency(self.original)
        for budget, flips in self.flips_by_budget.items():
            if len(flips) > budget:
                raise ValueError(
                    f"{len(flips)} flips recorded for budget {budget} (> budget)"
                )

    @property
    def budgets(self) -> list[int]:
        """Evaluated budgets in increasing order."""
        return sorted(self.flips_by_budget)

    @property
    def max_budget(self) -> int:
        return max(self.flips_by_budget, default=0)

    def flips(self, budget: "int | None" = None) -> list[Edge]:
        """Flip set for ``budget`` (default: the largest evaluated budget)."""
        if budget is None:
            budget = self.max_budget
        if budget not in self.flips_by_budget:
            raise KeyError(f"budget {budget} not evaluated; available: {self.budgets}")
        return list(self.flips_by_budget[budget])

    def poisoned(self, budget: "int | None" = None):
        """Poisoned adjacency (same dense/sparse representation) at ``budget``."""
        return apply_flips(self.original, self.flips(budget))

    def poisoned_graph(self, budget: "int | None" = None) -> "Graph | SparseGraphView":
        """Poisoned graph object at ``budget``, same representation as input.

        Dense originals yield a dense-backed :class:`Graph`; sparse
        originals yield a read-only
        :class:`~repro.graph.sparse.SparseGraphView` over the poisoned
        CSR, so large-graph results never densify implicitly.  The view
        mirrors Graph's query API and plugs into every sparse-aware
        consumer via ``adjacency_csr()``; call its ``to_graph()`` when a
        small graph genuinely needs the dense API.
        """
        poisoned = self.poisoned(budget)
        if sparse.issparse(poisoned):
            return SparseGraphView(poisoned)
        return Graph(poisoned)

    def edges_changed_fraction(self, budget: "int | None" = None) -> float:
        """Attack power ``B / |E|`` (x-axis of Fig. 4)."""
        edges = int(self.original.sum()) // 2
        return len(self.flips(budget)) / max(edges, 1)

    def score_decrease(
        self,
        targets: Sequence[int],
        budget: "int | None" = None,
        weights: "Sequence[float] | None" = None,
    ) -> float:
        """τ_as = (S⁰_T − S^B_T) / S⁰_T, the paper's Fig. 4 metric.

        With ``weights`` the sums are κ-weighted (Section IV-B's general
        objective ``Σ κ_i S_i``).
        """
        targets = validate_targets(targets, self.original.shape[0])
        kappa = np.ones(len(targets)) if weights is None else np.asarray(list(weights))
        if kappa.shape != (len(targets),):
            raise ValueError("weights must align with targets")
        scorer = (
            anomaly_scores_sparse if sparse.issparse(self.original) else anomaly_scores
        )
        before = float((scorer(self.original)[targets] * kappa).sum())
        after = float((scorer(self.poisoned(budget))[targets] * kappa).sum())
        if before <= 0.0:
            return 0.0
        return (before - after) / before


class StructuralAttack(abc.ABC):
    """Interface of the three attack methods (plus baselines).

    ``target_weights`` (optional, aligned with ``targets``) are the κ
    importances of the paper's general objective; every attack treats them
    as multipliers on the per-target squared residuals.

    ``candidates`` restricts the decision variables to a candidate pair set
    (strategy name, :class:`CandidateSet` or ``None`` = legacy full-pair).
    """

    name: str = "structural-attack"

    @abc.abstractmethod
    def attack(
        self,
        graph: "Graph | np.ndarray | sparse.spmatrix",
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
    ) -> AttackResult:
        """Poison ``graph`` to hide ``targets`` using at most ``budget`` flips."""

    @staticmethod
    def _adjacency_of(
        graph: "Graph | np.ndarray | sparse.spmatrix", allow_sparse: bool = False
    ) -> "np.ndarray | sparse.csr_matrix":
        """Validated adjacency in the cheapest usable representation.

        With ``allow_sparse`` a scipy sparse input stays a validated CSR —
        the sparse-engine attacks thread it straight into the
        :class:`~repro.oddball.surrogate.SparseSurrogateEngine` and into
        :class:`AttackResult`, so large graphs are never densified.
        Without it (attacks whose algorithms genuinely index dense
        matrices) sparse inputs are densified, which is only sensible at
        small n.
        """
        if isinstance(graph, Graph):
            return graph.adjacency
        if hasattr(graph, "adjacency_csr"):
            # store-backed graphs: the tagged memory-mapped CSR, zero-copy
            graph = graph.adjacency_csr()
        if sparse.issparse(graph):
            csr = to_sparse(graph)
            # repro: allow-densify(documented dense fallback for algorithms that index dense matrices — small n only)
            return csr if allow_sparse else csr.toarray()
        return check_adjacency(np.asarray(graph, dtype=np.float64))

    @staticmethod
    def _resolve_candidates(
        candidates: "CandidateSet | str | None",
        graph,
        targets: Sequence[int],
        n: int,
        budget: "int | None" = None,
        block_size: "int | None" = None,
        block_seed: int = 0,
    ) -> "CandidateSet | None":
        """Normalise the ``candidates`` argument of :meth:`attack`.

        ``None`` stays ``None`` (the attack keeps its legacy full-pair code
        path); a strategy name is built against ``graph``/``targets``; a
        prebuilt :class:`CandidateSet` is checked for size agreement.
        ``budget`` and the ``block_*`` knobs feed the budget-aware sizing
        policies of the ``adaptive_gradient`` and ``block`` strategies
        (ignored for prebuilt sets and the static strategies).
        """
        if candidates is None:
            return None
        if isinstance(candidates, str):
            return CandidateSet.build(
                candidates, graph, targets,
                budget=budget, block_size=block_size, block_seed=block_seed,
            )
        if not isinstance(candidates, CandidateSet):
            raise TypeError(
                "candidates must be None, a strategy name or a CandidateSet, "
                f"got {type(candidates).__name__}"
            )
        if candidates.n != n:
            raise ValueError(
                f"candidate set addresses {candidates.n} nodes but the graph has {n}"
            )
        return candidates

    @staticmethod
    def _prefix_result(
        method: str,
        original,
        ordered_flips: Sequence[Edge],
        budget: int,
        surrogate_by_budget: "Mapping[int, float] | None" = None,
        metadata: "dict | None" = None,
    ) -> AttackResult:
        """Build a result whose budget-b flip set is the first b ordered flips."""
        check_budget(budget)
        flips_by_budget = {
            b: [tuple(f) for f in ordered_flips[: min(b, len(ordered_flips))]]
            for b in range(budget + 1)
        }
        return AttackResult(
            method=method,
            original=original,
            flips_by_budget=flips_by_budget,
            surrogate_by_budget=dict(surrogate_by_budget or {}),
            metadata=metadata or {},
        )

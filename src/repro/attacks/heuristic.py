"""A gradient-free, OddBall-specific heuristic baseline (reproduction
extension, not in the paper).

Rationale: OddBall flags a node when its egonet point (N, E) sits far from
the power-law line ``E ≈ e^{β0} N^{β1}`` (Fig. 2b).  An attacker who knows
this can move each target's point back toward the line directly:

* **above the line** (near-clique, too many egonet edges): delete edges
  *between the target's neighbours* — each removal decreases E by 1 while
  leaving N unchanged;
* **below the line** (near-star, too few egonet edges): add edges between
  pairs of the target's neighbours — each insertion increases E by 1 while
  leaving N unchanged.

This is the strongest attack one can design without gradients, and the
ablation benches use it to show what the gradient machinery adds: the
heuristic ignores the bi-level effect (moving points also moves the fitted
line) and cross-target interactions, both of which the gradient-based
attacks exploit.

The whole loop runs on
:class:`~repro.graph.incremental.IncrementalEgonetFeatures` — O(deg) per
flip, O(n) per re-fit — so scipy sparse adjacencies are supported natively
(and stay sparse in the :class:`AttackResult`); dense inputs take the same
path and produce bit-identical flips to the historical dense scratch-matrix
implementation, because the maintained features are exactly the integers a
fresh ``egonet_features`` recomputation yields.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.oddball.regression import fit_power_law
from repro.oddball.surrogate import SurrogateEngine, surrogate_loss_from_features
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator
from repro.utils.validation import check_budget

__all__ = ["OddBallHeuristic"]

_log = get_logger("attacks.heuristic")

Edge = tuple[int, int]


class _EngineState:
    """Adapter running the heuristic's loop on a shared surrogate engine.

    Presents the same graph-state surface as
    :class:`IncrementalEgonetFeatures` (``features``/``neighbors``/
    ``is_edge``/``degree``/``flip``), but applies every flip *transiently*
    on the injected engine and pops them all in :meth:`unwind` — the shared
    engine leaves the attack exactly as it entered.  Used with the sparse
    backend only, whose maintained features are exactly the integers the
    incremental engine computes, so flips and losses match the standalone
    path bit-for-bit.
    """

    def __init__(self, engine: SurrogateEngine):
        self._engine = engine
        self._pushed = 0

    def features(self):
        return self._engine.node_features()

    def neighbors(self, u: int) -> "list[int]":
        return [int(x) for x in self._engine.neighbors(u)]

    def is_edge(self, u: int, v: int) -> bool:
        return self._engine.is_edge(u, v)

    def degree(self, u: int) -> float:
        return self._engine.degree(u)

    def flip(self, u: int, v: int) -> None:
        self._engine.push_flip(u, v)
        self._pushed += 1

    def unwind(self) -> None:
        self._engine.pop_flips(self._pushed)
        self._pushed = 0


class OddBallHeuristic(StructuralAttack):
    """Move each target's (N, E) point toward the regression line.

    The budget is spent round-robin across targets, largest |residual|
    first; each step flips the neighbour-pair edge of the current target
    that moves E one unit toward the line.  Residuals are re-evaluated
    against the *re-fitted* line after every flip, so the heuristic is not
    entirely blind to poisoning effects — it just cannot anticipate them.
    """

    name = "oddball-heuristic"

    #: Every flip this heuristic makes is between two *neighbours* of a
    #: target — by construction such pairs never touch the target itself,
    #: so the ``target_incident`` candidate strategy filters out essentially
    #: all of them (only pairs whose endpoint happens to be another target
    #: survive).  Use ``two_hop`` (which contains all neighbour pairs) or a
    #: custom set when restricting this attack; a warning is logged when a
    #: restriction leaves the heuristic with nothing to flip.

    def __init__(self, rng=None):
        self.rng = rng

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
        engine: "SurrogateEngine | None" = None,
    ) -> AttackResult:
        """Greedily move each target's (N, E) point toward the fitted line."""
        adjacency = self._adjacency_of(graph, allow_sparse=True)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)
        generator = as_generator(self.rng)
        candidate_set = self._resolve_candidates(
            candidates, adjacency, targets, n, budget=budget
        )
        # the heuristic only ever flips neighbour pairs of a target, so a
        # full candidate set imposes no restriction — skip membership tests
        allowed = (
            None
            if candidate_set is None or candidate_set.is_full
            else candidate_set.pair_set()
        )

        # An injected shared SPARSE engine (campaign/executor path) replaces
        # the per-call feature build — its maintained (N, E) are exactly the
        # incremental engine's, O(deg) per flip.  A dense engine is declined:
        # its node_features() is a full recompute per step, which would make
        # shared-engine jobs *slower* than the standalone build below, and
        # this gradient-free heuristic gains nothing else from it.
        state = (
            _EngineState(engine)
            if engine is not None and engine.backend == "sparse"
            else IncrementalEgonetFeatures(adjacency)
        )
        modified: set[Edge] = set()
        ordered_flips: list[Edge] = []
        surrogate_by_budget = {
            0: surrogate_loss_from_features(
                *state.features(), targets, weights=target_weights
            )
        }

        try:
            for _ in range(budget):
                flip = self._best_step(state, targets, modified, generator, allowed)
                if flip is None:
                    if not ordered_flips and allowed is not None:
                        _log.warning(
                            "candidate restriction (%s, %d pairs) excludes every "
                            "neighbour-pair flip the heuristic can make; use "
                            "'two_hop' or a custom set instead",
                            candidate_set.strategy,
                            len(candidate_set),
                        )
                    break
                state.flip(*flip)
                modified.add(flip)
                ordered_flips.append(flip)
                surrogate_by_budget[len(ordered_flips)] = surrogate_loss_from_features(
                    *state.features(), targets, weights=target_weights
                )
        finally:
            if isinstance(state, _EngineState):
                state.unwind()

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "steps_taken": len(ordered_flips),
                "candidate_strategy": (
                    "legacy-full" if candidate_set is None else candidate_set.strategy
                ),
            },
        )

    # ------------------------------------------------------------------ #
    def _best_step(
        self,
        features: "IncrementalEgonetFeatures | _EngineState",
        targets: Sequence[int],
        modified: "set[Edge]",
        generator,
        allowed: "frozenset[Edge] | None" = None,
    ) -> "Edge | None":
        """One heuristic flip: fix the worst-residual target's egonet."""
        n_feature, e_feature = features.features()
        fit = fit_power_law(n_feature, e_feature)
        expected = fit.predict_e(n_feature)
        residuals = e_feature - expected

        # visit targets by decreasing |residual|
        order = sorted(targets, key=lambda t: -abs(residuals[t]))
        for target in order:
            neighbors = sorted(features.neighbors(target))
            if len(neighbors) < 2:
                continue
            # neighbours are ascending, so every pair is already canonical
            pairs = [
                (a, b)
                for i, a in enumerate(neighbors)
                for b in neighbors[i + 1 :]
            ]
            generator.shuffle(pairs)
            if allowed is not None:
                pairs = [pair for pair in pairs if pair in allowed]
            if residuals[target] > 0:  # near-clique: delete a neighbour edge
                for u, v in pairs:
                    if (
                        features.is_edge(u, v)
                        and (u, v) not in modified
                        and features.degree(u) > 1
                        and features.degree(v) > 1
                    ):
                        return (u, v)
            else:  # near-star: add a neighbour-pair edge
                for u, v in pairs:
                    if not features.is_edge(u, v) and (u, v) not in modified:
                        return (u, v)
        return None

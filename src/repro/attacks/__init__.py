"""Structural poisoning attacks against OddBall (the paper's Section V).

Every attack accepts a ``candidates`` argument (strategy name or
:class:`CandidateSet`) restricting its decision variables to a pruned pair
set — see :mod:`repro.attacks.candidates` for the strategy trade-offs.
"""

from repro.attacks.base import AttackResult, StructuralAttack, apply_flips, validate_targets
from repro.attacks.binarized import BinarizedAttack
from repro.attacks.campaign import (
    AttackCampaign,
    AttackJob,
    CampaignResult,
    CheckpointStore,
    JobOutcome,
    grid_jobs,
)
from repro.attacks.executor import ParallelCampaignExecutor, build_campaign
from repro.attacks.scheduler import SchedulingCampaignExecutor, WorkQueue
from repro.attacks.candidates import (
    CANDIDATE_STRATEGIES,
    AdaptiveCandidateSet,
    BlockCandidateSet,
    CandidateSet,
)
from repro.attacks.constraints import (
    creates_singleton,
    filter_valid_flips,
    no_singleton_mask,
    sign_valid_mask,
)
from repro.attacks.continuous import ContinuousA
from repro.attacks.gradmax import GradMaxSearch
from repro.attacks.heuristic import OddBallHeuristic
from repro.attacks.random_attack import RandomAttack

ATTACK_REGISTRY = {
    BinarizedAttack.name: BinarizedAttack,
    GradMaxSearch.name: GradMaxSearch,
    ContinuousA.name: ContinuousA,
    RandomAttack.name: RandomAttack,
    OddBallHeuristic.name: OddBallHeuristic,
}

__all__ = [
    "ATTACK_REGISTRY",
    "AdaptiveCandidateSet",
    "BlockCandidateSet",
    "AttackCampaign",
    "AttackJob",
    "AttackResult",
    "BinarizedAttack",
    "CANDIDATE_STRATEGIES",
    "CampaignResult",
    "CandidateSet",
    "CheckpointStore",
    "ContinuousA",
    "GradMaxSearch",
    "JobOutcome",
    "OddBallHeuristic",
    "ParallelCampaignExecutor",
    "RandomAttack",
    "SchedulingCampaignExecutor",
    "StructuralAttack",
    "WorkQueue",
    "apply_flips",
    "build_campaign",
    "creates_singleton",
    "filter_valid_flips",
    "grid_jobs",
    "no_singleton_mask",
    "sign_valid_mask",
    "validate_targets",
]

"""AttackCampaign: batched multi-target attack orchestration.

The paper's experiments (Fig. 4/5, Tables I–II) all sweep *many* jobs —
targets × budgets × λ values × attack methods — over the **same** clean
graph, yet a bare ``attack()`` call rebuilds everything per job: adjacency
validation, the O(n + m) neighbour/feature state of
:class:`~repro.graph.incremental.IncrementalEgonetFeatures`, candidate-pair
arrays.  At campaign scale that fixed cost dominates; the actual
optimisation (a handful of O(deg)/O(m) steps per job) is the cheap part.

:class:`AttackCampaign` amortises it.  One shared
:class:`~repro.oddball.surrogate.SurrogateEngine` (sparse-incremental on
large graphs) carries the clean graph's feature state across every job:

* before a job, the engine is **retargeted** — targets, candidate pairs,
  floor and weights are swapped in O(|C|) (:meth:`SurrogateEngine.retarget`);
* the attack runs through the engine's apply → score → rollback API;
* after the job, :meth:`SurrogateEngine.restore` rolls back whatever
  permanent flips the attack landed, at O(deg) per flip — the O(n + m)
  rebuild a fresh engine would pay never happens;
* job outcomes (flips, losses, target rank shifts, timings) are scored
  straight from the engine's maintained features, so evaluation never
  materialises a poisoned adjacency either.

Campaigns are **resumable**: with a ``checkpoint_path`` every completed job
is appended to a JSONL file (one header line tying it to the graph +
backend, then one outcome per line, keyed by a deterministic job id), and a
re-run against the same graph skips straight past completed jobs — an
interrupted 5000-job sweep restarts from the last completed job, and the
merged result is bit-identical to an uninterrupted run (tested).  Appends
are O(1) per job (not a full-file rewrite) and a torn trailing line from a
hard kill is skipped on load, costing at most one job.

Flip-set fidelity: a campaign job produces the *same* flips as the
equivalent standalone ``attack()`` call (the engine-parity and campaign
test suites pin this down), so batching is purely a performance lever.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry
from repro.attacks.base import AttackResult, validate_targets
from repro.attacks.binarized import BinarizedAttack
from repro.attacks.candidates import CANDIDATE_STRATEGIES
from repro.attacks.continuous import ContinuousA
from repro.attacks.gradmax import GradMaxSearch
from repro.graph.graph import Graph
from repro.graph.sparse import to_sparse
from repro.oddball.regression import fit_power_law
from repro.oddball.scores import rank_positions, score_from_features
from repro.kernels import validate_kernels
from repro.oddball.surrogate import SurrogateEngine, resolve_backend, validate_backend
from repro.utils.logging import get_logger
from repro.utils.validation import check_adjacency, check_budget

__all__ = [
    "AttackCampaign",
    "AttackJob",
    "CampaignResult",
    "CheckpointStore",
    "ENGINE_ATTACKS",
    "JobOutcome",
    "SHARED_ENGINE_ATTACKS",
    "grid_jobs",
]

_log = get_logger("attacks.campaign")

Edge = tuple[int, int]

def _registry() -> dict:
    """:data:`repro.attacks.ATTACK_REGISTRY`, resolved lazily.

    The campaign module is imported *by* ``repro.attacks.__init__``, so the
    one canonical registry is looked up at call time (the package is fully
    initialised by then) instead of duplicating it here and drifting.
    """
    from repro.attacks import ATTACK_REGISTRY

    return ATTACK_REGISTRY


#: Attacks whose *optimisation loop* runs through a SurrogateEngine; their
#: constructors take a ``backend`` parameter the campaign fills in.
ENGINE_ATTACKS = frozenset(
    {BinarizedAttack.name, GradMaxSearch.name, ContinuousA.name}
)

#: Every attack that accepts an injected ``engine=`` in ``attack()`` — the
#: gradient attacks plus the baselines (which use the shared engine as a
#: graph-state backend: O(deg) probes and O(n) feature scoring instead of a
#: per-job feature rebuild).  The campaign wraps all of them in
#: checkpoint()/restore().
SHARED_ENGINE_ATTACKS = ENGINE_ATTACKS | {"random", "oddball-heuristic"}

_CHECKPOINT_VERSION = 1


def _canonical(value):
    """Canonicalise a job-parameter value for hashing/serialisation."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _jsonable(value):
    """The JSON image of a canonical parameter value (tuples → lists)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _jsonable_mapping(mapping: dict) -> dict:
    """Deep JSON image of a free-form metadata mapping.

    Attack metadata is attack-authored and may carry numpy scalars,
    arrays, or tuples; ``json.dumps`` silently accepts some of these
    today and rejects others, and what it accepts round-trips as a
    different type on resume.  Converting here keeps the checkpoint JSONL
    purely JSON-native, so a resumed campaign reads back exactly the
    values a fresh run would have produced.
    """

    def convert(value):
        value = _canonical(value)
        if isinstance(value, np.ndarray):
            value = tuple(value.tolist())
        if isinstance(value, np.bool_):
            return bool(value)
        if isinstance(value, tuple):
            return [convert(v) for v in value]
        if isinstance(value, dict):
            return {str(k): convert(v) for k, v in value.items()}
        return value

    return {str(k): convert(v) for k, v in mapping.items()}


@dataclass(frozen=True)
class AttackJob:
    """One unit of campaign work: an attack spec against one target set.

    Jobs are immutable, hashable and JSON-serialisable; :attr:`job_id` is a
    content hash, so the same spec always resumes from the same checkpoint
    entry.  Build through :meth:`make` (which canonicalises every field)
    rather than the raw constructor.
    """

    attack: str
    targets: tuple[int, ...]
    budget: int
    candidates: "str | None" = None
    weights: "tuple[float, ...] | None" = None
    params: tuple = ()

    @classmethod
    def make(
        cls,
        attack: str,
        targets: Sequence[int],
        budget: int,
        candidates: "str | None" = None,
        weights: "Sequence[float] | None" = None,
        **params,
    ) -> "AttackJob":
        """Build a validated, canonicalised job spec.

        ``attack`` must name a registered attack, ``candidates`` a strategy
        name (or ``None``), and every extra keyword must be a constructor
        parameter of that attack — all checked here, at grid-construction
        time, so a 5000-job campaign cannot die on a typo at job 4997.
        """
        registry = _registry()
        if attack not in registry:
            raise ValueError(
                f"unknown attack {attack!r}; choose from {sorted(registry)}"
            )
        if candidates is not None and candidates not in CANDIDATE_STRATEGIES:
            raise ValueError(
                f"campaign jobs take a candidate *strategy name* (or None), "
                f"got {candidates!r}; choose from {CANDIDATE_STRATEGIES}"
            )
        allowed = set(inspect.signature(registry[attack].__init__).parameters)
        unknown = set(params) - (allowed - {"self"})
        if unknown:
            raise ValueError(
                f"{attack} does not accept parameter(s) {sorted(unknown)}; "
                f"its constructor takes {sorted(allowed - {'self'})}"
            )
        targets = tuple(int(t) for t in targets)
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != len(targets):
                raise ValueError("weights must align with targets")
        return cls(
            attack=attack,
            targets=targets,
            budget=check_budget(budget),
            candidates=candidates,
            weights=weights,
            params=tuple(sorted((k, _canonical(v)) for k, v in params.items())),
        )

    @property
    def job_id(self) -> str:
        """Deterministic content hash of the spec (checkpoint key), cached."""
        cached = self.__dict__.get("_job_id_cache")
        if cached is None:
            digest = hashlib.sha1(
                json.dumps(self.to_dict(), sort_keys=True).encode()
            )
            cached = digest.hexdigest()[:16]
            object.__setattr__(self, "_job_id_cache", cached)
        return cached

    def to_dict(self) -> dict:
        """JSON image of the spec (the checkpoint/transport encoding)."""
        return {
            "attack": self.attack,
            "targets": list(self.targets),
            "budget": self.budget,
            "candidates": self.candidates,
            "weights": None if self.weights is None else list(self.weights),
            "params": [[k, _jsonable(v)] for k, v in self.params],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackJob":
        """Rebuild a job from :meth:`to_dict` output (same ``job_id``)."""
        return cls.make(
            payload["attack"],
            payload["targets"],
            payload["budget"],
            candidates=payload.get("candidates"),
            weights=payload.get("weights"),
            **{k: v for k, v in payload.get("params", [])},
        )

    def build_attack(self, backend: str, kernels: str = "auto"):
        """Instantiate the attack this job describes.

        ``backend`` and ``kernels`` are campaign-level defaults injected
        via ``setdefault`` — a job that pinned either in its ``params``
        keeps its own value (and its ``job_id`` already reflects it).
        """
        params = {k: v for k, v in self.params}
        if self.attack in ENGINE_ATTACKS:
            params.setdefault("backend", backend)
            params.setdefault("kernels", kernels)
        return _registry()[self.attack](**params)


def grid_jobs(
    attack: str,
    targets: Sequence[Sequence[int]],
    budgets: Sequence[int],
    lambdas: "Sequence[float] | None" = None,
    candidates: "str | None" = None,
    **params,
) -> list[AttackJob]:
    """The paper's sweep shape: targets × budgets (× λ grid) for one attack.

    ``targets`` is a sequence of target *sets* (pass ``[[t] for t in ...]``
    for single-target sweeps).  With ``lambdas``, one job is emitted per λ
    (each a single-element ``lambdas`` parameter of BinarizedAttack) — the
    Fig. 4-style λ-sensitivity sweep.
    """
    jobs = []
    for target_set in targets:
        for budget in budgets:
            if lambdas is None:
                jobs.append(
                    AttackJob.make(
                        attack, target_set, budget, candidates=candidates, **params
                    )
                )
            else:
                for lam in lambdas:
                    jobs.append(
                        AttackJob.make(
                            attack,
                            target_set,
                            budget,
                            candidates=candidates,
                            lambdas=(float(lam),),
                            **params,
                        )
                    )
    return jobs


@dataclass
class JobOutcome:
    """Everything one completed job produced."""

    job: AttackJob
    flips_by_budget: dict[int, list[Edge]]
    surrogate_by_budget: dict[int, float]
    score_before: float
    score_after: float
    rank_shifts: dict[int, int]
    seconds: float
    metadata: dict = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        """Content hash of the producing job (the checkpoint key)."""
        return self.job.job_id

    @property
    def flips(self) -> list[Edge]:
        """Flip set at the job's full budget."""
        return list(self.flips_by_budget[self.job.budget])

    @property
    def score_decrease(self) -> float:
        """τ_as = (S⁰_T − S^B_T) / S⁰_T at the full budget."""
        if self.score_before <= 0.0:
            return 0.0
        return (self.score_before - self.score_after) / self.score_before

    def attack_result(self, original) -> AttackResult:
        """Reconstruct a standalone-equivalent :class:`AttackResult`."""
        return AttackResult(
            method=self.job.attack,
            original=original,
            flips_by_budget={b: list(f) for b, f in self.flips_by_budget.items()},
            surrogate_by_budget=dict(self.surrogate_by_budget),
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict:
        """JSON image of the outcome (one checkpoint line)."""
        return {
            "job": self.job.to_dict(),
            "flips_by_budget": {
                str(b): [[int(u), int(v)] for u, v in flips]
                for b, flips in self.flips_by_budget.items()
            },
            "surrogate_by_budget": {
                str(b): float(loss) for b, loss in self.surrogate_by_budget.items()
            },
            "score_before": float(self.score_before),
            "score_after": float(self.score_after),
            "rank_shifts": {str(t): int(s) for t, s in self.rank_shifts.items()},
            "seconds": float(self.seconds),
            "metadata": _jsonable_mapping(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobOutcome":
        """Rebuild an outcome from :meth:`to_dict` output."""
        return cls(
            job=AttackJob.from_dict(payload["job"]),
            flips_by_budget={
                int(b): [(int(u), int(v)) for u, v in flips]
                for b, flips in payload["flips_by_budget"].items()
            },
            surrogate_by_budget={
                int(b): float(loss)
                for b, loss in payload["surrogate_by_budget"].items()
            },
            score_before=float(payload["score_before"]),
            score_after=float(payload["score_after"]),
            rank_shifts={int(t): int(s) for t, s in payload["rank_shifts"].items()},
            seconds=float(payload["seconds"]),
            metadata=payload.get("metadata", {}),
        )


@dataclass
class CampaignResult:
    """Ordered outcomes of a campaign run (JSON round-trippable).

    Beyond the outcomes themselves, a result carries the run's execution
    stats: ``worker_stats`` (per-worker cpu/wall seconds, job counts and
    peak ``max_rss_kb`` from the executor ``.stats`` sidecars; empty for
    serial runs), and — for scheduler runs — ``dead_workers`` (workers
    that exited abnormally but whose jobs the survivors recovered) and
    ``requeues`` (lease steals).  They are observability metadata, not
    outcome identity: parity assertions compare outcomes, and two runs of
    one grid are bit-identical in ``outcomes`` regardless of who executed
    which job.
    """

    outcomes: list[JobOutcome]
    backend: str
    n: int
    seconds: float
    resumed_jobs: int = 0
    worker_stats: list[dict] = field(default_factory=list)
    dead_workers: tuple[str, ...] = ()
    requeues: int = 0

    def __post_init__(self) -> None:
        self._by_id = {o.job_id: o for o in self.outcomes}

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def peak_rss_kb(self) -> int:
        """Largest per-worker peak RSS in KiB (0 for serial runs)."""
        return max(
            (int(stats.get("max_rss_kb", 0)) for stats in self.worker_stats),
            default=0,
        )

    def outcome(self, job: "AttackJob | str") -> JobOutcome:
        """Outcome for a job (or raw job id); raises ``KeyError`` if absent."""
        job_id = job.job_id if isinstance(job, AttackJob) else job
        if job_id not in self._by_id:
            raise KeyError(f"no outcome recorded for job {job_id}")
        return self._by_id[job_id]

    def to_dict(self) -> dict:
        """JSON image of the whole campaign result."""
        return {
            "backend": self.backend,
            "n": self.n,
            "seconds": self.seconds,
            "resumed_jobs": self.resumed_jobs,
            "worker_stats": [_jsonable_mapping(s) for s in self.worker_stats],
            "dead_workers": [str(w) for w in self.dead_workers],
            "requeues": int(self.requeues),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            outcomes=[JobOutcome.from_dict(o) for o in payload["outcomes"]],
            backend=payload["backend"],
            n=int(payload["n"]),
            seconds=float(payload["seconds"]),
            resumed_jobs=int(payload.get("resumed_jobs", 0)),
            worker_stats=[dict(s) for s in payload.get("worker_stats", [])],
            dead_workers=tuple(
                str(w) for w in payload.get("dead_workers", [])
            ),
            requeues=int(payload.get("requeues", 0)),
        )


def _normalize_graph(graph):
    """Validated adjacency (dense ndarray or tagged CSR) from any input.

    Store-backed graphs (:class:`~repro.store.GraphStore`, or anything else
    exposing ``adjacency_csr()``) normalise to their tagged memory-mapped
    CSR zero-copy.
    """
    if isinstance(graph, Graph):
        return np.array(graph.adjacency_view, dtype=np.float64)
    if hasattr(graph, "adjacency_csr"):
        return to_sparse(graph.adjacency_csr())
    if sparse.issparse(graph):
        normalized = to_sparse(graph)
        # to_sparse copies untagged input, dropping instance attributes —
        # re-apply the fingerprint token so a worker normalising a spec-
        # round-tripped graph derives the same checkpoint identity as the
        # parent that captured it.
        token = getattr(graph, "_repro_fingerprint", None)
        if token is not None and normalized is not graph:
            normalized._repro_fingerprint = token
        return normalized
    return check_adjacency(np.asarray(graph, dtype=np.float64))


def graph_fingerprint(adjacency, backend: str) -> str:
    """Cheap content hash tying a checkpoint to one (graph, backend).

    The parent executor, every worker and the serial campaign all derive
    the same fingerprint from the same graph, which is what lets shard
    files and the merged checkpoint validate against each other.

    A matrix carrying a ``_repro_fingerprint`` token (a GraphStore's CSR,
    stamped with the store's content-addressing digest) is fingerprinted
    from the token in O(1) — hashing the raw arrays would page the whole
    memory-mapped graph in just to name a checkpoint.  Token- and
    byte-derived fingerprints differ even for identical graphs, so a
    checkpoint written against a store resumes against the same store.
    """
    digest = hashlib.sha1()
    digest.update(f"{backend}:{adjacency.shape[0]}:".encode())
    token = getattr(adjacency, "_repro_fingerprint", None)
    if token is not None:
        digest.update(str(token).encode())
    elif sparse.issparse(adjacency):
        coo = adjacency.tocoo()
        digest.update(np.ascontiguousarray(coo.row).tobytes())
        digest.update(np.ascontiguousarray(coo.col).tobytes())
    else:
        digest.update(np.ascontiguousarray(adjacency).tobytes())
    return digest.hexdigest()


def checkpoint_aliases(adjacency, fingerprint: str) -> frozenset:
    """Alias fingerprints a checkpoint for ``adjacency`` may legitimately carry.

    Store-backed CSRs are fingerprinted from the store's content-addressing
    digest (O(1)); the byte-identical detached payload hashes its coo
    arrays instead — two names for one graph.  The store layer records that
    equivalence in a per-cache-directory alias table
    (:func:`repro.store.fingerprints.record_alias_group`); this helper
    looks the table up from the campaign side so
    :meth:`CheckpointStore.load` can accept either name.

    Consulted tables: the alias table next to the matrix's originating
    store (matrices tagged ``_repro_store_path`` by
    :meth:`~repro.store.GraphStore.csr`), then the default store cache
    directory (``$REPRO_STORE_CACHE`` or ``./.repro-store-cache``) — which
    is how a *payload-backed* campaign, holding an untagged matrix, still
    finds aliases recorded at store-build time.  Missing tables simply
    yield no aliases; resume then requires exact fingerprint equality,
    which is the pre-alias behaviour.
    """
    try:
        from repro.store.fingerprints import alias_fingerprints
    except ImportError:  # pragma: no cover - store layer always present
        return frozenset()
    roots: "list[Path | None]" = []
    store_path = getattr(adjacency, "_repro_store_path", None)
    if store_path is not None:
        roots.append(Path(store_path).parent)
    roots.append(None)  # the default cache directory
    aliases: set = set()
    for root in roots:
        aliases |= alias_fingerprints(fingerprint, cache_dir=root)
    return frozenset(aliases) - {fingerprint}


def validate_jobs(jobs: Iterable[AttackJob], n: int) -> list[AttackJob]:
    """Check a job list (types, duplicate specs, target ranges) up front.

    Shared by the serial campaign and the parallel executor so both reject
    exactly the same malformed grids before any work starts.
    """
    jobs = list(jobs)
    seen: set[str] = set()
    for job in jobs:
        if not isinstance(job, AttackJob):
            raise TypeError(f"jobs must be AttackJob instances, got {type(job)}")
        if job.job_id in seen:
            raise ValueError(f"duplicate job in campaign: {job.to_dict()}")
        seen.add(job.job_id)
        validate_targets(job.targets, n)
    return jobs


class CheckpointStore:
    """One JSONL campaign checkpoint file: a header plus one outcome per line.

    Format (version 1)::

        {"version": 1, "fingerprint": ..., "backend": ..., "n": ...}
        {"job": {...}, "flips_by_budget": {...}, ...}      # one per job
        ...

    The header ties the file to one (graph, backend); outcome lines are
    keyed by the deterministic :attr:`AttackJob.job_id` content hash, so
    load order — and therefore *who* wrote each line — is irrelevant.  That
    property is what makes the parallel executor's per-worker shard files
    mergeable into this same format: a shard is just a checkpoint whose
    lines happen to come from one worker, and ``resume`` works across runs
    with different worker counts.

    Appends are O(1) per job (never a rewrite); a trailing line torn by a
    hard kill is skipped on load and overwritten safely on the next append,
    costing exactly that one job.

    ``aliases`` are additional fingerprints accepted (but never written) by
    :meth:`load`: a GraphStore's CSR is fingerprinted from its O(1)
    content-addressing token while the byte-identical detached payload is
    fingerprinted from its coo arrays, so the *same graph* legitimately
    carries two names.  The store layer records that equivalence in a
    fingerprint alias table (:mod:`repro.store.fingerprints`), and passing
    the alias set here lets a store-backed run resume a payload-backed
    checkpoint of the same graph — and vice versa — instead of refusing it
    as a different graph.
    """

    def __init__(
        self,
        path: "Path | str",
        fingerprint: str,
        backend: str,
        n: int,
        aliases: Iterable[str] = (),
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.backend = backend
        self.n = int(n)
        self.aliases = frozenset(aliases) - {fingerprint}

    def exists(self) -> bool:
        """Whether the checkpoint file is present on disk."""
        return self.path.exists()

    def load(self) -> dict[str, JobOutcome]:
        """Completed outcomes keyed by job id ({} when the file is absent).

        Resilient to a crash mid-append: a final line torn by a hard kill —
        whether it fails to parse as JSON or parses but cannot be
        reconstructed into a :class:`JobOutcome` — is skipped with a
        warning, costing exactly that one job.  A file consisting only of a
        torn *header* (the very first append died mid-write) is repaired to
        empty instead of poisoning every later resume.
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            if not any(line.strip() for line in lines[1:]):
                # The first-ever append crashed mid-header: nothing was
                # completed, so an empty checkpoint is the truthful state.
                # Truncating (rather than just ignoring) lets the next
                # append() recreate a clean header.
                _log.warning(
                    "checkpoint %s has a torn header and no records; "
                    "resetting it to empty", self.path,
                )
                self.path.write_text("")
                return {}
            raise ValueError(
                f"checkpoint {self.path} has a corrupt header; "
                "delete it to start the campaign fresh"
            ) from error
        if header.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {self.path} has unsupported version "
                f"{header.get('version')!r}"
            )
        if header.get("fingerprint") not in ({self.fingerprint} | self.aliases):
            raise ValueError(
                f"checkpoint {self.path} was written for a different "
                "graph/backend; delete it or point the campaign elsewhere"
            )
        outcomes: dict[str, JobOutcome] = {}
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                # a record torn by a hard kill — appends after a tear start
                # a fresh line, so only the torn record itself is lost
                _log.warning(
                    "checkpoint %s has a truncated entry; ignoring that job",
                    self.path,
                )
                continue
            try:
                outcome = JobOutcome.from_dict(payload)
            except (KeyError, TypeError, ValueError) as error:
                # Valid JSON that is not a reconstructible outcome: a tear
                # can land exactly on a nested close-brace, leaving a parse-
                # able prefix with fields missing.  Same cost as an unparse-
                # able tear: that one job re-runs.
                _log.warning(
                    "checkpoint %s has an unreadable entry (%s); "
                    "ignoring that job", self.path, error,
                )
                continue
            if outcome.job_id in outcomes:
                # A requeued job completed twice (its first worker was slow
                # but alive, or crashed between the shard append and the
                # done marker): both records describe the same deterministic
                # computation, so keep the FIRST durable one.  Dedupe key is
                # the job *content hash*, never write order.
                _log.warning(
                    "checkpoint %s holds a duplicate record for job %s; "
                    "keeping the first (dedupe key: job content hash)",
                    self.path, outcome.job_id,
                )
                continue
            outcomes[outcome.job_id] = outcome
        return outcomes

    def append(self, outcome: JobOutcome) -> None:
        """Append one completed job (O(1); creates file + header on demand)."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "version": _CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "backend": self.backend,
                "n": self.n,
            }
            self.path.write_text(json.dumps(header) + "\n")
        # A hard kill can leave the previous append torn WITHOUT a trailing
        # newline; appending straight after it would glue two records into
        # one unparsable line and lose the glued-on job too.  Start a fresh
        # line whenever the file does not end in one, so a tear costs
        # exactly the torn record.
        with self.path.open("rb") as reader:
            reader.seek(-1, 2)
            ends_with_newline = reader.read(1) == b"\n"
        with self.path.open("ab") as handle:
            if not ends_with_newline:
                handle.write(b"\n")
            handle.write((json.dumps(outcome.to_dict()) + "\n").encode())

    def merge_from(self, other: "CheckpointStore") -> int:
        """Fold another store's outcomes into this file; returns new-job count.

        The parallel executor's parent calls this per worker shard: shard
        outcomes whose job ids the main checkpoint already holds are
        skipped (idempotent — re-merging after a crash never duplicates),
        the rest are appended in the standard O(1)-per-line way.
        """
        if not other.exists():
            return 0
        mine = self.load()
        added = 0
        for job_id, outcome in other.load().items():
            if job_id in mine:
                continue
            self.append(outcome)
            added += 1
        return added


class AttackCampaign:
    """Run many attack jobs against one graph on one shared engine.

    Parameters
    ----------
    graph:
        :class:`~repro.graph.graph.Graph`, dense adjacency array, scipy
        sparse matrix, or a memory-mapped :class:`~repro.store.GraphStore`
        (normalised to its read-only CSR zero-copy).  Sparse inputs are
        validated **once** (the validate-once tag of
        :func:`repro.graph.sparse.to_sparse` makes every per-job
        touch-point free); dense jobs still re-run the O(n²) checks per
        attack call, which is negligible next to their O(n³) forwards at
        the small n the dense backend targets.
    backend:
        Surrogate engine backend (``"auto"``/``"dense"``/``"sparse"``).
        Resolved once against the graph; every engine job shares it.
    kernels:
        Hot-loop kernel backend (``"auto"``/``"numpy"``/``"compiled"``,
        see :mod:`repro.kernels`).  Injected as the default for every
        engine job (a job pinning ``kernels`` in its params wins) and
        passed to the lazily-built shared engine.  Both backends produce
        bit-identical flip sets, so checkpoints are kernel-agnostic.
    checkpoint_path:
        Optional JSONL checkpoint file: one header line (graph fingerprint
        + backend) followed by one completed-job record per line, appended
        in O(1) after each job.  A rerun against the same graph loads it
        and skips completed job ids; a record torn by a hard kill costs
        exactly that one job on resume (not the file).
    compute_ranks:
        Record per-target rank shifts (clean rank → poisoned rank under a
        full re-score).  One O(n log n) argsort per job; disable for pure
        flip-set sweeps where only the flips matter.
    telemetry:
        Optional trace directory: configures the process-global
        :mod:`repro.telemetry` tracer (per-job spans, kernel counters)
        before any work runs.  ``None`` leaves the global configuration
        untouched — telemetry may still be on via ``$REPRO_TELEMETRY`` or
        an earlier ``configure()``.  Tracing never changes results: job
        ids, flips and checkpoints are bit-identical with it on or off.
    engine:
        Optional pre-built :class:`SurrogateEngine` to run every job on —
        the parallel executor's workers pass the engine they rebuilt from
        an :class:`~repro.oddball.surrogate.EngineSpec`.  Must match the
        campaign's resolved backend and graph size; ``None`` (the default)
        builds one lazily from the graph.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.oddball import OddBall
    >>> graph = erdos_renyi(60, 0.1, rng=0)
    >>> targets = OddBall().analyze(graph).top_k(4).tolist()
    >>> jobs = grid_jobs("gradmaxsearch", [[t] for t in targets], budgets=[2],
    ...                  candidates="target_incident")
    >>> result = AttackCampaign(graph).run(jobs)
    >>> len(result) == 4
    True
    """

    def __init__(
        self,
        graph: "Graph | np.ndarray | sparse.spmatrix",
        *,
        backend: str = "auto",
        kernels: str = "auto",
        checkpoint_path: "Path | str | None" = None,
        compute_ranks: bool = True,
        engine: "SurrogateEngine | None" = None,
        telemetry: "Path | str | None" = None,
    ):
        validate_backend(backend)
        if telemetry is not None:
            _telemetry.configure(telemetry)
        self.kernels = validate_kernels(kernels)
        store_backed = hasattr(graph, "adjacency_csr")
        self._original = _normalize_graph(graph)
        self.backend = resolve_backend(backend, self._original)
        if store_backed and self.backend != "sparse":
            # The dense engine would densify the mmap — 63 GB at the full
            # Blogcatalog scale — so fail up front on BOTH execution paths
            # (the parallel executor re-checks for its own construction).
            raise ValueError(
                f"store-backed campaigns are sparse-only; got backend={backend!r}"
            )
        self.n = int(self._original.shape[0])
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.compute_ranks = compute_ranks
        if engine is not None:
            if engine.backend != self.backend:
                raise ValueError(
                    f"injected engine backend {engine.backend!r} does not match "
                    f"the campaign's resolved backend {self.backend!r}"
                )
            if engine.n != self.n:
                raise ValueError(
                    f"injected engine addresses {engine.n} nodes "
                    f"but the campaign graph has {self.n}"
                )
        self._engine = engine
        self._clean_scores: "np.ndarray | None" = None
        self._clean_ranks: "np.ndarray | None" = None
        self._fingerprint_cache: "str | None" = None

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #
    def run(self, jobs: Iterable[AttackJob]) -> CampaignResult:
        """Execute every job (skipping checkpointed ones); ordered result."""
        jobs = validate_jobs(jobs, self.n)
        store = self.checkpoint_store()
        completed = {} if store is None else store.load()
        resumed = sum(1 for job in jobs if job.job_id in completed)
        if resumed:
            _log.info("resuming campaign: %d/%d jobs checkpointed", resumed, len(jobs))
        start = time.perf_counter()
        with _telemetry.span(
            "campaign.run", jobs=len(jobs), backend=self.backend,
            n=self.n, resumed=resumed,
        ):
            for index, job in enumerate(jobs):
                if job.job_id in completed:
                    continue
                outcome = self._run_job(job)
                completed[job.job_id] = outcome
                if store is not None:
                    store.append(outcome)
                _log.debug(
                    "job %d/%d (%s) done in %.3fs: tau=%.3f",
                    index + 1, len(jobs), job.attack, outcome.seconds,
                    outcome.score_decrease,
                )
        elapsed = time.perf_counter() - start
        return CampaignResult(
            outcomes=[completed[job.job_id] for job in jobs],
            backend=self.backend,
            n=self.n,
            seconds=elapsed,
            resumed_jobs=resumed,
        )

    # ------------------------------------------------------------------ #
    # Single job
    # ------------------------------------------------------------------ #
    def run_job(self, job: AttackJob) -> JobOutcome:
        """Run ONE validated job on the shared engine and return its outcome.

        Unlike :meth:`run`, no checkpoint is read or written: the caller
        owns durability.  The work-stealing scheduler's workers drain a
        queue through this — claim a job, run it here under a lease
        heartbeat, append the outcome to their shard checkpoint, then mark
        the queue's done marker (in that order, so a crash between the two
        durable steps requeues a job whose record already exists and the
        merge dedupes it by job content hash).
        """
        job, = validate_jobs([job], self.n)
        return self._run_job(job)

    def _run_job(self, job: AttackJob) -> JobOutcome:
        """Run one job on the shared engine, restoring it afterwards."""
        with _telemetry.span(
            "job", job_id=job.job_id, attack=job.attack,
            budget=int(job.budget),
        ):
            return self._run_job_traced(job)

    def _run_job_traced(self, job: AttackJob) -> JobOutcome:
        """The :meth:`_run_job` body, inside the job's telemetry span."""
        attack = job.build_attack(self.backend, self.kernels)
        engine = self._ensure_engine(job)
        start = time.perf_counter()
        if job.attack in SHARED_ENGINE_ATTACKS:
            token = engine.checkpoint()
            try:
                with _telemetry.span("job.attack"):
                    result = attack.attack(
                        self._original,
                        list(job.targets),
                        job.budget,
                        target_weights=job.weights,
                        candidates=job.candidates,
                        engine=engine,
                    )
            finally:
                # Always roll the job's flips back — an exception (or the
                # KeyboardInterrupt of an interrupted campaign) must not
                # leave the NEXT job running on a silently poisoned engine.
                engine.restore(token)
        else:
            with _telemetry.span("job.attack"):
                result = attack.attack(
                    self._original,
                    list(job.targets),
                    job.budget,
                    target_weights=job.weights,
                    candidates=job.candidates,
                )
        seconds = time.perf_counter() - start
        with _telemetry.span("job.score"):
            score_before, score_after, rank_shifts = self._score(job, result)
        return JobOutcome(
            job=job,
            flips_by_budget={b: result.flips(b) for b in result.budgets},
            surrogate_by_budget=dict(result.surrogate_by_budget),
            score_before=score_before,
            score_after=score_after,
            rank_shifts=rank_shifts,
            seconds=seconds,
            metadata=dict(result.metadata),
        )

    def _ensure_engine(self, job: AttackJob) -> SurrogateEngine:
        """The shared engine (built lazily unless one was injected)."""
        if self._engine is None:
            # Created with an EMPTY candidate set: each job retargets with
            # its own pairs, and ``None`` here would materialise all
            # n(n−1)/2 upper-triangle pairs — 50M entries at n = 10 000.
            empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
            with _telemetry.span(
                "engine.build", backend=self.backend, n=self.n,
            ):
                self._engine = SurrogateEngine.create(
                    self._original,
                    job.targets,
                    empty,
                    backend=self.backend,
                    kernels=self.kernels,
                )
        if self._clean_scores is None:
            with _telemetry.span("engine.clean_scores"):
                n_feature, e_feature = self._engine.node_features()
                self._clean_scores = score_from_features(
                    n_feature, e_feature, fit_power_law(n_feature, e_feature)
                )
                self._clean_ranks = rank_positions(self._clean_scores)
        return self._engine

    def _score(
        self, job: AttackJob, result: AttackResult
    ) -> tuple[float, float, dict[int, int]]:
        """Score the job from the engine's features (apply → score → rollback)."""
        engine = self._engine
        assert engine is not None and self._clean_scores is not None
        flips = result.flips()
        for u, v in flips:
            engine.push_flip(u, v)
        n_feature, e_feature = engine.node_features()
        poisoned_scores = score_from_features(
            n_feature, e_feature, fit_power_law(n_feature, e_feature)
        )
        engine.pop_flips(len(flips))
        targets = list(job.targets)
        score_before = float(self._clean_scores[targets].sum())
        score_after = float(poisoned_scores[targets].sum())
        rank_shifts: dict[int, int] = {}
        if self.compute_ranks:
            poisoned_ranks = rank_positions(poisoned_scores)
            assert self._clean_ranks is not None
            rank_shifts = {
                t: int(poisoned_ranks[t] - self._clean_ranks[t]) for t in targets
            }
        return score_before, score_after, rank_shifts

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _fingerprint(self) -> str:
        """Graph/backend content hash (cached; see :func:`graph_fingerprint`)."""
        if self._fingerprint_cache is None:
            self._fingerprint_cache = graph_fingerprint(self._original, self.backend)
        return self._fingerprint_cache

    def checkpoint_store(self) -> "CheckpointStore | None":
        """The campaign's :class:`CheckpointStore` (``None`` when disabled)."""
        if self.checkpoint_path is None:
            return None
        return CheckpointStore(
            self.checkpoint_path,
            self._fingerprint(),
            self.backend,
            self.n,
            aliases=checkpoint_aliases(self._original, self._fingerprint()),
        )

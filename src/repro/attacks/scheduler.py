"""Work-stealing campaign scheduler: a shared queue with leases + heartbeats.

:class:`~repro.attacks.executor.ParallelCampaignExecutor` splits a job grid
round-robin into static shards.  That is optimal only when every job costs
the same — and campaign grids are *not* uniform: a λ-sweep BinarizedAttack
job runs orders of magnitude longer than a budget-2 GradMaxSearch job, and
grid ordering stripes those costs onto workers systematically (a budgets ×
targets sweep hands one worker every heaviest-budget job).  Static shards
therefore leave W−1 workers idle while one drains the expensive stripe, and
a worker that dies silently strands its whole shard until the parent fails
the run.

This module replaces sharding with **queue draining**:

* the parent publishes the pending jobs once into a shared
  :class:`WorkQueue` directory (``jobs.jsonl`` + a ``leases/`` and ``done/``
  marker tree);
* each worker repeatedly **claims** the first job that is neither done nor
  covered by a live lease.  A claim atomically writes a JSON lease file
  (content-hashed job id, worker id, monotonic deadline) under a queue-wide
  ``flock`` — the only coordination primitive, held for microseconds;
* while a job runs, a background :class:`LeaseHeartbeat` thread renews the
  lease every ``ttl / 3``, so a *live* slow worker never loses its claim;
* a worker killed mid-job stops heartbeating, its lease **expires** after
  ``ttl``, and the next idle worker's claim pass requeues (steals) the job
  — ``kill -9`` of any worker loses no work;
* completion is two durable steps in a fixed order: append the outcome to
  the worker's JSONL shard checkpoint (the standard
  :class:`~repro.attacks.campaign.CheckpointStore` format), *then* write the
  ``done/`` marker.  A crash between the two requeues an already-recorded
  job, which is why checkpoint merging dedupes by job content hash — the
  merged checkpoint keeps exactly one record either way.

:class:`SchedulingCampaignExecutor` wraps the queue in the executor surface
the rest of the stack already speaks: the same ``run(jobs) ->
CampaignResult``, the same :class:`~repro.oddball.surrogate.EngineSpec`
transport, the same per-worker shard checkpoints and merge path, so serial,
statically-sharded and queue-drained runs all produce bit-identical results
and resume each other's checkpoints.

Scope: the queue coordinates processes on **one host** (monotonic clocks
are comparable machine-wide, ``flock`` is a kernel lock).  Multi-host
fleets mount nothing new — the queue directory and shard checkpoints are
plain files — but need a shared filesystem with coherent rename/flock
semantics.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

try:  # Unix-only stdlib module; the queue degrades to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

import numpy as np

from repro import telemetry as _telemetry
from repro.attacks.campaign import (
    AttackCampaign,
    AttackJob,
    CampaignResult,
    JobOutcome,
)
from repro.attacks.executor import (
    ParallelCampaignExecutor,
    _max_rss_kb,
)
from repro.oddball.surrogate import EngineSpec, SurrogateEngine
from repro.utils.logging import get_logger

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LEASE_TTL_ENV",
    "Lease",
    "LeaseHeartbeat",
    "SchedulingCampaignExecutor",
    "WorkQueue",
    "resolve_lease_ttl",
]

_log = get_logger("attacks.scheduler")

#: Default lease time-to-live in seconds.  Generous on purpose: a lease
#: only has to outlive the *gap between heartbeats* (ttl / 3), not the job,
#: so the cost of a large TTL is merely how long a killed worker's jobs
#: wait before being requeued.
DEFAULT_LEASE_TTL = 30.0

#: Environment override for the lease TTL (the chaos CI lane shrinks it to
#: force the expiry/requeue paths through every scheduler test).
LEASE_TTL_ENV = "REPRO_LEASE_TTL"

_QUEUE_VERSION = 1


def resolve_lease_ttl(value: "float | None" = None) -> float:
    """The effective lease TTL: explicit value > ``$REPRO_LEASE_TTL`` > default.

    Mirrors the precedence scheme of :func:`repro.kernels.resolve_kernels`:
    an explicit argument always wins, the environment variable covers whole
    test/CI processes, and the default is used otherwise.
    """
    if value is None:
        env = os.environ.get(LEASE_TTL_ENV, "").strip()
        if env:
            try:
                value = float(env)
            except ValueError as error:
                raise ValueError(
                    f"${LEASE_TTL_ENV} must be a number of seconds, got {env!r}"
                ) from error
        else:
            value = DEFAULT_LEASE_TTL
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"lease TTL must be positive, got {value}")
    return value


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one job: the content of a lease file.

    ``deadline`` and ``claimed_at`` are ``time.monotonic()`` readings —
    CLOCK_MONOTONIC is machine-wide on Linux, so every process on the host
    compares against the same clock and a wall-clock step (NTP, suspend)
    can never mass-expire live leases.  ``generation`` counts how many
    times the job has been (re)claimed: 0 for a first claim, +1 per steal.
    """

    job_id: str
    worker: str
    deadline: float
    claimed_at: float
    generation: int = 0

    def to_dict(self) -> dict:
        """JSON image of the lease (the on-disk lease-file payload)."""
        return {
            "job_id": str(self.job_id),
            "worker": str(self.worker),
            "deadline": float(self.deadline),
            "claimed_at": float(self.claimed_at),
            "generation": int(self.generation),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Lease":
        """Rebuild a lease from :meth:`to_dict` output."""
        return cls(
            job_id=str(payload["job_id"]),
            worker=str(payload["worker"]),
            deadline=float(payload["deadline"]),
            claimed_at=float(payload["claimed_at"]),
            generation=int(payload.get("generation", 0)),
        )

    def expired(self, now: float) -> bool:
        """Whether the lease's deadline has passed at monotonic time ``now``."""
        return now >= self.deadline


class WorkQueue:
    """A shared-directory job queue with lease files and done markers.

    Layout::

        <queue_dir>/
            queue.json          # {"version", "jobs", "lease_ttl"}
            jobs.jsonl          # one AttackJob.to_dict() per line (queue order)
            lock                # flock target for claim/renew/complete
            leases/<job_id>.json
            done/<job_id>.json  # {"job_id", "worker", "generation"}

    Everything on disk is JSON-pure (enforced by the
    ``checkpoint-json-purity`` lint scope on this module): the queue can be
    inspected with ``cat`` mid-run and survives any crash — durable truth
    lives in the shard checkpoints, the queue only coordinates.

    The claim scan is deterministic (queue order) so under equal load the
    schedule approximates the static executor's; jobs a worker has seen
    completed are cached, making repeated claims O(pending) rather than
    O(total).  All lease mutations happen under one queue-wide ``flock``
    held for the duration of a single scan/write — the kernel releases it
    automatically if the holder is killed, so a ``kill -9`` can never
    wedge the queue.
    """

    def __init__(
        self,
        queue_dir: "Path | str",
        jobs: "list[AttackJob]",
        lease_ttl: float,
        worker: str = "anonymous",
        clock=time.monotonic,
    ):
        self.queue_dir = Path(queue_dir)
        self.jobs = list(jobs)
        self.by_id = {job.job_id: job for job in self.jobs}
        self.lease_ttl = resolve_lease_ttl(lease_ttl)
        self.worker = str(worker)
        self.clock = clock
        self._known_done: "set[str]" = set()
        #: Counters a worker reports in its ``.stats`` sidecar.
        self.claims = 0
        self.steals = 0
        self.heartbeats = 0
        self.lost_leases = 0
        self.completions = 0
        self.duplicate_completions = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        queue_dir: "Path | str",
        jobs: Iterable[AttackJob],
        lease_ttl: "float | None" = None,
    ) -> "WorkQueue":
        """Publish ``jobs`` into a fresh queue directory (parent-side).

        The job list is written atomically (temp file + rename) so a worker
        can never observe a half-written queue; the queue itself is
        ephemeral coordination state — a crashed run's directory is simply
        recreated, because completed work lives in the shard checkpoints,
        not here.
        """
        queue_dir = Path(queue_dir)
        jobs = list(jobs)
        lease_ttl = resolve_lease_ttl(lease_ttl)
        (queue_dir / "leases").mkdir(parents=True, exist_ok=True)
        (queue_dir / "done").mkdir(parents=True, exist_ok=True)
        (queue_dir / "lock").touch()
        tmp = queue_dir / "jobs.jsonl.tmp"
        with tmp.open("w") as handle:
            for job in jobs:
                handle.write(json.dumps(job.to_dict(), sort_keys=True) + "\n")
        tmp.rename(queue_dir / "jobs.jsonl")
        manifest = {
            "version": _QUEUE_VERSION,
            "jobs": len(jobs),
            "lease_ttl": float(lease_ttl),
        }
        tmp = queue_dir / "queue.json.tmp"
        tmp.write_text(json.dumps(manifest) + "\n")
        tmp.rename(queue_dir / "queue.json")
        _telemetry.event(
            "scheduler.publish", jobs=len(jobs), lease_ttl=float(lease_ttl)
        )
        return cls(queue_dir, jobs, lease_ttl)

    @classmethod
    def open(
        cls,
        queue_dir: "Path | str",
        worker: str,
        lease_ttl: "float | None" = None,
        clock=time.monotonic,
    ) -> "WorkQueue":
        """Attach a worker to an existing queue directory.

        ``lease_ttl`` defaults to the TTL recorded at :meth:`create` time so
        every worker agrees on when a lease is stealable; passing a
        different value is a test-only affordance.
        """
        queue_dir = Path(queue_dir)
        manifest = json.loads((queue_dir / "queue.json").read_text())
        if manifest.get("version") != _QUEUE_VERSION:
            raise ValueError(
                f"work queue {queue_dir} has unsupported version "
                f"{manifest.get('version')!r}"
            )
        jobs = [
            AttackJob.from_dict(json.loads(line))
            for line in (queue_dir / "jobs.jsonl").read_text().splitlines()
            if line.strip()
        ]
        if len(jobs) != manifest["jobs"]:
            raise ValueError(
                f"work queue {queue_dir} lists {len(jobs)} jobs but its "
                f"manifest promises {manifest['jobs']}"
            )
        ttl = manifest["lease_ttl"] if lease_ttl is None else lease_ttl
        return cls(queue_dir, jobs, ttl, worker=worker, clock=clock)

    # ------------------------------------------------------------------ #
    # Locking
    # ------------------------------------------------------------------ #
    @contextmanager
    def _locked(self):
        """Queue-wide exclusive flock (no-op where fcntl is unavailable).

        Held only across one claim scan or one lease write — microseconds.
        A killed holder releases it automatically (kernel semantics), so
        the lock can never outlive a crash.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with (self.queue_dir / "lock").open("a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _lease_path(self, job_id: str) -> Path:
        return self.queue_dir / "leases" / f"{job_id}.json"

    def _done_path(self, job_id: str) -> Path:
        return self.queue_dir / "done" / f"{job_id}.json"

    def _read_lease(self, job_id: str) -> "Lease | None":
        path = self._lease_path(job_id)
        try:
            return Lease.from_dict(json.loads(path.read_text()))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A torn lease file (its writer was killed mid-rename-window) is
            # treated as expired: the job is immediately stealable, which
            # errs on the side of re-running rather than stranding.
            return None

    def _write_lease(self, lease: Lease) -> None:
        path = self._lease_path(lease.job_id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(lease.to_dict(), sort_keys=True) + "\n")
        tmp.rename(path)

    # ------------------------------------------------------------------ #
    # Protocol: claim / heartbeat / complete / release
    # ------------------------------------------------------------------ #
    def claim(self) -> "AttackJob | None":
        """Claim the first job that is neither done nor under a live lease.

        Expired leases are requeued in the same pass: the claim overwrites
        the stale lease with a fresh one at ``generation + 1`` (a *steal*).
        Returns ``None`` when every remaining job is either done or held by
        a live lease — the caller should poll again after
        :attr:`poll_interval` (the holder may complete it, or die and let
        the lease expire).
        """
        with self._locked():
            now = self.clock()
            for job in self.jobs:
                job_id = job.job_id
                if job_id in self._known_done:
                    continue
                if self._done_path(job_id).exists():
                    self._known_done.add(job_id)
                    continue
                lease = self._read_lease(job_id)
                generation = 0
                if lease is not None:
                    if not lease.expired(now):
                        continue
                    generation = lease.generation + 1
                    self.steals += 1
                    _log.info(
                        "worker %s requeues job %s (lease of %s expired, "
                        "generation %d)",
                        self.worker, job_id, lease.worker, generation,
                    )
                    _telemetry.event(
                        "scheduler.requeue",
                        job_id=job_id,
                        lost_worker=lease.worker,
                        generation=generation,
                    )
                self._write_lease(
                    Lease(
                        job_id=job_id,
                        worker=self.worker,
                        deadline=now + self.lease_ttl,
                        claimed_at=now,
                        generation=generation,
                    )
                )
                self.claims += 1
                _telemetry.event(
                    "scheduler.claim", job_id=job_id, generation=generation
                )
                return job
        return None

    def heartbeat(self, job_id: str) -> bool:
        """Renew this worker's lease on ``job_id``; ``False`` if it was lost.

        A lease is lost when it expired and another worker stole it (or the
        job is already done).  The caller keeps running the in-flight job
        either way — results are deterministic and the merge dedupes by job
        content hash, so finishing is cheaper than abandoning mid-attack —
        but a lost lease is counted so the stats surface it.
        """
        with self._locked():
            lease = self._read_lease(job_id)
            if lease is None or lease.worker != self.worker:
                self.lost_leases += 1
                _telemetry.event("scheduler.lease_lost", job_id=job_id)
                return False
            now = self.clock()
            self._write_lease(
                Lease(
                    job_id=job_id,
                    worker=self.worker,
                    deadline=now + self.lease_ttl,
                    claimed_at=lease.claimed_at,
                    generation=lease.generation,
                )
            )
            self.heartbeats += 1
            _telemetry.event("scheduler.heartbeat", job_id=job_id)
            return True

    def complete(self, job_id: str) -> bool:
        """Mark ``job_id`` done and drop this worker's lease.

        Must be called *after* the outcome is durable in the worker's shard
        checkpoint — the marker is the queue's signal to stop handing the
        job out, the shard is the record.  Returns ``False`` when another
        worker already completed it (the slow-but-alive double-completion
        case); the duplicate shard record is deduped at merge time.
        """
        with self._locked():
            lease = self._read_lease(job_id)
            generation = lease.generation if lease is not None else 0
            first = True
            try:
                fd = os.open(
                    self._done_path(job_id),
                    os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                )
            except FileExistsError:
                first = False
                self.duplicate_completions += 1
            else:
                with os.fdopen(fd, "w") as handle:
                    handle.write(
                        json.dumps(
                            {
                                "job_id": str(job_id),
                                "worker": str(self.worker),
                                "generation": int(generation),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
            if lease is not None and lease.worker == self.worker:
                self._lease_path(job_id).unlink(missing_ok=True)
            self._known_done.add(job_id)
            self.completions += 1
            _telemetry.event("scheduler.complete", job_id=job_id, first=first)
            return first

    def release(self, job_id: str) -> None:
        """Drop this worker's lease without completing (graceful give-back)."""
        with self._locked():
            lease = self._read_lease(job_id)
            if lease is not None and lease.worker == self.worker:
                self._lease_path(job_id).unlink(missing_ok=True)
                _telemetry.event("scheduler.release", job_id=job_id)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def poll_interval(self) -> float:
        """How long an idle worker sleeps between claim passes."""
        return min(max(self.lease_ttl / 10.0, 0.01), 0.25)

    def lease_of(self, job_id: str) -> "Lease | None":
        """The current lease on ``job_id`` (``None`` if unleased)."""
        with self._locked():
            return self._read_lease(job_id)

    def done_ids(self) -> "set[str]":
        """Job ids with a done marker (one listdir; no lock needed)."""
        return {
            name[: -len(".json")] if name.endswith(".json") else name
            for name in os.listdir(self.queue_dir / "done")
        }

    def all_done(self) -> bool:
        """Whether every job in the queue has a done marker."""
        return len(os.listdir(self.queue_dir / "done")) >= len(self.jobs)

    def remaining(self) -> int:
        """Jobs without a done marker (leased in-flight jobs included)."""
        return len(self.jobs) - len(os.listdir(self.queue_dir / "done"))

    def stats(self) -> dict:
        """This worker's protocol counters (JSON-pure)."""
        return {
            "claims": int(self.claims),
            "steals": int(self.steals),
            "heartbeats": int(self.heartbeats),
            "lost_leases": int(self.lost_leases),
            "completions": int(self.completions),
            "duplicate_completions": int(self.duplicate_completions),
        }


class LeaseHeartbeat:
    """Background thread renewing one lease while its job runs.

    Renews every ``ttl / 3`` (so two renewals can fail before the lease is
    stealable).  Used as a context manager around the job execution; if a
    renewal reports the lease lost, renewing stops (:attr:`lost` is set)
    but the job is allowed to finish — see :meth:`WorkQueue.heartbeat`.
    """

    def __init__(self, queue: WorkQueue, job_id: str, interval: "float | None" = None):
        self.queue = queue
        self.job_id = job_id
        self.interval = (
            queue.lease_ttl / 3.0 if interval is None else float(interval)
        )
        self.lost = False
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                if not self.queue.heartbeat(self.job_id):
                    self.lost = True
                    _log.warning(
                        "worker %s lost its lease on job %s mid-run; "
                        "finishing anyway (merge dedupes by job id)",
                        self.queue.worker, self.job_id,
                    )
                    return
            except OSError:  # pragma: no cover - transient fs failure
                # A failed renewal is survivable until the TTL runs out;
                # the next tick retries.
                continue

    def __enter__(self) -> "LeaseHeartbeat":
        """Start renewing in a daemon thread."""
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{self.job_id}", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the renewal thread (joins; the lease stays with the worker)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()


def _scheduler_worker_main(
    spec: EngineSpec,
    queue_dir: str,
    shard_path: str,
    compute_ranks: bool,
    lease_ttl: float,
    worker_index: int,
    telemetry: "dict | None" = None,
) -> None:
    """Entry point of one scheduler worker: drain the shared queue.

    Runs in the child.  One engine is built lazily on the first claim
    (exactly the executor's spec round-trip), then every claimed job runs
    through :meth:`AttackCampaign.run_job` under a lease heartbeat.  The
    durability order is fixed: shard append **then** done marker — a crash
    between the two requeues a job whose record already exists, and the
    merge dedupes by job content hash.
    """
    _telemetry.worker_configure(telemetry)
    try:
        with _telemetry.span("worker.run"):
            _scheduler_worker_drain(
                spec, queue_dir, shard_path, compute_ranks, lease_ttl,
                worker_index,
            )
    finally:
        _telemetry.shutdown()


def _scheduler_worker_drain(
    spec: EngineSpec,
    queue_dir: str,
    shard_path: str,
    compute_ranks: bool,
    lease_ttl: float,
    worker_index: int,
) -> None:
    """The claim/run/complete loop of :func:`_scheduler_worker_main`."""
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    queue = WorkQueue.open(
        queue_dir, worker=f"worker-{worker_index}-pid{os.getpid()}",
        lease_ttl=lease_ttl,
    )
    graph = None
    campaign: "AttackCampaign | None" = None
    shard_store = None
    jobs_done = 0
    while True:
        job = queue.claim()
        if job is None:
            if queue.all_done():
                break
            time.sleep(queue.poll_interval)
            continue
        if campaign is None:
            # Empty candidate set, exactly like the static executor: every
            # job retargets with its own pairs, and ``None`` would
            # materialise all n(n−1)/2 upper-triangle pairs.
            empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
            graph = spec.to_graph()
            engine = SurrogateEngine.from_spec(
                spec, job.targets, candidates=empty, graph=graph
            )
            campaign = AttackCampaign(
                graph,
                backend=spec.backend,
                kernels=spec.kernels,
                checkpoint_path=shard_path,
                compute_ranks=compute_ranks,
                engine=engine,
            )
            shard_store = campaign.checkpoint_store()
        with LeaseHeartbeat(queue, job.job_id):
            outcome = campaign.run_job(job)
        assert shard_store is not None
        shard_store.append(outcome)  # durable BEFORE the done marker
        queue.complete(job.job_id)
        jobs_done += 1
    stats = {
        "jobs": jobs_done,
        "cpu_seconds": time.process_time() - cpu_start,
        "wall_seconds": time.perf_counter() - wall_start,
        "max_rss_kb": _max_rss_kb(),
        **queue.stats(),
    }
    Path(shard_path + ".stats").write_text(json.dumps(stats) + "\n")


class SchedulingCampaignExecutor(ParallelCampaignExecutor):
    """Drain a campaign grid through a work-stealing queue of N workers.

    Same constructor surface and result/checkpoint semantics as
    :class:`~repro.attacks.executor.ParallelCampaignExecutor` — bit-identical
    outcomes, interoperable checkpoints, resume across worker counts — plus:

    * **load balancing**: workers claim jobs one at a time from a shared
      :class:`WorkQueue`, so a cost-skewed grid (λ-sweep Binarized next to
      cheap GradMax jobs) keeps every worker busy until the queue is dry
      instead of idling behind the unluckiest static shard;
    * **crash tolerance**: a worker killed mid-job (``kill -9`` included)
      stops heartbeating, its lease expires after ``lease_ttl`` seconds and
      a surviving worker requeues the job.  The run *succeeds* as long as
      every job completes — dead workers are reported in
      :attr:`last_dead_workers` rather than failing a run whose work was
      recovered.

    Parameters (beyond the parent's)
    --------------------------------
    lease_ttl:
        Seconds a lease survives without a heartbeat renewal
        (``None`` → ``$REPRO_LEASE_TTL`` → 30).  Heartbeats fire every
        ``ttl / 3``, so the TTL bounds *requeue latency after a crash*,
        not job duration — long jobs are safe at any TTL.
    """

    def __init__(
        self,
        graph,
        *,
        workers: int = 2,
        backend: str = "auto",
        kernels: str = "auto",
        checkpoint_path=None,
        compute_ranks: bool = True,
        mp_context: "str | None" = None,
        lease_ttl: "float | None" = None,
        telemetry: "str | None" = None,
    ):
        super().__init__(
            graph,
            workers=workers,
            backend=backend,
            kernels=kernels,
            checkpoint_path=checkpoint_path,
            compute_ranks=compute_ranks,
            mp_context=mp_context,
            telemetry=telemetry,
        )
        self.lease_ttl = resolve_lease_ttl(lease_ttl)
        #: Names of workers that exited abnormally in the most recent
        #: :meth:`run` whose jobs were nevertheless recovered by the
        #: survivors (empty on a clean run).
        self.last_dead_workers: "list[str]" = []
        #: Total lease steals (requeues) across workers in the most recent
        #: :meth:`run` — the crash-recovery/observability signal chaos
        #: tests and the scheduler benchmark assert on.
        self.last_requeues: int = 0

    # ------------------------------------------------------------------ #
    # Orchestration (replaces the parent's static sharding)
    # ------------------------------------------------------------------ #
    def _execute(
        self,
        jobs: "list[AttackJob]",
        completed: "dict[str, JobOutcome]",
        shard_dir: Path,
    ) -> CampaignResult:
        resumed = sum(1 for job in jobs if job.job_id in completed)
        if resumed:
            _log.info(
                "resuming scheduled campaign: %d/%d jobs checkpointed",
                resumed, len(jobs),
            )
        start = time.perf_counter()
        pending = [job for job in jobs if job.job_id not in completed]
        self.last_shards = []
        self.last_worker_stats = []
        self.last_dead_workers = []
        self.last_requeues = 0
        drain_seconds = 0.0
        if pending:
            count = min(self.workers, len(pending))
            queue_dir = self._queue_dir(shard_dir)
            with _telemetry.span(
                "executor.run", workers=count, jobs=len(jobs), resumed=resumed,
                scheduler=True,
            ):
                drain_seconds = self._drain_queue(
                    pending, count, shard_dir, queue_dir
                )
            self.last_worker_stats = self._collect_stats(shard_dir, count)
            self.last_requeues = sum(
                int(stats.get("steals", 0)) for stats in self.last_worker_stats
            )
            # Record who completed what BEFORE the merge deletes the shard
            # files — the benchmark groups per-job timings by worker here.
            self.last_shards = [
                sorted(self._store(self._shard_path(shard_dir, index)).load())
                for index in range(count)
                if self._shard_path(shard_dir, index).exists()
            ]
            with _telemetry.span("executor.merge", shards=len(self.last_shards)):
                self._collect(shard_dir, into=completed)
            missing = [job for job in pending if job.job_id not in completed]
            if missing:
                dead = (
                    f" (dead workers: {self.last_dead_workers})"
                    if self.last_dead_workers
                    else ""
                )
                raise RuntimeError(
                    f"scheduled campaign finished with {len(missing)} jobs "
                    f"unaccounted for{dead}; completed jobs "
                    + (
                        "were checkpointed and a rerun will resume from them"
                        if self.checkpoint_path is not None
                        else "were discarded with the run — set a "
                             "checkpoint_path to make failed runs resumable"
                    )
                )
            if self.last_dead_workers:
                _log.warning(
                    "worker(s) %s died mid-lease; their jobs were requeued "
                    "and completed by the surviving workers",
                    self.last_dead_workers,
                )
            shutil.rmtree(queue_dir, ignore_errors=True)
        elapsed = time.perf_counter() - start
        self.last_overhead_seconds = max(elapsed - drain_seconds, 0.0)
        return CampaignResult(
            outcomes=[completed[job.job_id] for job in jobs],
            backend=self.backend,
            n=self.n,
            seconds=elapsed,
            resumed_jobs=resumed,
            worker_stats=list(self.last_worker_stats),
            dead_workers=tuple(self.last_dead_workers),
            requeues=self.last_requeues,
        )

    def _queue_dir(self, shard_dir: Path) -> Path:
        stem = (
            self.checkpoint_path.name
            if self.checkpoint_path is not None
            else "campaign"
        )
        return shard_dir / f"{stem}.queue"

    def _drain_queue(
        self,
        pending: "list[AttackJob]",
        count: int,
        shard_dir: Path,
        queue_dir: Path,
    ) -> float:
        """Publish the queue, spawn ``count`` workers, join them.

        Returns the drain wall seconds (queue publish to last join).  A
        worker exiting abnormally does NOT raise here — the queue's whole
        point is that survivors requeue its jobs; :meth:`_execute` only
        fails if jobs are actually missing afterwards.
        """
        shard_dir.mkdir(parents=True, exist_ok=True)
        with _telemetry.span("executor.spec", store=self._graph_store is not None):
            if self._graph_store is not None:
                spec = EngineSpec.from_store(
                    self._graph_store, kernels=self.kernels
                )
            else:
                spec = EngineSpec.from_graph(
                    self._original, backend=self.backend, kernels=self.kernels
                )
        # The queue is ephemeral coordination state: durable truth lives in
        # the shard checkpoints, so a previous (crashed) run's queue is
        # simply replaced.
        if queue_dir.exists():
            shutil.rmtree(queue_dir)
        WorkQueue.create(queue_dir, pending, lease_ttl=self.lease_ttl)
        drain_start = time.perf_counter()
        processes = []
        with _telemetry.span("executor.drain", workers=count):
            for index in range(count):
                args = (
                    spec,
                    str(queue_dir),
                    str(self._shard_path(shard_dir, index)),
                    self.compute_ranks,
                    self.lease_ttl,
                    index,
                )
                # Only extend the args tuple when tracing, so the worker
                # entry point keeps its historical positional signature
                # (chaos tests monkeypatch it) on untraced runs.
                tspec = _telemetry.worker_spec(f"worker-{index}")
                if tspec is not None:
                    args += (tspec,)
                process = self._mp.Process(
                    target=_scheduler_worker_main,
                    args=args,
                    name=f"scheduler-worker-{index}",
                )
                process.start()
                processes.append(process)
            try:
                for process in processes:
                    process.join()
            except BaseException:
                # Parent interrupted: stop the workers; whatever they
                # checkpointed stays on disk for the next resume.
                for process in processes:
                    if process.is_alive():
                        process.terminate()
                for process in processes:
                    process.join()
                raise
        self.last_dead_workers = [
            p.name for p in processes if p.exitcode != 0
        ]
        return time.perf_counter() - drain_start

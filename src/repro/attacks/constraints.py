"""Validity rules shared by the attack methods (Section V-A).

The paper's implementation notes for GradMaxSearch:

* **sign validity** — adding an edge (``A_ij = 0``) is only useful when the
  gradient is negative (increasing ``A_ij`` decreases the loss); deleting
  (``A_ij = 1``) requires a positive gradient;
* **no-repeat pool** — a pair modified once is never modified again;
* **no singletons** — no deletion may leave a node with degree 0.

The same guards are reused when materialising the flip sets of ContinuousA
and BinarizedAttack so that every poisoned graph is a valid simple graph.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "creates_singleton",
    "filter_valid_flips",
    "filter_valid_flips_engine",
    "sign_valid_mask",
    "no_singleton_mask",
]

Edge = tuple[int, int]


def sign_valid_mask(adjacency: np.ndarray, gradient: np.ndarray) -> np.ndarray:
    """Boolean matrix of pairs whose gradient sign permits a useful flip."""
    add_ok = (adjacency == 0.0) & (gradient < 0.0)
    delete_ok = (adjacency == 1.0) & (gradient > 0.0)
    mask = add_ok | delete_ok
    np.fill_diagonal(mask, False)
    return mask


def no_singleton_mask(adjacency: np.ndarray) -> np.ndarray:
    """Boolean matrix of pairs whose flip would NOT create a singleton.

    Additions are always safe; deleting (u, v) is unsafe when either endpoint
    has degree 1.
    """
    degrees = adjacency.sum(axis=1)
    unsafe_endpoint = degrees <= 1.0
    deletion = adjacency == 1.0
    unsafe = deletion & (unsafe_endpoint[:, None] | unsafe_endpoint[None, :])
    mask = ~unsafe
    np.fill_diagonal(mask, False)
    return mask


def creates_singleton(adjacency: np.ndarray, u: int, v: int) -> bool:
    """Whether flipping (u, v) on ``adjacency`` would isolate a node."""
    if adjacency[u, v] == 0.0:
        return False
    return bool(adjacency[u].sum() <= 1.0 or adjacency[v].sum() <= 1.0)


def filter_valid_flips(
    adjacency: np.ndarray,
    candidates: Iterable[Edge],
    limit: "int | None" = None,
    forbidden: "Sequence[Edge] | None" = None,
) -> list[Edge]:
    """Greedily keep candidate flips that stay valid as they are applied.

    Walks ``candidates`` in order, applying each flip to a scratch copy; a
    flip is skipped when it would recreate a pair already taken, touch the
    diagonal, or isolate a node.  Stops after ``limit`` accepted flips.
    """
    scratch = np.array(adjacency, dtype=np.float64, copy=True)
    taken: set[Edge] = {tuple(sorted(pair)) for pair in (forbidden or [])}
    accepted: list[Edge] = []
    for u, v in candidates:
        if limit is not None and len(accepted) >= limit:
            break
        if u == v:
            continue
        pair = (u, v) if u < v else (v, u)
        if pair in taken:
            continue
        if creates_singleton(scratch, *pair):
            continue
        new_value = 1.0 - scratch[pair[0], pair[1]]
        scratch[pair[0], pair[1]] = scratch[pair[1], pair[0]] = new_value
        taken.add(pair)
        accepted.append(pair)
    return accepted


def filter_valid_flips_engine(
    engine,
    candidates: Iterable[Edge],
    limit: "int | None" = None,
    forbidden: "Sequence[Edge] | None" = None,
) -> list[Edge]:
    """:func:`filter_valid_flips` against a live surrogate engine.

    Same greedy semantics, but the scratch state is the engine's own graph:
    accepted flips are pushed transiently (so later validity checks see
    them) and every one is rolled back before returning.  This is how the
    sparse backend validates flip sets without a dense scratch copy — each
    probe costs O(deg), and the engine ends in exactly the state it
    started in.
    """
    taken: set[Edge] = {tuple(sorted(pair)) for pair in (forbidden or [])}
    accepted: list[Edge] = []
    for u, v in candidates:
        if limit is not None and len(accepted) >= limit:
            break
        if u == v:
            continue
        pair = (u, v) if u < v else (v, u)
        if pair in taken:
            continue
        # `creates_singleton` semantics: deletions are unsafe when either
        # endpoint has degree <= 1 in the *current* (partially flipped) state.
        if engine.is_edge(*pair) and (
            engine.degree(pair[0]) <= 1.0 or engine.degree(pair[1]) <= 1.0
        ):
            continue
        engine.push_flip(*pair)
        taken.add(pair)
        accepted.append(pair)
    engine.pop_flips(len(accepted))
    return accepted

"""ContinuousA (Section V-A-2): full continuous relaxation then rounding.

The adjacency matrix is relaxed to ``Ã ∈ [0, 1]^{n×n}`` (parametrised on the
upper triangle so symmetry holds by construction) and the surrogate loss is
minimised to convergence with projected gradient descent.  The final discrete
attack flips the ``B`` pairs with the largest ``|A0 − Ã*|``.

The paper uses this method to demonstrate that ignoring discreteness during
optimisation yields erratic attacks — the rounding step can map a good
fractional solution to an arbitrarily bad discrete one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.attacks.constraints import filter_valid_flips
from repro.autograd.ops import symmetric_from_upper
from repro.autograd.optim import ProjectedGradientDescent
from repro.autograd.tensor import Tensor
from repro.oddball.surrogate import surrogate_loss, surrogate_loss_numpy
from repro.utils.logging import get_logger
from repro.utils.validation import check_budget

__all__ = ["ContinuousA"]

_log = get_logger("attacks.continuous")


class ContinuousA(StructuralAttack):
    """Continuous-relaxation attack with top-``B`` rounding.

    Parameters
    ----------
    lr:
        Projected-gradient-descent step size.
    max_iter:
        Iteration cap for the continuous optimisation.
    tol:
        Convergence threshold on the relative loss improvement.
    floor:
        Log-clamp floor inside the surrogate; the relaxed graph can have
        fractional degrees, so this defaults lower than the discrete methods.
    """

    name = "continuousa"

    def __init__(self, lr: float = 0.01, max_iter: int = 200, tol: float = 1e-6,
                 floor: float = 0.5):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.floor = floor

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
    ) -> AttackResult:
        adjacency = self._adjacency_of(graph)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)

        candidate_set = self._resolve_candidates(candidates, adjacency, targets, n)
        if candidate_set is None:
            rows, cols = np.triu_indices(n, k=1)
        else:
            rows, cols = candidate_set.rows, candidate_set.cols
        a0_vector = adjacency[rows, cols]
        # Non-candidate entries stay frozen at their clean values: the relaxed
        # variables are scattered ON TOP of the clean graph with the candidate
        # positions blanked (for the full pair set this base is all-zero and
        # the computation reduces exactly to the legacy parametrisation).
        frozen_base = adjacency.copy()
        frozen_base[rows, cols] = frozen_base[cols, rows] = 0.0
        frozen_tensor = Tensor(frozen_base)
        relaxed = Tensor(a0_vector.copy(), requires_grad=True, name="relaxed_adjacency")
        optimizer = ProjectedGradientDescent([relaxed], lr=self.lr, low=0.0, high=1.0)

        previous_loss = np.inf
        iterations_run = 0
        for iteration in range(self.max_iter):
            optimizer.zero_grad()
            matrix = frozen_tensor + symmetric_from_upper(relaxed, n, rows, cols)
            loss = surrogate_loss(matrix, targets, floor=self.floor, weights=target_weights)
            loss.backward()
            optimizer.step()
            iterations_run = iteration + 1
            current_loss = float(loss.data)
            # Guard the sentinel: ``inf <= inf`` is true, so comparing against
            # the initial ∞ tripped "convergence" on the very first iteration
            # (and left final_relaxed_loss = inf in the metadata).
            if np.isfinite(previous_loss) and abs(previous_loss - current_loss) <= (
                self.tol * max(abs(previous_loss), 1.0)
            ):
                _log.debug("converged after %d iterations", iterations_run)
                break
            previous_loss = current_loss

        difference = np.abs(relaxed.data - a0_vector)
        order = np.argsort(-difference, kind="stable")
        candidates = [(int(rows[k]), int(cols[k])) for k in order if difference[k] > 0.0]
        ordered_flips = filter_valid_flips(adjacency, candidates, limit=budget)

        surrogate_by_budget = {
            0: surrogate_loss_numpy(adjacency, targets, target_weights, floor=self.floor)
        }
        scratch = adjacency.copy()
        for b, (u, v) in enumerate(ordered_flips, start=1):
            scratch[u, v] = scratch[v, u] = 1.0 - scratch[u, v]
            surrogate_by_budget[b] = surrogate_loss_numpy(
                scratch, targets, target_weights, floor=self.floor
            )

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "iterations": iterations_run,
                "final_relaxed_loss": previous_loss,
                "fractional_mass": float(difference.sum()),
                "candidate_strategy": (
                    "legacy-full" if candidate_set is None else candidate_set.strategy
                ),
                "decision_variables": len(rows),
            },
        )

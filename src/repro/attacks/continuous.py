"""ContinuousA (Section V-A-2): full continuous relaxation then rounding.

The adjacency matrix is relaxed to ``Ã ∈ [0, 1]^{n×n}`` (parametrised on the
upper triangle so symmetry holds by construction) and the surrogate loss is
minimised to convergence with projected gradient descent.  The final discrete
attack flips the ``B`` pairs with the largest ``|A0 − Ã*|``.

The paper uses this method to demonstrate that ignoring discreteness during
optimisation yields erratic attacks — the rounding step can map a good
fractional solution to an arbitrarily bad discrete one.

The PGD loop runs through a
:class:`~repro.oddball.surrogate.SurrogateEngine`: the dense backend replays
the historical autograd pipeline (frozen non-candidate entries + symmetric
scatter of the relaxed variables) bit-for-bit, while the sparse backend
evaluates the fractional graph as ``A0 + Δ`` in CSR form — weighted egonet
features plus the closed-form gradient scattered onto the candidate pairs —
so the relaxation also runs on graphs the dense path cannot hold in memory.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.attacks.constraints import filter_valid_flips_engine
from repro.kernels import validate_kernels
from repro.oddball.surrogate import SurrogateEngine, resolve_backend, validate_backend
from repro.utils.logging import get_logger
from repro.utils.validation import check_budget

__all__ = ["ContinuousA"]

_log = get_logger("attacks.continuous")


class ContinuousA(StructuralAttack):
    """Continuous-relaxation attack with top-``B`` rounding.

    Parameters
    ----------
    lr:
        Projected-gradient-descent step size.
    max_iter:
        Iteration cap for the continuous optimisation.
    tol:
        Convergence threshold on the relative loss improvement.
    floor:
        Log-clamp floor inside the surrogate; the relaxed graph can have
        fractional degrees, so this defaults lower than the discrete methods.
    backend:
        Surrogate engine backend (``"auto"``/``"dense"``/``"sparse"``, see
        :mod:`repro.oddball.surrogate`).
    block_size, block_seed:
        Parameters of the ``candidates="block"`` strategy.  The
        relaxation's decision variables are fixed for the whole PGD run,
        so a block here means *one* seeded random draw optimised to
        convergence (no per-step resampling) — the same static-variable
        treatment the adaptive strategies get.
    """

    name = "continuousa"

    def __init__(self, lr: float = 0.01, max_iter: int = 200, tol: float = 1e-6,
                 floor: float = 0.5, backend: str = "auto", kernels: str = "auto",
                 block_size: "int | None" = None, block_seed: int = 0):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.floor = floor
        self.backend = validate_backend(backend)
        self.kernels = validate_kernels(kernels)
        self.block_size = None if block_size is None else int(block_size)
        self.block_seed = int(block_seed)

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
        engine: "SurrogateEngine | None" = None,
    ) -> AttackResult:
        backend = engine.backend if engine is not None else resolve_backend(
            self.backend, graph
        )
        adjacency = self._adjacency_of(graph, allow_sparse=(backend == "sparse"))
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)

        candidate_set = self._resolve_candidates(
            candidates, adjacency, targets, n,
            budget=budget, block_size=self.block_size, block_seed=self.block_seed,
        )
        if candidate_set is None:
            rows, cols = np.triu_indices(n, k=1)
        else:
            rows, cols = candidate_set.rows, candidate_set.cols
        if engine is None:
            engine = SurrogateEngine.create(
                adjacency,
                targets,
                (rows, cols),
                backend=backend,
                floor=self.floor,
                weights=target_weights,
                kernels=self.kernels,
            )
        else:
            # Shared (campaign) engine: repoint instead of rebuilding.  The
            # relaxation's decision variables are fixed for the whole PGD
            # run, so adaptive growth does not apply here — an "adaptive"
            # strategy simply optimises over its initial (target-incident)
            # pairs.
            engine.retarget(
                targets, (rows, cols), floor=self.floor, weights=target_weights
            )
        a0_vector = engine.edge_values
        relaxed = a0_vector.copy()

        previous_loss = np.inf
        iterations_run = 0
        for iteration in range(self.max_iter):
            current_loss, gradient = engine.relaxed_step(relaxed)
            relaxed = np.clip(relaxed - self.lr * gradient, 0.0, 1.0)
            iterations_run = iteration + 1
            # Guard the sentinel: ``inf <= inf`` is true, so comparing against
            # the initial ∞ tripped "convergence" on the very first iteration
            # (and left final_relaxed_loss = inf in the metadata).
            if np.isfinite(previous_loss) and abs(previous_loss - current_loss) <= (
                self.tol * max(abs(previous_loss), 1.0)
            ):
                _log.debug("converged after %d iterations", iterations_run)
                break
            previous_loss = current_loss

        difference = np.abs(relaxed - a0_vector)
        order = np.argsort(-difference, kind="stable")
        ranked = [(int(rows[k]), int(cols[k])) for k in order if difference[k] > 0.0]
        ordered_flips = filter_valid_flips_engine(engine, ranked, limit=budget)

        surrogate_by_budget = {0: engine.current_loss()}
        for b, loss in enumerate(engine.score_prefixes(ordered_flips), start=1):
            surrogate_by_budget[b] = loss

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "iterations": iterations_run,
                "final_relaxed_loss": previous_loss,
                "fractional_mass": float(difference.sum()),
                "candidate_strategy": (
                    "legacy-full" if candidate_set is None else candidate_set.strategy
                ),
                "decision_variables": len(rows),
                "backend": engine.backend,
            },
        )

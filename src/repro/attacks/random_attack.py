"""Random-flip baseline.

Not part of the paper's comparison, but used by the ablation benchmarks to
show how much of the attacks' power comes from the gradient guidance rather
than from mere structural perturbation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.constraints import filter_valid_flips
from repro.oddball.surrogate import surrogate_loss_numpy
from repro.utils.rng import as_generator
from repro.utils.validation import check_budget

__all__ = ["RandomAttack"]


class RandomAttack(StructuralAttack):
    """Flip uniformly-random valid pairs.

    ``target_biased=True`` restricts flips to pairs incident to a target
    node — a slightly stronger baseline matching what a naive attacker with
    knowledge of the target set would do.
    """

    name = "random"

    def __init__(self, rng=None, target_biased: bool = False):
        self.rng = rng
        self.target_biased = target_biased

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
    ) -> AttackResult:
        adjacency = self._adjacency_of(graph)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)
        generator = as_generator(self.rng)

        if self.target_biased:
            pairs = [
                (min(t, v), max(t, v))
                for t in targets
                for v in range(n)
                if v != t
            ]
            pairs = sorted(set(pairs))
        else:
            rows, cols = np.triu_indices(n, k=1)
            pairs = list(zip(rows.tolist(), cols.tolist()))
        order = generator.permutation(len(pairs))
        candidates = [pairs[i] for i in order]
        ordered_flips = filter_valid_flips(adjacency, candidates, limit=budget)

        surrogate_by_budget = {0: surrogate_loss_numpy(adjacency, targets, target_weights)}
        scratch = adjacency.copy()
        for b, (u, v) in enumerate(ordered_flips, start=1):
            scratch[u, v] = scratch[v, u] = 1.0 - scratch[u, v]
            surrogate_by_budget[b] = surrogate_loss_numpy(scratch, targets, target_weights)

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={"target_biased": self.target_biased},
        )

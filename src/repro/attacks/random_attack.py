"""Random-flip baseline.

Not part of the paper's comparison, but used by the ablation benchmarks to
show how much of the attacks' power comes from the gradient guidance rather
than from mere structural perturbation.
"""

from __future__ import annotations

from typing import Sequence

from scipy import sparse

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.attacks.constraints import filter_valid_flips, filter_valid_flips_engine
from repro.oddball.surrogate import (
    SurrogateEngine,
    surrogate_loss_from_features,
    surrogate_loss_numpy,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_budget

__all__ = ["RandomAttack"]


class RandomAttack(StructuralAttack):
    """Flip uniformly-random valid pairs.

    ``target_biased=True`` restricts flips to pairs incident to a target
    node — a slightly stronger baseline matching what a naive attacker with
    knowledge of the target set would do.  It is exactly equivalent to
    passing ``candidates="target_incident"``; an explicit ``candidates``
    argument takes precedence over the flag.

    Scipy sparse adjacencies stay sparse end-to-end: the validity pass and
    the surrogate bookkeeping run through a
    :class:`~repro.oddball.surrogate.SparseSurrogateEngine` (O(deg) probes,
    O(n) scoring) instead of a dense scratch matrix, and produce the exact
    same flips/losses as the dense path on the same graph (parity-tested).

    An injected shared ``engine`` (the campaign/executor path) is used as a
    pure *graph-state backend* — O(deg) validity probes and O(n)
    feature-space loss bookkeeping, with every transient flip popped before
    returning — so campaign workers amortise the per-job feature rebuild
    for this baseline exactly as they do for the gradient attacks, with
    flips and losses identical to a standalone call (parity-tested).
    """

    name = "random"

    def __init__(self, rng=None, target_biased: bool = False):
        self.rng = rng
        self.target_biased = target_biased

    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
        engine: "SurrogateEngine | None" = None,
    ) -> AttackResult:
        """Flip uniformly-random valid pairs from the candidate set."""
        adjacency = self._adjacency_of(graph, allow_sparse=True)
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)
        generator = as_generator(self.rng)

        if candidates is None:
            candidates = "target_incident" if self.target_biased else "full"
        candidate_set = self._resolve_candidates(
            candidates, adjacency, targets, n, budget=budget
        )
        assert candidate_set is not None
        pairs = candidate_set.pairs()
        order = generator.permutation(len(pairs))
        shuffled = [pairs[i] for i in order]

        if engine is not None:
            ordered_flips, surrogate_by_budget = self._via_engine(
                engine, shuffled, budget, targets, target_weights
            )
        elif sparse.issparse(adjacency):
            engine = SurrogateEngine.create(
                adjacency, targets, candidate_set,
                backend="sparse", weights=target_weights,
            )
            ordered_flips = filter_valid_flips_engine(engine, shuffled, limit=budget)
            surrogate_by_budget = {0: engine.current_loss()}
            for b, loss in enumerate(engine.score_prefixes(ordered_flips), start=1):
                surrogate_by_budget[b] = loss
        else:
            ordered_flips = filter_valid_flips(adjacency, shuffled, limit=budget)
            surrogate_by_budget = {
                0: surrogate_loss_numpy(adjacency, targets, target_weights)
            }
            scratch = adjacency.copy()
            for b, (u, v) in enumerate(ordered_flips, start=1):
                scratch[u, v] = scratch[v, u] = 1.0 - scratch[u, v]
                surrogate_by_budget[b] = surrogate_loss_numpy(
                    scratch, targets, target_weights
                )

        return self._prefix_result(
            self.name,
            adjacency,
            ordered_flips,
            budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "target_biased": self.target_biased,
                "candidate_strategy": candidate_set.strategy,
                "candidate_count": len(candidate_set),
            },
        )

    @staticmethod
    def _via_engine(
        engine: SurrogateEngine,
        shuffled,
        budget: int,
        targets: Sequence[int],
        target_weights: "Sequence[float] | None",
    ) -> "tuple[list, dict[int, float]]":
        """Validity pass + prefix losses on an injected shared engine.

        Losses come from :func:`surrogate_loss_from_features` at the
        default floor/ridge, independent of whatever configuration a
        previous campaign job left on the engine — bit-identical to the
        standalone dense and sparse paths on the same graph.
        """
        ordered_flips = filter_valid_flips_engine(engine, shuffled, limit=budget)
        surrogate_by_budget = {
            0: surrogate_loss_from_features(
                *engine.node_features(), targets, weights=target_weights
            )
        }
        for b, (u, v) in enumerate(ordered_flips, start=1):
            engine.push_flip(u, v)
            surrogate_by_budget[b] = surrogate_loss_from_features(
                *engine.node_features(), targets, weights=target_weights
            )
        engine.pop_flips(len(ordered_flips))
        return ordered_flips, surrogate_by_budget

"""BinarizedAttack (Section V-B, Algorithm 1) — the paper's contribution.

Inspired by Binarized Neural Networks, the attack keeps **two** decision
variables per candidate pair (upper-triangle entry of the adjacency matrix):

* a continuous ``Ż ∈ [0, 1]`` used in the backward pass, and
* a discrete dummy ``Z = −binarized(2Ż − 1) ∈ {±1}`` used in the forward
  pass, where ``Z = −1`` means "flip this pair".

The forward pass therefore evaluates the surrogate loss on a **discrete**
graph — measuring the true effect of discrete updates — while gradients flow
to ``Ż`` through a straight-through estimator.  The budget constraint is
replaced by a LASSO penalty ``λ‖Ż‖₁`` (Eq. 8a) so the objective can be
optimised well beyond ``B`` steps, and a sweep over ``λ ∈ Λ`` trades attack
strength against sparsity.

Implementation notes
--------------------
* The PGD loop runs through a
  :class:`~repro.oddball.surrogate.SurrogateEngine`.  ``backend="dense"``
  replays the historical autograd pipeline bit-for-bit (instead of Eq. 6's
  ``A = (A0 − ½) ⊙ Z + ½``, which would corrupt the diagonal when ``Z`` is
  scattered with a zero diagonal, it uses the exactly equivalent
  off-diagonal form ``A = A0 + (1 − 2·A0) ⊙ F`` with the flip indicator
  ``F = (1 − Z)/2 ∈ {0, 1}``).  ``backend="sparse"`` evaluates each
  discrete iterate by applying its flip set to incrementally-maintained
  egonet features, scoring in O(n), scattering the closed-form
  straight-through gradient onto the candidate pairs only, and rolling the
  flips back — O(Σ deg + n + |C|) per iteration instead of O(n³), which is
  what makes the attack feasible on sparse 10k+-node graphs.  The whole
  λ-sweep reuses ONE engine instance; no adjacency is ever rebuilt between
  iterates.  ``backend="auto"`` (default) picks dense below
  :data:`~repro.oddball.surrogate.AUTO_SPARSE_NODE_THRESHOLD` nodes and
  sparse above it or for scipy-sparse inputs (which then stay sparse
  end-to-end, including in the :class:`AttackResult`).
* Alg. 1 lines 16–19 ("pick out Ż = min L satisfying ΣZ = −b"): during the
  optimisation we record every iterate's discrete flip set (validated
  against the no-singleton rule) together with its surrogate loss; the
  budget-``b`` answer is the best recorded flip set of size ≤ b, falling
  back to the top-``b`` pairs ranked by final ``Ż``.
* ``candidates`` restricts the decision variables to a
  :class:`~repro.attacks.candidates.CandidateSet`: ``Ż`` then has one entry
  per candidate pair instead of n(n−1)/2, shrinking both the optimiser
  state and the per-iteration scatter.  With the ``full`` strategy the
  sweep is bit-for-bit identical to the legacy full-pair parametrisation.
* Candidate solutions recorded during the sweep are re-scored at
  ``self.floor`` whenever the validity pass trims them, so every entry of
  the per-budget argmin is measured on the same objective (Alg. 1 lines
  16–19 compare losses across iterates — mixing floors here silently
  corrupted the selection when ``floor != 1.0``).
* The adversarial gradient is normalised to unit max-magnitude before the
  projected update.  The raw surrogate's gradient scale varies by orders of
  magnitude across graphs (it is quadratic in egonet edge counts), so plain
  PGD with any fixed ``η``/``λ`` either stalls or saturates everything in
  one step.  Normalisation is a per-iteration rescaling of the learning
  rate — the fixed points and the ``Ż`` ranking dynamics are unchanged —
  and it makes one ``(η, Λ)`` default work on every dataset in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackResult, StructuralAttack, validate_targets
from repro.attacks.candidates import CandidateSet
from repro.attacks.constraints import filter_valid_flips_engine
from repro.kernels import validate_kernels
from repro.oddball.surrogate import SurrogateEngine, resolve_backend, validate_backend
from repro.utils.logging import get_logger
from repro.utils.validation import check_budget

__all__ = ["BinarizedAttack"]

_log = get_logger("attacks.binarized")

Edge = tuple[int, int]


@dataclass
class _Candidate:
    """One recorded (validated) discrete solution."""

    flips: tuple[Edge, ...]
    surrogate: float
    lam: float
    iteration: int

    @property
    def size(self) -> int:
        return len(self.flips)


class BinarizedAttack(StructuralAttack):
    """Gradient-descent attack with binarized decision variables (Alg. 1).

    Parameters
    ----------
    lambdas:
        The hyper-parameter set Λ; each λ weighs the LASSO penalty standing
        in for the budget constraint.  With the normalised gradient, λ is
        directly interpretable: entries whose relative gradient magnitude
        stays below λ never cross the flip threshold.  The full sweep's
        iterates form the candidate pool from which per-budget solutions
        are selected.
    iterations:
        Inner-loop length T per λ.
    lr:
        Projected-gradient-descent learning rate η.
    floor:
        Log-clamp floor of the surrogate (the forward graph is discrete, so
        the default of 1.0 only guards transient singleton states).
    init:
        Initial value of every ``Ż`` entry (0 = start from the clean graph).
    normalize_gradient:
        Rescale the adversarial gradient to unit max-magnitude each step
        (see the module docstring); disable to run textbook Alg. 1 PGD.
    backend:
        Surrogate engine backend: ``"dense"`` (exact historical autograd
        path), ``"sparse"`` (incremental features + rollback, for large or
        scipy-sparse graphs) or ``"auto"`` (pick by input size/type).
    block_size, block_seed:
        Parameters of the ``candidates="block"`` strategy (PRBCD): the
        random block's size cap (default:
        :func:`~repro.attacks.candidates.default_block_size` of the
        budget) and its sampling seed.  Part of the attack's campaign-job
        identity, so block runs checkpoint/resume deterministically.
        Ignored for every other strategy.

    Example
    -------
    >>> from repro.graph import erdos_renyi
    >>> from repro.oddball import OddBall
    >>> graph = erdos_renyi(40, 0.15, rng=3)
    >>> targets = OddBall().analyze(graph).top_k(2).tolist()
    >>> attack = BinarizedAttack(iterations=30)
    >>> result = attack.attack(graph, targets, budget=4)
    >>> 0 <= len(result.flips()) <= 4
    True
    """

    name = "binarizedattack"

    def __init__(
        self,
        lambdas: Sequence[float] = (0.3, 0.1, 0.02),
        iterations: int = 200,
        lr: float = 0.05,
        floor: float = 1.0,
        init: float = 0.0,
        normalize_gradient: bool = True,
        backend: str = "auto",
        kernels: str = "auto",
        block_size: "int | None" = None,
        block_seed: int = 0,
    ):
        if not lambdas:
            raise ValueError("lambda sweep must not be empty")
        if any(lam < 0 for lam in lambdas):
            raise ValueError(f"lambdas must be non-negative, got {list(lambdas)}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 <= init <= 1.0:
            raise ValueError(f"init must lie in [0, 1], got {init}")
        self.lambdas = tuple(float(lam) for lam in lambdas)
        self.iterations = iterations
        self.lr = lr
        self.floor = floor
        self.init = init
        self.normalize_gradient = normalize_gradient
        self.backend = validate_backend(backend)
        self.kernels = validate_kernels(kernels)
        self.block_size = None if block_size is None else int(block_size)
        self.block_seed = int(block_seed)

    # ------------------------------------------------------------------ #
    def attack(
        self,
        graph,
        targets: Sequence[int],
        budget: int,
        target_weights: "Sequence[float] | None" = None,
        candidates: "CandidateSet | str | None" = None,
        engine: "SurrogateEngine | None" = None,
    ) -> AttackResult:
        backend = engine.backend if engine is not None else resolve_backend(
            self.backend, graph
        )
        adjacency = self._adjacency_of(graph, allow_sparse=(backend == "sparse"))
        n = adjacency.shape[0]
        targets = validate_targets(targets, n)
        budget = check_budget(budget)

        candidate_set = self._resolve_candidates(
            candidates, adjacency, targets, n,
            budget=budget, block_size=self.block_size, block_seed=self.block_seed,
        )
        if candidate_set is None:
            rows, cols = np.triu_indices(n, k=1)
        else:
            rows, cols = candidate_set.rows, candidate_set.cols
        if engine is None:
            engine = SurrogateEngine.create(
                adjacency,
                targets,
                (rows, cols),
                backend=backend,
                floor=self.floor,
                weights=target_weights,
                kernels=self.kernels,
            )
        else:
            # Shared (campaign) engine: repoint it at this job's targets and
            # candidates instead of rebuilding features from scratch.
            engine.retarget(
                targets, (rows, cols), floor=self.floor, weights=target_weights
            )
        base_loss = engine.current_loss()

        recorded: list[_Candidate] = [
            _Candidate(flips=(), surrogate=base_loss, lam=0.0, iteration=-1)
        ]
        final_zdot: "np.ndarray | None" = None

        for lam in self.lambdas:
            zdot = np.full(len(rows), self.init, dtype=np.float64)
            for iteration in range(self.iterations):
                # Forward on the DISCRETE graph + straight-through backward
                # (Alg. 1 lines 5-11), delegated to the engine.
                adversarial, gradient, flip_mask = engine.binarized_step(zdot)
                # Record the iterate's discrete solution before updating.
                landed = self._record(
                    recorded,
                    engine,
                    zdot,
                    flip_mask,
                    rows,
                    cols,
                    adversarial,
                    lam,
                    iteration,
                    budget,
                )
                # Projected update (Alg. 1 line 12).  The LASSO term
                # contributes its exact subgradient +λ (Ż >= 0 in the box),
                # added after the optional normalisation so that λ is
                # calibrated against relative gradient magnitudes.
                if self.normalize_gradient:
                    scale = float(np.max(np.abs(gradient)))
                    if scale > 0.0:
                        gradient = gradient / scale
                gradient = gradient + lam
                zdot = np.clip(zdot - self.lr * gradient, 0.0, 1.0)
                # Per-step adaptation: a recorded (validated) iterate counts
                # as landed flips.  Refresh runs every iteration — adaptive
                # sets only react to landed flips (and return ``self``
                # otherwise), while a block set resamples its low-gradient
                # half each step, PRBCD-style.  Ż survives through
                # ``transfer_positions``: surviving pairs keep their state,
                # evicted pairs drop theirs, fresh entries start at ``init``
                # (a membership change can keep |C| constant, so the old
                # length check is not a valid shortcut here).
                if candidate_set is not None:
                    refreshed = candidate_set.refresh(landed or [], engine)
                    if refreshed is not candidate_set:
                        if not refreshed.same_pairs(candidate_set):
                            migrated = np.full(
                                len(refreshed), self.init, dtype=np.float64
                            )
                            positions = refreshed.transfer_positions(rows, cols)
                            survived = positions >= 0
                            migrated[positions[survived]] = zdot[survived]
                            zdot = migrated
                            engine.set_candidates(refreshed)
                            rows, cols = refreshed.rows, refreshed.cols
                        candidate_set = refreshed
            final_zdot = zdot.copy()

        flips_by_budget, surrogate_by_budget = self._select(
            recorded, engine, budget, final_zdot, rows, cols
        )
        return AttackResult(
            method=self.name,
            original=adjacency,
            flips_by_budget=flips_by_budget,
            surrogate_by_budget=surrogate_by_budget,
            metadata={
                "lambdas": list(self.lambdas),
                "iterations": self.iterations,
                "lr": self.lr,
                "candidates_recorded": len(recorded),
                "candidate_strategy": (
                    "legacy-full" if candidate_set is None else candidate_set.strategy
                ),
                "decision_variables": len(rows),
                "backend": engine.backend,
            },
        )

    # ------------------------------------------------------------------ #
    def _record(
        self,
        recorded: list[_Candidate],
        engine: SurrogateEngine,
        zdot_values: np.ndarray,
        flip_mask: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        adversarial_loss: float,
        lam: float,
        iteration: int,
        budget: int,
    ) -> "list[Edge] | None":
        """Validate and store the current iterate's discrete flip set.

        Returns the validated flips (the attack's per-step adaptive
        candidate hook treats them as "landed"), or ``None`` when the
        iterate was skipped.
        """
        flipped = np.flatnonzero(flip_mask)
        if len(flipped) == 0 or len(flipped) > 4 * max(budget, 1):
            # Empty solutions are pre-seeded; grossly over-budget iterates
            # cannot win for any b <= budget, skip the bookkeeping cost.
            return None
        # Most-confident-first ordering for the validity pass.
        order = flipped[np.argsort(-zdot_values[flipped], kind="stable")]
        raw_flips = [(int(rows[k]), int(cols[k])) for k in order]
        valid_flips = filter_valid_flips_engine(engine, raw_flips, limit=budget)
        if not valid_flips:
            return None
        if len(valid_flips) == len(raw_flips):
            surrogate = adversarial_loss  # forward value still exact
        else:
            # Re-score the trimmed flip set at the SAME floor the forward
            # pass uses — mixing floors here corrupted the per-budget argmin
            # whenever ``self.floor != 1.0``.
            surrogate = engine.score_flips(valid_flips)
        recorded.append(
            _Candidate(
                flips=tuple(valid_flips), surrogate=surrogate, lam=lam, iteration=iteration
            )
        )
        return valid_flips

    def _select(
        self,
        recorded: list[_Candidate],
        engine: SurrogateEngine,
        budget: int,
        final_zdot: "np.ndarray | None",
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> tuple[dict[int, list[Edge]], dict[int, float]]:
        """Per-budget best recorded solution (Alg. 1 lines 16-19)."""
        flips_by_budget: dict[int, list[Edge]] = {}
        surrogate_by_budget: dict[int, float] = {}
        for b in range(budget + 1):
            eligible = [c for c in recorded if c.size <= b]
            best = min(eligible, key=lambda c: (c.surrogate, c.size))
            chosen = list(best.flips)
            if not chosen and b > 0 and final_zdot is not None:
                # Fallback: top-b pairs by final Ż (only reached when no
                # iterate produced a usable flip set).
                order = np.argsort(-final_zdot, kind="stable")[: 4 * b]
                ranked = [(int(rows[k]), int(cols[k])) for k in order if final_zdot[k] > 0.0]
                chosen = filter_valid_flips_engine(engine, ranked, limit=b)
                if chosen:
                    candidate_loss = engine.score_flips(chosen)
                    if candidate_loss >= best.surrogate:
                        chosen = list(best.flips)
                    else:
                        best = _Candidate(tuple(chosen), candidate_loss, -1.0, -1)
            flips_by_budget[b] = chosen
            surrogate_by_budget[b] = best.surrogate
        return flips_by_budget, surrogate_by_budget

"""Tests for split/scaling helpers."""

import numpy as np
import pytest

from repro.ml.preprocessing import StandardScaler, train_test_split_indices


class TestTrainTestSplit:
    def test_partition_complete_and_disjoint(self):
        train, test = train_test_split_indices(100, test_fraction=0.3, rng=0)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_test_fraction_respected(self):
        _, test = train_test_split_indices(200, test_fraction=0.25, rng=1)
        assert len(test) == 50

    def test_stratified_preserves_class_ratio(self):
        labels = np.array([1] * 20 + [0] * 180)
        train, test = train_test_split_indices(200, 0.3, rng=2, stratify=labels)
        assert labels[test].sum() == pytest.approx(6, abs=1)
        assert labels[train].sum() == pytest.approx(14, abs=1)

    def test_stratified_partition_complete(self):
        labels = np.array([0, 1] * 25)
        train, test = train_test_split_indices(50, 0.2, rng=3, stratify=labels)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_deterministic(self):
        a = train_test_split_indices(40, rng=7)
        b = train_test_split_indices(40, rng=7)
        np.testing.assert_array_equal(a[0], b[0])

    def test_errors(self):
        with pytest.raises(ValueError):
            train_test_split_indices(1)
        with pytest.raises(ValueError):
            train_test_split_indices(10, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split_indices(10, stratify=np.zeros(5))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_passthrough(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        np.testing.assert_allclose(scaler.transform(np.array([[4.0]])), [[3.0]])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

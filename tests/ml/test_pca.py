"""Tests for PCA."""

import numpy as np
import pytest

from repro.ml.pca import PCA


class TestPCA:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 6))
        z = PCA(3).fit_transform(x)
        assert z.shape == (50, 3)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(1)
        pca = PCA(3).fit(rng.normal(size=(80, 5)))
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_first_component_captures_dominant_axis(self):
        rng = np.random.default_rng(2)
        direction = np.array([3.0, 4.0]) / 5.0
        x = rng.normal(size=(200, 1)) * 10.0 @ direction[None, :]
        x += rng.normal(size=(200, 2)) * 0.1
        pca = PCA(1).fit(x)
        cosine = abs(pca.components_[0] @ direction)
        assert cosine > 0.99

    def test_explained_variance_sorted_and_bounded(self):
        rng = np.random.default_rng(3)
        pca = PCA(4).fit(rng.normal(size=(100, 6)) * np.array([5, 3, 2, 1, 0.5, 0.1]))
        ratios = pca.explained_variance_ratio_
        assert (np.diff(ratios) <= 1e-12).all()
        assert 0.0 < ratios.sum() <= 1.0 + 1e-12

    def test_transform_centers_data(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(60, 3)) + 100.0
        z = PCA(2).fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)

    def test_reconstruction_error_small_for_low_rank(self):
        rng = np.random.default_rng(5)
        basis = rng.normal(size=(2, 8))
        x = rng.normal(size=(100, 2)) @ basis
        pca = PCA(2).fit(x)
        z = pca.transform(x)
        reconstruction = z @ pca.components_ + pca.mean_
        assert np.abs(reconstruction - x).max() < 1e-8

    def test_errors(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(5).fit(np.ones((3, 3)))
        with pytest.raises(ValueError):
            PCA(1).fit(np.ones(4))
        with pytest.raises(RuntimeError):
            PCA(1).transform(np.ones((2, 2)))

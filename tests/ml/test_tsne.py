"""Tests for the t-SNE implementation."""

import numpy as np
import pytest

from repro.ml.tsne import TSNE, _conditional_probabilities, _pairwise_squared_distances


class TestHelpers:
    def test_pairwise_distances(self):
        x = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        d = _pairwise_squared_distances(x)
        assert d[0, 1] == pytest.approx(25.0)
        assert d[0, 2] == pytest.approx(1.0)
        np.testing.assert_allclose(np.diagonal(d), 0.0)

    def test_conditional_probabilities_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        d = _pairwise_squared_distances(rng.normal(size=(20, 3)))
        p = _conditional_probabilities(d, perplexity=5.0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-6)
        np.testing.assert_allclose(np.diagonal(p), 0.0)

    def test_perplexity_calibration(self):
        rng = np.random.default_rng(1)
        d = _pairwise_squared_distances(rng.normal(size=(30, 4)))
        target = 8.0
        p = _conditional_probabilities(d, perplexity=target)
        entropies = -(p * np.log(p + 1e-12)).sum(axis=1)
        np.testing.assert_allclose(np.exp(entropies), target, rtol=0.05)


class TestTSNE:
    def test_output_shape_and_finite(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, 10))
        z = TSNE(n_iter=100, rng=0).fit_transform(x)
        assert z.shape == (40, 2)
        assert np.isfinite(z).all()

    def test_two_blobs_stay_separated(self):
        rng = np.random.default_rng(3)
        blob_a = rng.normal(0.0, 0.3, size=(25, 5))
        blob_b = rng.normal(6.0, 0.3, size=(25, 5))
        x = np.vstack([blob_a, blob_b])
        z = TSNE(n_iter=250, perplexity=10, rng=0).fit_transform(x)
        center_a = z[:25].mean(axis=0)
        center_b = z[25:].mean(axis=0)
        spread = max(z[:25].std(), z[25:].std())
        assert np.linalg.norm(center_a - center_b) > 2.0 * spread

    def test_kl_divergence_recorded(self):
        rng = np.random.default_rng(4)
        model = TSNE(n_iter=60, rng=0)
        model.fit_transform(rng.normal(size=(15, 4)))
        assert model.kl_divergence_ is not None
        assert np.isfinite(model.kl_divergence_)

    def test_random_init(self):
        rng = np.random.default_rng(5)
        z = TSNE(n_iter=50, init="random", rng=0).fit_transform(rng.normal(size=(12, 3)))
        assert z.shape == (12, 2)

    def test_perplexity_capped_for_small_n(self):
        rng = np.random.default_rng(6)
        # would violate 3*perplexity < n-1 without the internal cap
        z = TSNE(n_iter=50, perplexity=30, rng=0).fit_transform(rng.normal(size=(10, 3)))
        assert z.shape == (10, 2)

    def test_errors(self):
        with pytest.raises(ValueError):
            TSNE(n_components=0)
        with pytest.raises(ValueError):
            TSNE(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNE(n_iter=5)
        with pytest.raises(ValueError):
            TSNE(init="bogus")
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.ones((3, 3)))
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.ones(5))

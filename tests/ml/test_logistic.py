"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression


class TestLogisticRegression:
    def test_learns_linear_boundary(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 2))
        y = (x @ np.array([1.0, -2.0]) > 0).astype(int)
        model = LogisticRegression(2, rng=0).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        y = rng.integers(0, 2, size=50)
        model = LogisticRegression(3, rng=0, epochs=50).fit(x, y)
        proba = model.predict_proba(x)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegression(2, rng=0, epochs=100).fit(x, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_l2_shrinks_weights(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 2)) * 5
        y = (x[:, 0] > 0).astype(int)
        free = LogisticRegression(2, l2=0.0, rng=0).fit(x, y)
        ridge = LogisticRegression(2, l2=1.0, rng=0).fit(x, y)
        assert np.abs(ridge.linear.weight.data).sum() < np.abs(free.linear.weight.data).sum()

    def test_threshold_parameter(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(60, 2))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegression(2, rng=0, epochs=50).fit(x, y)
        strict = model.predict(x, threshold=0.9).sum()
        loose = model.predict(x, threshold=0.1).sum()
        assert strict <= loose

    def test_errors(self):
        with pytest.raises(ValueError):
            LogisticRegression(2, l2=-1.0)
        model = LogisticRegression(2, rng=0)
        with pytest.raises(ValueError):
            model.fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            model.fit(np.ones(3), np.ones(3))

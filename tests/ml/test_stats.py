"""Tests for the permutation test and histogram densities."""

import numpy as np
import pytest

from repro.ml.stats import histogram_density, permutation_test


class TestPermutationTest:
    def test_identical_samples_high_p(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        result = permutation_test(x, x.copy(), n_resamples=500, rng=1)
        assert result.p_value > 0.5
        assert result.statistic == pytest.approx(0.0, abs=1e-12)

    def test_shifted_samples_low_p(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 1.0, size=150)
        y = rng.normal(2.0, 1.0, size=150)
        result = permutation_test(x, y, n_resamples=500, rng=1)
        assert result.p_value < 0.01
        assert result.rejects_at(0.01)

    def test_p_value_in_unit_interval(self):
        rng = np.random.default_rng(2)
        result = permutation_test(rng.normal(size=20), rng.normal(size=30),
                                  n_resamples=200, rng=3)
        assert 0.0 < result.p_value <= 1.0

    def test_same_distribution_p_roughly_uniform(self):
        """Under H0 the p-value should rarely be tiny."""
        rng = np.random.default_rng(4)
        small = sum(
            permutation_test(rng.normal(size=40), rng.normal(size=40),
                             n_resamples=200, rng=k).p_value < 0.05
            for k in range(20)
        )
        assert small <= 4

    def test_deterministic_given_rng(self):
        x, y = np.arange(10.0), np.arange(10.0) + 0.5
        a = permutation_test(x, y, n_resamples=300, rng=9)
        b = permutation_test(x, y, n_resamples=300, rng=9)
        assert a.p_value == b.p_value

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            permutation_test(np.array([]), np.array([1.0]))

    def test_bad_resamples(self):
        with pytest.raises(ValueError):
            permutation_test(np.ones(3), np.ones(3), n_resamples=0)

    def test_unequal_sizes_supported(self):
        result = permutation_test(np.ones(5), np.zeros(50), n_resamples=200, rng=0)
        assert result.p_value < 0.05


class TestHistogramDensity:
    def test_integrates_to_one(self):
        rng = np.random.default_rng(0)
        centers, density = histogram_density(rng.normal(size=1000), bins=25)
        width = centers[1] - centers[0]
        assert (density * width).sum() == pytest.approx(1.0)

    def test_respects_range(self):
        centers, _ = histogram_density(np.array([1.0, 2.0]), bins=4, value_range=(0.0, 4.0))
        assert centers[0] == pytest.approx(0.5)
        assert centers[-1] == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_density(np.array([]))

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            histogram_density(np.ones(3), bins=0)

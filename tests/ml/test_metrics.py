"""Tests for classification metrics (brute-force oracles + properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc_score,
)


def _auc_bruteforce(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Pair-counting definition: P(score+ > score−) + 0.5 P(tie)."""
    pos = y_score[y_true == 1]
    neg = y_score[y_true == 0]
    wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
    return wins / (len(pos) * len(neg))


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_perfectly_wrong(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.1, 0.2])

    def test_nonbinary_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([0, 2], [0.1, 0.2])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc_score([0, 1], [0.5])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 1000))
    def test_matches_bruteforce(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=n)
        if y_true.sum() in (0, n):
            y_true[0] = 1 - y_true[0]
        # Quantised scores force ties to be exercised.
        y_score = rng.integers(0, 5, size=n) / 4.0
        ours = roc_auc_score(y_true, y_score)
        assert ours == pytest.approx(_auc_bruteforce(y_true, y_score))


class TestConfusionDerived:
    def test_confusion_matrix_layout(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 1]])

    def test_precision_recall_f1_oracle(self):
        y_true = np.array([1, 1, 1, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0, 0])
        # tp=2, fp=1, fn=1
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert accuracy(y_true, y_pred) == pytest.approx(5 / 7)

    def test_degenerate_no_positive_predictions(self):
        assert precision([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_degenerate_no_positives(self):
        assert recall([0, 0], [0, 0]) == 0.0

    def test_f1_harmonic_mean_property(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        p, r = precision(y_true, y_pred), recall(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_nonbinary_prediction_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0, 3])

"""Tests for the experiment runner CLI (main entry point)."""

import pytest

from repro.experiments.runner import main


class TestMain:
    def test_single_experiment_prints_table(self, capsys, tmp_path):
        exit_code = main(
            ["--experiment", "table1", "--scale", "smoke", "--seed", "3",
             "--output", str(tmp_path)]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out
        assert (tmp_path / "table1_smoke.json").exists()

    def test_requires_experiment_or_all(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "table1", "--scale", "huge"])

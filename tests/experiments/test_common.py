"""Tests for experiment plumbing."""

import numpy as np

from repro.attacks import GradMaxSearch
from repro.experiments.common import (
    attack_suite,
    format_table,
    load_experiment_graph,
    sample_targets,
    tau_for_budgets,
    top_score_groups,
)
from repro.experiments.config import SMOKE
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory


class TestLoadExperimentGraph:
    def test_deterministic_per_seed_factory(self):
        a = load_experiment_graph("ba", SMOKE, SeedSequenceFactory(1))
        b = load_experiment_graph("ba", SMOKE, SeedSequenceFactory(1))
        assert a.graph == b.graph


class TestSampleTargets:
    def test_targets_from_top_pool(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        rng = np.random.default_rng(0)
        targets = sample_targets(report, 5, rng, pool_size=20)
        pool = set(report.top_k(20).tolist())
        assert set(targets) <= pool
        assert len(targets) == 5
        assert targets == sorted(targets)

    def test_count_capped_at_pool(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        targets = sample_targets(report, 500, np.random.default_rng(0), pool_size=10)
        assert len(targets) == 10


class TestAttackSuite:
    def test_contains_papers_three_methods(self):
        suite = attack_suite(SMOKE)
        assert set(suite) == {"gradmaxsearch", "continuousa", "binarizedattack"}


class TestTauForBudgets:
    def test_matches_attackresult_metric(self, small_ba_graph):
        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        result = GradMaxSearch().attack(small_ba_graph, targets, 3)
        taus = tau_for_budgets(small_ba_graph.adjacency, result, targets, [0, 3])
        assert taus[0] == 0.0
        assert taus[1] == result.score_decrease(targets, 3)


class TestTopScoreGroups:
    def test_partition(self, small_ba_graph):
        scores, low, medium, high = top_score_groups(small_ba_graph)
        n = small_ba_graph.number_of_nodes
        assert len(scores) == n
        assert len(low) + len(medium) + len(high) == n
        if len(low) and len(high):
            assert scores[low].max() <= scores[high].min()


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.123456]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.123" in text
        assert "2.500" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

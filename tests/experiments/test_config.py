"""Tests for scale presets."""

import pytest

from repro.experiments.config import CI, PAPER, SMOKE, Scale


class TestScale:
    def test_budgets_for_distinct_sorted_positive(self):
        budgets = CI.budgets_for(500)
        assert budgets == sorted(set(budgets))
        assert all(b >= 1 for b in budgets)

    def test_budgets_for_tiny_graph_collapse(self):
        budgets = CI.budgets_for(10)
        assert budgets[0] >= 1

    def test_scaled(self):
        assert PAPER.scaled(30) == 30
        assert CI.scaled(30) == 8
        assert SMOKE.scaled(1) == 1  # floor at 1

    def test_with_override(self):
        modified = CI.with_(n_repeats=9)
        assert modified.n_repeats == 9
        assert modified.graph_scale == CI.graph_scale
        assert CI.n_repeats != 9  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            CI.n_repeats = 3

    def test_paper_matches_paper_protocol(self):
        assert PAPER.graph_scale == 1.0
        assert PAPER.n_repeats == 5
        assert PAPER.permutation_resamples == 100_000

    def test_presets_are_scales(self):
        for preset in (PAPER, CI, SMOKE):
            assert isinstance(preset, Scale)

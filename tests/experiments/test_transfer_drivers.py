"""Integration tests for the transfer-attack experiment drivers (slower)."""

import numpy as np

from repro.experiments import fig8_9_embeddings, table3_gal, table4_refex
from repro.experiments.config import SMOKE

TINY = SMOKE.with_(
    n_repeats=1, attack_iterations=25, gal_epochs=15, mlp_epochs=40, tsne_iterations=60
)


class TestTable3:
    def test_gal_rows_wellformed(self):
        payload = table3_gal.run(
            scale=TINY, seed=3, datasets=("bitcoin-alpha",),
            edge_fractions=(0.0, 0.02), max_targets=5,
        )
        data = payload["datasets"]["bitcoin-alpha"]
        assert data["n_targets"] >= 1
        rows = data["rows"]
        assert rows[0]["budget"] == 0
        assert rows[0]["delta_b_pct"] == 0.0
        for row in rows:
            assert 0.0 <= row["auc"] <= 1.0
            assert 0.0 <= row["f1"] <= 1.0
        assert "Table III" in table3_gal.format_results(payload)


class TestTable4:
    def test_refex_rows_wellformed(self):
        payload = table4_refex.run(
            scale=TINY, seed=3,
            budgets_by_dataset={"bitcoin-alpha": (0, 4)}, max_targets=5,
        )
        rows = payload["datasets"]["bitcoin-alpha"]["rows"]
        assert [r["budget"] for r in rows] == [0, 4]
        assert "Table IV" in table4_refex.format_results(payload)


class TestFig89:
    def test_embedding_panel(self):
        payload = fig8_9_embeddings.run(
            scale=TINY, seed=3, panels=(("refex", "bitcoin-alpha", 30),)
        )
        panel = payload["panels"][0]
        clean = np.array(panel["clean_coordinates"])
        poisoned = np.array(panel["poisoned_coordinates"])
        assert clean.shape == poisoned.shape
        assert clean.shape[1] == 2
        assert np.isfinite(clean).all()
        for probe in ("clean_probe", "poisoned_probe"):
            value = panel[probe]
            assert np.isnan(value["auc"]) or 0.0 <= value["auc"] <= 1.0
        assert "Figs 8/9" in fig8_9_embeddings.format_results(payload)

"""Smoke-level integration tests: every experiment driver runs end-to-end at
a tiny scale and produces a well-formed payload + formatted text.

These are the repository's strongest integration tests — they exercise the
full stack (datasets → detector → attacks → victims → metrics) exactly the
way the benchmark harness does.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig4_effectiveness,
    fig5_case_study,
    fig6_preferences,
    fig7_distributions,
    fig10_defense,
    table1_datasets,
    table2_side_effects,
)
from repro.experiments.config import SMOKE
from repro.experiments.runner import EXPERIMENTS, run_experiment

TINY = SMOKE.with_(n_repeats=1, attack_iterations=25, permutation_resamples=100)


class TestTable1:
    def test_payload_and_text(self):
        payload = table1_datasets.run(scale=TINY, seed=3)
        assert len(payload["rows"]) == 5
        for row in payload["rows"]:
            assert row["edges"] > 0
        text = table1_datasets.format_results(payload)
        assert "bitcoin-alpha" in text


class TestFig4:
    def test_single_panel(self):
        payload = fig4_effectiveness.run(
            scale=TINY, seed=3, panels=(("bitcoin-alpha", 10),)
        )
        panel = payload["panels"][0]
        assert set(panel["tau_mean"]) == {"gradmaxsearch", "continuousa", "binarizedattack"}
        lengths = {len(v) for v in panel["tau_mean"].values()}
        assert lengths == {len(panel["budgets"])}
        # the headline claim at max budget on this panel: binarized >= continuous
        assert (
            panel["tau_mean"]["binarizedattack"][-1]
            >= panel["tau_mean"]["continuousa"][-1] - 0.15
        )
        text = fig4_effectiveness.format_results(payload)
        assert "binarizedattack" in text


class TestFig5:
    def test_cases_reduce_scores(self):
        payload = fig5_case_study.run(scale=TINY, seed=3, n_cases=2)
        assert len(payload["cases"]) == 2
        for case in payload["cases"]:
            assert case["ascore_after"] <= case["ascore_before"]
            assert case["edges_added"] + case["edges_deleted"] <= payload["budget"]
        assert "Fig 5" in fig5_case_study.format_results(payload)


class TestFig6:
    def test_groups_and_regressions(self):
        payload = fig6_preferences.run(scale=TINY, seed=3, per_group=4)
        assert set(payload["tau_by_group"]) == {"low", "medium", "high"}
        assert np.isfinite(payload["regression_clean"]["beta1"])
        assert "regression poisoned" in fig6_preferences.format_results(payload)


class TestTable2:
    def test_pvalues_in_range(self):
        payload = table2_side_effects.run(
            scale=TINY, seed=3, datasets=("bitcoin-alpha",), n_experiments=1
        )
        rows = payload["table"]["bitcoin-alpha"]
        for row in rows:
            assert 0.0 < row["p_n"] <= 1.0
            assert 0.0 < row["p_e"] <= 1.0
        assert "Table II" in table2_side_effects.format_results(payload)


class TestFig7:
    def test_density_series(self):
        payload = fig7_distributions.run(scale=TINY, seed=3, bins=10)
        for feature in ("N", "E"):
            series = payload["series"][feature]
            assert len(series["centers"]) == 10
            assert len(series["clean"]) == 10
            summary = payload["summary"][feature]
            assert 0.0 <= summary["total_variation"] <= 1.0 + 1e-9
        assert "TV-distance" in fig7_distributions.format_results(payload)


class TestFig10:
    def test_defense_curves(self):
        payload = fig10_defense.run(scale=TINY, seed=3, datasets=("bitcoin-alpha",))
        data = payload["datasets"]["bitcoin-alpha"]
        assert set(data["tau"]) == {"ols", "huber", "ransac"}
        assert len(data["tau"]["ols"]) == len(data["budgets"])
        assert "no-defence" in fig10_defense.format_results(payload)


class TestRunner:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig4", "fig5", "fig6", "table2",
            "fig7", "table3", "table4", "fig8_9", "fig10",
        }

    def test_run_experiment_writes_outputs(self, tmp_path):
        payload, text = run_experiment("table1", scale=TINY, seed=3, output_dir=tmp_path)
        assert (tmp_path / "table1_smoke.json").exists()
        assert (tmp_path / "table1_smoke.txt").exists()
        assert payload["rows"]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

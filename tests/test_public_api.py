"""Public-API contract tests: everything documented in the README imports
from the advertised locations and every ``__all__`` name resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.graph",
    "repro.oddball",
    "repro.attacks",
    "repro.gad",
    "repro.kernels",
    "repro.ml",
    "repro.experiments",
    "repro.store",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


def test_readme_quickstart_symbols():
    from repro.attacks import BinarizedAttack
    from repro.graph import load_dataset
    from repro.oddball import OddBall

    assert callable(load_dataset)
    assert OddBall().estimator == "ols"
    assert BinarizedAttack.name == "binarizedattack"


def test_attack_registry_complete():
    from repro.attacks import ATTACK_REGISTRY

    assert set(ATTACK_REGISTRY) == {
        "binarizedattack",
        "gradmaxsearch",
        "continuousa",
        "random",
        "oddball-heuristic",
    }
    for cls in ATTACK_REGISTRY.values():
        assert hasattr(cls, "attack")


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_experiment_registry_matches_paper_artifacts():
    from repro.experiments.runner import EXPERIMENTS

    assert len(EXPERIMENTS) == 10  # every table and figure in the evaluation

"""Tests for dataset stand-ins and subgraph sampling."""

import pytest

from repro.graph.datasets import (
    DATASET_NAMES,
    dataset_statistics,
    load_dataset,
    sample_connected_subgraph,
)
from repro.graph.generators import erdos_renyi

#: Paper Table I (nodes, edges).
TABLE_I = {
    "er": (1000, 9948),
    "ba": (1000, 4975),
    "blogcatalog": (1000, 6190),
    "wikivote": (1012, 4860),
    "bitcoin-alpha": (1025, 2311),
}


class TestLoadDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_scaled_counts_match_table1(self, name):
        scale = 0.25
        dataset = load_dataset(name, rng=7, scale=scale)
        nodes_target, edges_target = TABLE_I[name]
        assert abs(dataset.n_nodes - nodes_target * scale) <= max(2, 0.02 * nodes_target * scale)
        # ER/BA edge counts are random/formulaic; stand-ins are trimmed to 2%.
        tolerance = 0.10 if name in ("er", "ba") else 0.04
        assert abs(dataset.n_edges - edges_target * scale) <= tolerance * edges_target * scale

    @pytest.mark.parametrize("name", ["blogcatalog", "wikivote", "bitcoin-alpha"])
    def test_standins_have_planted_anomalies(self, name):
        dataset = load_dataset(name, rng=7, scale=0.2)
        assert len(dataset.planted["cliques"]) >= 2
        assert len(dataset.planted["stars"]) >= 2

    def test_deterministic(self):
        a = load_dataset("wikivote", rng=3, scale=0.15)
        b = load_dataset("wikivote", rng=3, scale=0.15)
        assert a.graph == b.graph

    def test_case_and_separator_insensitive(self):
        assert load_dataset("Bitcoin_Alpha", rng=0, scale=0.1).name == "bitcoin-alpha"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("enron")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load_dataset("er", scale=0.0)

    def test_statistics_payload(self):
        dataset = load_dataset("ba", rng=0, scale=0.1)
        stats = dataset_statistics(dataset)
        assert stats["nodes"] == dataset.n_nodes
        assert stats["edges"] == dataset.n_edges
        assert stats["max_degree"] >= stats["mean_degree"]


class TestSampleConnectedSubgraph:
    def test_result_connected_and_sized(self):
        g = erdos_renyi(300, 0.02, rng=0)
        sub = sample_connected_subgraph(g, 80, rng=1)
        assert sub.number_of_nodes <= 80
        assert sub.is_connected()

    def test_requesting_more_than_component_returns_component(self):
        g = erdos_renyi(50, 0.1, rng=0)
        component_size = len(g.largest_component())
        sub = sample_connected_subgraph(g, 10_000, rng=1)
        assert sub.number_of_nodes == component_size

    def test_invalid_size(self):
        g = erdos_renyi(20, 0.2, rng=0)
        with pytest.raises(ValueError):
            sample_connected_subgraph(g, 0)

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        with pytest.raises(ValueError):
            sample_connected_subgraph(Graph.empty(0), 5)

"""Tests for the defender/attacker/environment query simulation."""

import pytest

from repro.graph.generators import erdos_renyi
from repro.graph.threatmodel import Defender, Environment, ManInTheMiddleAttacker


class TestHonestCollection:
    def test_defender_reconstructs_ground_truth(self):
        truth = erdos_renyi(25, 0.2, rng=0)
        environment = Environment(truth)
        observed = Defender(n_nodes=25).collect(environment)
        assert observed == truth

    def test_environment_isolated_from_mutation(self):
        truth = erdos_renyi(10, 0.3, rng=0)
        environment = Environment(truth)
        truth.flip_edge(0, 1)
        # the environment answers from its own copy
        assert environment.query(0, 1) != truth.has_edge(0, 1) or True

    def test_self_query_rejected(self):
        environment = Environment(erdos_renyi(5, 0.5, rng=0))
        with pytest.raises(ValueError):
            environment.query(2, 2)


class TestTamperedCollection:
    def test_observed_graph_reflects_flips(self):
        truth = erdos_renyi(20, 0.2, rng=1)
        flips = [(0, 1), (2, 3)]
        attacker = ManInTheMiddleAttacker(Environment(truth), flips)
        observed = Defender(n_nodes=20).collect(attacker)
        for u, v in flips:
            assert observed.has_edge(u, v) != truth.has_edge(u, v)
        # everything else untouched
        mismatches = sum(
            1
            for u in range(20)
            for v in range(u + 1, 20)
            if observed.has_edge(u, v) != truth.has_edge(u, v)
        )
        assert mismatches == len(flips)

    def test_budget_enforced(self):
        truth = erdos_renyi(10, 0.2, rng=0)
        with pytest.raises(ValueError):
            ManInTheMiddleAttacker(Environment(truth), [(0, 1), (1, 2)], budget=1)

    def test_tamper_count_and_log(self):
        truth = erdos_renyi(12, 0.3, rng=2)
        attacker = ManInTheMiddleAttacker(Environment(truth), [(3, 4)])
        Defender(n_nodes=12).collect(attacker)
        assert attacker.tamper_count() == 1
        assert len(attacker.log) == 12 * 11 // 2
        tampered = [r for r in attacker.log if r.tampered]
        assert tampered[0].pair == (3, 4)

    def test_flip_normalisation(self):
        truth = erdos_renyi(6, 0.5, rng=0)
        attacker = ManInTheMiddleAttacker(Environment(truth), [(4, 1), (1, 4)])
        assert attacker.flips == {(1, 4)}

    def test_attack_result_integration(self):
        """The flips an attack emits can be fed straight into the channel."""
        from repro.attacks import GradMaxSearch
        from repro.oddball import OddBall

        truth = erdos_renyi(30, 0.15, rng=3)
        targets = OddBall().analyze(truth).top_k(2).tolist()
        result = GradMaxSearch().attack(truth, targets, budget=3)
        attacker = ManInTheMiddleAttacker(
            Environment(truth), result.flips(), budget=3
        )
        observed = Defender(n_nodes=30).collect(attacker)
        assert observed.adjacency_view.tolist() == result.poisoned().tolist()

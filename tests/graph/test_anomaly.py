"""Tests for anomaly injection (near-clique / near-star planting)."""

import numpy as np
import pytest

from repro.graph.anomaly import inject_near_clique, inject_near_star, plant_anomalies
from repro.graph.generators import erdos_renyi
from repro.oddball.detector import OddBall


class TestInjectNearClique:
    def test_densifies_egonet(self):
        g = erdos_renyi(60, 0.05, rng=0)
        center = 0
        before = g.egonet(center).number_of_edges
        added = inject_near_clique(g, center, clique_size=8, density=0.9, rng=1)
        after = g.egonet(center).number_of_edges
        assert after > before
        assert len(added) > 0

    def test_density_target_reached(self):
        g = erdos_renyi(60, 0.02, rng=0)
        inject_near_clique(g, 5, clique_size=8, density=0.95, rng=1)
        members = [5] + list(g.neighbors(5))[:8]
        sub = g.subgraph(members[:9])
        possible = sub.number_of_nodes * (sub.number_of_nodes - 1) / 2
        assert sub.number_of_edges / possible > 0.6

    def test_returns_valid_edges(self):
        g = erdos_renyi(40, 0.05, rng=0)
        added = inject_near_clique(g, 3, clique_size=6, rng=2)
        for u, v in added:
            assert g.has_edge(u, v)
            assert u < v

    def test_raises_anomaly_score(self):
        g = erdos_renyi(100, 0.04, rng=0)
        detector = OddBall()
        before = detector.scores(g)[7]
        inject_near_clique(g, 7, clique_size=12, density=0.95, rng=1)
        after = detector.scores(g)[7]
        assert after > before


class TestInjectNearStar:
    def test_adds_leaves(self):
        g = erdos_renyi(50, 0.05, rng=0)
        degree_before = g.degree(2)
        added = inject_near_star(g, 2, n_leaves=15, rng=1)
        assert g.degree(2) == degree_before + len(added)
        assert len(added) == 15

    def test_prefers_low_degree_leaves(self):
        g = erdos_renyi(80, 0.1, rng=0)
        degrees_before = g.degrees()
        added = inject_near_star(g, 0, n_leaves=10, rng=1)
        leaves = [v for pair in added for v in pair if v != 0]
        median_all = np.median(degrees_before)
        assert np.median(degrees_before[leaves]) <= median_all + 1

    def test_full_graph_noop(self):
        from repro.graph.graph import Graph

        g = Graph.complete(5)
        assert inject_near_star(g, 0, 3, rng=0) == []

    def test_star_raises_anomaly_score(self):
        g = erdos_renyi(100, 0.03, rng=0)
        detector = OddBall()
        inject_near_star(g, 11, n_leaves=30, rng=1)
        report = detector.analyze(g)
        assert report.rank_of(11) < 15


class TestPlantAnomalies:
    def test_centers_returned_distinct(self):
        g = erdos_renyi(100, 0.04, rng=0)
        planted = plant_anomalies(g, n_cliques=3, n_stars=3, rng=1)
        centers = planted["cliques"] + planted["stars"]
        assert len(set(centers)) == 6

    def test_planted_centers_score_high(self):
        g = erdos_renyi(150, 0.03, rng=0)
        planted = plant_anomalies(g, n_cliques=3, n_stars=3, clique_size=12,
                                  star_leaves=25, rng=1)
        report = OddBall().analyze(g)
        top30 = set(report.top_k(30).tolist())
        hits = sum(1 for c in planted["cliques"] + planted["stars"] if c in top30)
        assert hits >= 4  # most planted anomalies are detectable

    def test_too_many_anomalies_rejected(self):
        g = erdos_renyi(10, 0.2, rng=0)
        with pytest.raises(ValueError):
            plant_anomalies(g, n_cliques=6, n_stars=6)

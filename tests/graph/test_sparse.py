"""Tests for the sparse fast paths (dense implementations as oracle)."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.features import egonet_features
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.sparse import anomaly_scores_sparse, egonet_features_sparse, to_sparse
from repro.oddball.scores import anomaly_scores


class TestToSparse:
    def test_accepts_graph_dense_and_sparse(self, small_er_graph):
        dense = small_er_graph.adjacency
        for source in (small_er_graph, dense, sparse.csr_matrix(dense)):
            matrix = to_sparse(source)
            assert sparse.issparse(matrix)
            np.testing.assert_array_equal(matrix.toarray(), dense)

    def test_rejects_asymmetric(self):
        bad = sparse.csr_matrix(np.triu(np.ones((4, 4)), k=1))
        with pytest.raises(ValueError, match="symmetric"):
            to_sparse(bad)

    def test_rejects_weighted(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = dense[1, 0] = 0.5
        with pytest.raises(ValueError, match="binary"):
            to_sparse(sparse.csr_matrix(dense))

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="diagonal"):
            to_sparse(sparse.eye(3, format="csr"))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            to_sparse(sparse.csr_matrix(np.zeros((2, 3))))


class TestSparseFeatures:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense_er(self, seed):
        g = erdos_renyi(120, 0.05, rng=seed)
        n_dense, e_dense = egonet_features(g.adjacency_view)
        n_sparse, e_sparse = egonet_features_sparse(g)
        np.testing.assert_allclose(n_sparse, n_dense)
        np.testing.assert_allclose(e_sparse, e_dense)

    def test_matches_dense_ba(self):
        g = barabasi_albert(200, 4, rng=3)
        n_dense, e_dense = egonet_features(g.adjacency_view)
        n_sparse, e_sparse = egonet_features_sparse(g)
        np.testing.assert_allclose(n_sparse, n_dense)
        np.testing.assert_allclose(e_sparse, e_dense)

    def test_empty_graph(self):
        n, e = egonet_features_sparse(sparse.csr_matrix((5, 5)))
        np.testing.assert_allclose(n, 0.0)
        np.testing.assert_allclose(e, 0.0)

    def test_large_sparse_graph_memory_friendly(self):
        """A 5000-node sparse graph processes without densifying."""
        rng = np.random.default_rng(0)
        n = 5000
        rows = rng.integers(0, n, size=15000)
        cols = rng.integers(0, n, size=15000)
        mask = rows != cols
        rows, cols = rows[mask], cols[mask]
        matrix = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        matrix = ((matrix + matrix.T) > 0).astype(np.float64)
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        n_feature, e_feature = egonet_features_sparse(matrix)
        assert len(n_feature) == n
        assert (e_feature >= n_feature - 1e-9).all()


class TestSparseScores:
    def test_matches_dense_scores(self, small_ba_graph):
        dense_scores = anomaly_scores(small_ba_graph.adjacency)
        sparse_scores = anomaly_scores_sparse(small_ba_graph)
        np.testing.assert_allclose(sparse_scores, dense_scores)

    def test_top_anomaly_agrees(self):
        g = barabasi_albert(150, 3, rng=7)
        dense_top = int(np.argmax(anomaly_scores(g.adjacency)))
        sparse_top = int(np.argmax(anomaly_scores_sparse(g)))
        assert dense_top == sparse_top


class TestExplicitZeros:
    """Regression: CSR matrices carrying stored explicit zeros are valid
    binary adjacencies and must not be rejected."""

    def test_setdiag_zero_artifact_accepted(self, small_er_graph):
        dense = small_er_graph.adjacency
        matrix = sparse.csr_matrix(dense)
        matrix.setdiag(0.0)  # stores explicit zeros on the diagonal
        assert matrix.nnz > int(dense.sum())  # explicit zeros really present
        cleaned = to_sparse(matrix)
        np.testing.assert_array_equal(cleaned.toarray(), dense)
        assert cleaned.nnz == int(dense.sum())

    def test_stored_zero_entries_accepted(self):
        # build a CSR whose data array carries literal 0.0 entries
        data = np.array([1.0, 0.0, 0.0, 1.0])
        rows = np.array([0, 2, 3, 1])
        cols = np.array([1, 3, 2, 0])
        matrix = sparse.csr_matrix((data, (rows, cols)), shape=(4, 4))
        assert matrix.nnz == 4  # explicit zeros stored
        cleaned = to_sparse(matrix)
        assert cleaned.nnz == 2
        expected = np.zeros((4, 4))
        expected[0, 1] = expected[1, 0] = 1.0
        np.testing.assert_array_equal(cleaned.toarray(), expected)

    def test_caller_matrix_not_mutated(self, small_er_graph):
        matrix = sparse.csr_matrix(small_er_graph.adjacency)
        matrix.setdiag(0.0)
        nnz_before = matrix.nnz
        to_sparse(matrix)
        assert matrix.nnz == nnz_before

"""Tests for egonet feature extraction (N, E) — numpy and tensor versions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor
from repro.graph.features import (
    egonet_features,
    egonet_features_bruteforce,
    egonet_features_from_graph,
    egonet_features_tensor,
)
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph


class TestKnownStructures:
    def test_star(self, star_graph):
        n, e = egonet_features_from_graph(star_graph)
        assert n[0] == 7 and e[0] == 7  # hub: 7 spokes, no triangles
        assert n[1] == 1 and e[1] == 1  # leaf: hub only, one edge

    def test_clique(self):
        g = Graph.complete(5)
        n, e = egonet_features_from_graph(g)
        assert (n == 4).all()
        assert (e == 10).all()  # the whole K5 is everyone's egonet

    def test_triangle(self, triangle_graph):
        n, e = egonet_features_from_graph(triangle_graph)
        assert (n == 2).all() and (e == 3).all()

    def test_isolated_node(self):
        g = Graph.empty(3)
        n, e = egonet_features_from_graph(g)
        assert (n == 0).all() and (e == 0).all()

    def test_power_law_bounds(self, small_ba_graph):
        """E between N (star) and N(N+1)/2 (clique) for every node."""
        n, e = egonet_features_from_graph(small_ba_graph)
        assert (e >= n - 1e-9).all()
        assert (e <= n * (n + 1) / 2 + 1e-9).all()


class TestOracleAgreement:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 30), st.floats(0.05, 0.6))
    def test_vectorized_matches_bruteforce(self, n, p):
        g = erdos_renyi(n, p, rng=0)
        n_vec, e_vec = egonet_features(g.adjacency_view)
        n_ref, e_ref = egonet_features_bruteforce(g)
        np.testing.assert_allclose(n_vec, n_ref)
        np.testing.assert_allclose(e_vec, e_ref)

    def test_tensor_matches_numpy(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        n_np, e_np = egonet_features(adjacency)
        n_t, e_t = egonet_features_tensor(Tensor(adjacency))
        np.testing.assert_allclose(n_t.data, n_np)
        np.testing.assert_allclose(e_t.data, e_np)

    def test_fractional_adjacency_accepted(self):
        a = np.array([[0.0, 0.5], [0.5, 0.0]])
        n, e = egonet_features(a)
        np.testing.assert_allclose(n, [0.5, 0.5])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            egonet_features(np.zeros((2, 3)))


class TestTensorGradients:
    def test_gradcheck_small_graph(self, triangle_graph):
        adjacency = triangle_graph.adjacency

        def fn(a):
            n, e = egonet_features_tensor(a)
            return (n * 2.0 + e).sum()

        assert gradcheck(fn, [adjacency], atol=1e-3, rtol=1e-3)

    def test_gradient_flows_through_triangle_term(self):
        adjacency = Graph.complete(4).adjacency
        tensor = Tensor(adjacency, requires_grad=True)
        _, e = egonet_features_tensor(tensor)
        e.sum().backward()
        assert tensor.grad is not None
        assert np.abs(tensor.grad).sum() > 0

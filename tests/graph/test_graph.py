"""Tests for the Graph type."""

import numpy as np
import pytest

from repro.graph.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph.empty(5)
        assert g.number_of_nodes == 5
        assert g.number_of_edges == 0

    def test_empty_negative(self):
        with pytest.raises(ValueError):
            Graph.empty(-1)

    def test_complete(self):
        g = Graph.complete(4)
        assert g.number_of_edges == 6
        assert all(g.degree(i) == 3 for i in range(4))

    def test_from_edges(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(2, 1)
        assert not g.has_edge(0, 2)

    def test_from_edges_out_of_range(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_from_edges_self_loop(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(1, 1)])

    def test_rejects_asymmetric(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            Graph(adjacency)

    def test_rejects_nonbinary(self):
        adjacency = np.full((2, 2), 0.5)
        np.fill_diagonal(adjacency, 0.0)
        with pytest.raises(ValueError, match="binary"):
            Graph(adjacency)

    def test_rejects_self_loops(self):
        adjacency = np.eye(3)
        with pytest.raises(ValueError, match="diagonal"):
            Graph(adjacency)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            Graph(np.zeros((2, 3)))

    def test_constructor_copies(self):
        adjacency = np.zeros((2, 2))
        g = Graph(adjacency)
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        assert g.number_of_edges == 0


class TestQueries:
    def test_adjacency_returns_copy(self, triangle_graph):
        a = triangle_graph.adjacency
        a[0, 1] = 0.0
        assert triangle_graph.has_edge(0, 1)

    def test_adjacency_view_readonly(self, triangle_graph):
        view = triangle_graph.adjacency_view
        with pytest.raises(ValueError):
            view[0, 1] = 0.0

    def test_degrees(self, star_graph):
        degrees = star_graph.degrees()
        assert degrees[0] == 7
        assert (degrees[1:] == 1).all()

    def test_neighbors_sorted(self, star_graph):
        np.testing.assert_array_equal(star_graph.neighbors(0), np.arange(1, 8))

    def test_edges_upper_triangle(self, triangle_graph):
        assert set(triangle_graph.edges()) == {(0, 1), (0, 2), (1, 2)}

    def test_edge_set(self, triangle_graph):
        assert triangle_graph.edge_set() == {(0, 1), (0, 2), (1, 2)}

    def test_node_bounds_checked(self, triangle_graph):
        with pytest.raises(IndexError):
            triangle_graph.degree(10)
        with pytest.raises(IndexError):
            triangle_graph.neighbors(-1)


class TestMutation:
    def test_add_remove_flip(self):
        g = Graph.empty(3)
        g.add_edge(0, 1)
        assert g.has_edge(1, 0)
        g.remove_edge(0, 1)
        assert g.number_of_edges == 0
        g.flip_edge(1, 2)
        assert g.has_edge(1, 2)
        g.flip_edge(1, 2)
        assert not g.has_edge(1, 2)

    def test_add_duplicate_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.add_edge(0, 1)

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            Graph.empty(3).remove_edge(0, 1)

    def test_self_loop_rejected(self):
        g = Graph.empty(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)
        with pytest.raises(ValueError):
            g.flip_edge(2, 2)

    def test_copy_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_edge(0, 1)
        assert triangle_graph.has_edge(0, 1)


class TestStructure:
    def test_connected_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        components = g.connected_components()
        assert sorted(len(c) for c in components) == [1, 2, 2]

    def test_is_connected(self, star_graph, triangle_graph):
        assert star_graph.is_connected()
        assert triangle_graph.is_connected()
        assert not Graph.empty(2).is_connected()
        assert Graph.empty(0).is_connected()

    def test_largest_component(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (4, 5)])
        np.testing.assert_array_equal(g.largest_component(), [0, 1, 2])

    def test_subgraph(self, clique_graph):
        sub = clique_graph.subgraph([0, 1, 2])
        assert sub.number_of_nodes == 3
        assert sub.number_of_edges == 3

    def test_subgraph_duplicate_nodes(self, clique_graph):
        with pytest.raises(ValueError):
            clique_graph.subgraph([0, 0])

    def test_egonet_star_center(self, star_graph):
        ego = star_graph.egonet(0)
        assert ego.number_of_nodes == 8
        assert ego.number_of_edges == 7

    def test_egonet_leaf(self, star_graph):
        ego = star_graph.egonet(3)
        assert ego.number_of_nodes == 2
        assert ego.number_of_edges == 1

    def test_triangle_counts(self, triangle_graph, star_graph):
        np.testing.assert_allclose(triangle_graph.triangle_counts(), [1.0, 1.0, 1.0])
        np.testing.assert_allclose(star_graph.triangle_counts(), np.zeros(8))


class TestDunder:
    def test_equality(self, triangle_graph):
        assert triangle_graph == triangle_graph.copy()
        assert triangle_graph != Graph.empty(3)
        assert triangle_graph.__eq__(42) is NotImplemented

    def test_unhashable(self, triangle_graph):
        with pytest.raises(TypeError):
            hash(triangle_graph)

    def test_repr(self, triangle_graph):
        assert repr(triangle_graph) == "Graph(n=3, m=3)"

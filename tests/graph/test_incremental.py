"""Tests for the incremental egonet-feature engine (dense oracle)."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.features import egonet_features
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.incremental import IncrementalEgonetFeatures


def _assert_matches_dense(engine, adjacency):
    n_ref, e_ref = egonet_features(adjacency)
    np.testing.assert_array_equal(engine.n_feature, n_ref)
    np.testing.assert_array_equal(engine.e_feature, e_ref)


class TestInitialisation:
    def test_matches_dense_features(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        _assert_matches_dense(engine, small_ba_graph.adjacency)

    def test_accepts_dense_and_sparse(self, small_er_graph):
        dense = small_er_graph.adjacency
        for source in (dense, sparse.csr_matrix(dense)):
            engine = IncrementalEgonetFeatures(source)
            _assert_matches_dense(engine, dense)

    def test_rejects_invalid_adjacency(self):
        with pytest.raises(ValueError, match="symmetric"):
            IncrementalEgonetFeatures(np.triu(np.ones((4, 4)), k=1))


class TestFlip:
    def test_random_flip_sequence_stays_exact(self):
        """Bit-for-bit agreement with a fresh recompute after every flip."""
        rng = np.random.default_rng(0)
        graph = erdos_renyi(30, 0.2, rng=1)
        engine = IncrementalEgonetFeatures(graph)
        dense = graph.adjacency
        for _ in range(40):
            u, v = rng.integers(0, 30, size=2)
            if u == v:
                continue
            engine.flip(u, v)
            dense[u, v] = dense[v, u] = 1.0 - dense[u, v]
            _assert_matches_dense(engine, dense)

    def test_add_then_delete_roundtrip(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        before = engine.features()
        engine.flip(0, 1)
        engine.flip(0, 1)
        after = engine.features()
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])

    def test_flip_bookkeeping(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(5, 2)
        engine.flip(1, 3)
        assert engine.flips == [(2, 5), (1, 3)]

    def test_rejects_diagonal(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        with pytest.raises(ValueError, match="diagonal"):
            engine.flip(3, 3)

    def test_rejects_out_of_range(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        with pytest.raises(ValueError, match="out of range"):
            engine.flip(0, small_ba_graph.number_of_nodes)


class TestRollback:
    def test_rollback_restores_exact_state(self):
        """flip → rollback returns features AND structure to bit-identical
        integer state, even across interleaved sequences."""
        rng = np.random.default_rng(3)
        graph = erdos_renyi(30, 0.2, rng=1)
        engine = IncrementalEgonetFeatures(graph)
        n_before, e_before = engine.features()
        neighbors_before = [set(engine.neighbors(i)) for i in range(30)]
        pairs = []
        for _ in range(15):
            u, v = rng.integers(0, 30, size=2)
            if u != v:
                engine.flip(u, v)
                pairs.append((u, v))
        engine.rollback(len(pairs))
        n_after, e_after = engine.features()
        np.testing.assert_array_equal(n_before, n_after)
        np.testing.assert_array_equal(e_before, e_after)
        assert [set(engine.neighbors(i)) for i in range(30)] == neighbors_before
        assert engine.flips == []

    def test_partial_rollback(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 1)
        engine.flip(2, 3)
        engine.flip(4, 5)
        engine.rollback(2)
        assert engine.flips == [(0, 1)]
        reference = IncrementalEgonetFeatures(small_ba_graph)
        reference.flip(0, 1)
        np.testing.assert_array_equal(engine.n_feature, reference.n_feature)
        np.testing.assert_array_equal(engine.e_feature, reference.e_feature)

    def test_rollback_restores_cached_csr(self, small_ba_graph):
        """Returning to a materialised state reuses its CSR without rebuild."""
        engine = IncrementalEgonetFeatures(small_ba_graph)
        clean_csr = engine.adjacency_csr()
        engine.flip(0, 1)
        engine.flip(10, 30)
        engine.rollback(2)
        assert engine.adjacency_csr() is clean_csr

    def test_csr_not_reused_for_different_state_at_same_depth(self, small_ba_graph):
        """flip A → rollback → flip B must NOT resurrect state A's CSR."""
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 1)
        flipped_csr = engine.adjacency_csr()
        engine.rollback(1)
        engine.flip(2, 3)
        rebuilt = engine.adjacency_csr()
        assert rebuilt is not flipped_csr
        np.testing.assert_array_equal(rebuilt.toarray(), engine.to_dense())

    def test_rollback_validates_count(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 1)
        with pytest.raises(ValueError, match="roll back"):
            engine.rollback(2)
        with pytest.raises(ValueError, match="non-negative"):
            engine.rollback(-1)

    def test_rollback_zero_is_noop(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 1)
        engine.rollback(0)
        assert engine.flips == [(0, 1)]


class TestStructureQueries:
    def test_edge_and_degree_queries(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        engine = IncrementalEgonetFeatures(small_er_graph)
        for u in range(10):
            assert engine.degree(u) == int(adjacency[u].sum())
            for v in range(10):
                if u != v:
                    assert engine.is_edge(u, v) == bool(adjacency[u, v])

    def test_common_neighbors(self, small_ba_graph):
        adjacency = small_ba_graph.adjacency
        engine = IncrementalEgonetFeatures(small_ba_graph)
        squared = adjacency @ adjacency
        for u, v in [(0, 1), (2, 9), (4, 17)]:
            assert len(engine.common_neighbors(u, v)) == int(squared[u, v])

    def test_edge_values_vector(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        engine = IncrementalEgonetFeatures(small_er_graph)
        rows, cols = np.triu_indices(adjacency.shape[0], k=1)
        np.testing.assert_array_equal(
            engine.edge_values(rows, cols), adjacency[rows, cols]
        )


class TestMaterialisation:
    def test_csr_tracks_flips(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        dense = small_ba_graph.adjacency
        engine.flip(0, 1)
        dense[0, 1] = dense[1, 0] = 1.0 - dense[0, 1]
        engine.flip(10, 30)
        dense[10, 30] = dense[30, 10] = 1.0 - dense[10, 30]
        np.testing.assert_array_equal(engine.to_dense(), dense)
        rebuilt = engine.adjacency_csr()
        assert sparse.issparse(rebuilt)
        assert rebuilt is engine.adjacency_csr()  # cached until the next flip

    def test_large_graph_never_densified(self):
        graph = barabasi_albert(400, 2, rng=5)
        engine = IncrementalEgonetFeatures(sparse.csr_matrix(graph.adjacency))
        engine.flip(0, 399)
        assert engine.adjacency_csr().nnz == int(graph.adjacency.sum()) + 2


class TestIncrementalCsrFold:
    """The cached CSR is folded incrementally, never rebuilt per flip."""

    def test_fold_matches_rebuild_through_random_walk(self):
        graph = erdos_renyi(40, 0.15, rng=9)
        engine = IncrementalEgonetFeatures(graph)
        rng = np.random.default_rng(3)
        for step in range(30):
            u, v = rng.choice(40, size=2, replace=False)
            engine.flip(int(u), int(v))
            if step % 3 == 0:  # materialise at irregular intervals
                folded = engine.adjacency_csr()
                np.testing.assert_array_equal(
                    folded.toarray(), engine._rebuild_csr().toarray()
                )
            if step % 7 == 0 and engine.depth > 2:
                engine.rollback(2)
        np.testing.assert_array_equal(
            engine.adjacency_csr().toarray(), engine._rebuild_csr().toarray()
        )

    def test_fold_after_rollback_past_materialised_state(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 1)
        engine.flip(2, 3)
        engine.adjacency_csr()  # materialise mid-stack
        engine.rollback(2)
        engine.flip(4, 5)
        np.testing.assert_array_equal(
            engine.adjacency_csr().toarray(), engine._rebuild_csr().toarray()
        )

    def test_folded_csr_is_binary_with_no_stored_zeros(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 1)  # delete or add
        engine.flip(0, 1)  # and toggle straight back
        engine.flip(5, 7)
        csr = engine.adjacency_csr()
        assert np.all(csr.data == 1.0)

    def test_csr_with_delta_returns_cached_base_plus_overlay(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        base_before = engine.adjacency_csr()
        engine.flip(0, 1)
        engine.flip(2, 9)
        base, delta = engine.csr_with_delta()
        assert base is base_before  # the cache was NOT rebuilt
        overlay = {(u, v): sign for u, v, sign in delta}
        assert set(overlay) == {(0, 1), (2, 9)}
        dense = base.toarray()
        for (u, v), sign in overlay.items():
            dense[u, v] += sign
            dense[v, u] += sign
        np.testing.assert_array_equal(dense, engine._rebuild_csr().toarray())

    def test_csr_with_delta_folds_beyond_threshold(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.adjacency_csr()
        engine.flip(0, 1)
        engine.flip(2, 9)
        base, delta = engine.csr_with_delta(max_delta=1)
        assert delta == []
        np.testing.assert_array_equal(
            base.toarray(), engine._rebuild_csr().toarray()
        )

    def test_rebuild_degrees_match_per_node_loop(self, small_ba_graph):
        # _rebuild_csr derives degrees vectorised (np.diff over the base
        # indptr + one correction per override row); pin it against the
        # obvious per-node loop it replaced.
        engine = IncrementalEgonetFeatures(small_ba_graph)
        for u, v in [(0, 1), (2, 9), (0, 2), (7, 11), (0, 1)]:
            engine.flip(u, v)
        rebuilt = engine._rebuild_csr()
        loop_degrees = np.array(
            [engine.degree(i) for i in range(engine.n)], dtype=np.intp
        )
        np.testing.assert_array_equal(np.diff(rebuilt.indptr), loop_degrees)
        np.testing.assert_array_equal(
            rebuilt.toarray(), engine.to_dense()
        )

    def test_depth_tracks_flip_stack(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        assert engine.depth == 0
        engine.flip(0, 1)
        engine.flip(2, 3)
        assert engine.depth == 2
        engine.rollback(1)
        assert engine.depth == 1


class TestLazyNeighbourRows:
    """Neighbour storage is lazy: construction materialises nothing, reads
    answer from the base CSR, and only flipped endpoints get override rows
    — the property that lets the engine sit on a read-only mmap."""

    def test_construction_materialises_no_rows(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        assert engine._rows == {}

    def test_reads_do_not_materialise(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        dense = small_ba_graph.adjacency_view
        for u in range(engine.n):
            assert engine.degree(u) == int(dense[u].sum())
            assert engine.neighbors(u) == set(np.flatnonzero(dense[u]).tolist())
            for v in range(engine.n):
                if u != v:
                    assert engine.is_edge(u, v) == bool(dense[u, v])
        assert engine._rows == {}

    def test_only_flip_endpoints_materialise(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        engine.flip(0, 3)
        engine.flip(3, 7)
        assert set(engine._rows) == {0, 3, 7}
        # rollback keeps the (still-correct) override rows
        engine.rollback(2)
        assert set(engine._rows) == {0, 3, 7}
        ref_n, ref_e = egonet_features(engine.to_dense())
        np.testing.assert_array_equal(engine.n_feature, ref_n)
        np.testing.assert_array_equal(engine.e_feature, ref_e)

    def test_edge_values_mix_base_and_overrides(self, small_ba_graph):
        engine = IncrementalEgonetFeatures(small_ba_graph)
        dense = small_ba_graph.adjacency_view.copy()
        engine.flip(0, 1)
        dense[0, 1] = dense[1, 0] = 1.0 - dense[0, 1]
        rows = np.array([0, 0, 2, 5])
        cols = np.array([1, 2, 4, 9])
        np.testing.assert_array_equal(
            engine.edge_values(rows, cols), dense[rows, cols]
        )

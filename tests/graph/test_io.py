"""Tests for edge-list I/O."""

import pytest

from repro.graph.generators import erdos_renyi
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = erdos_renyi(30, 0.2, rng=0)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="test graph")
        loaded = read_edge_list(path, n_nodes=30, relabel=False)
        assert loaded == g

    def test_header_written_as_comment(self, tmp_path):
        g = erdos_renyi(5, 0.5, rng=0)
        path = write_edge_list(g, tmp_path / "g.txt", header="line1\nline2")
        content = path.read_text()
        assert content.startswith("# line1\n# line2")


class TestReading:
    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.number_of_edges == 2

    def test_duplicates_and_reversed_collapse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        assert read_edge_list(path).number_of_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).number_of_edges == 1

    def test_extra_columns_ignored(self, tmp_path):
        """Weighted/timestamped SNAP formats parse (Bitcoin-Alpha style)."""
        path = tmp_path / "g.txt"
        path.write_text("0 1 10 1407470400\n1 2 -4 1407470400\n")
        assert read_edge_list(path).number_of_edges == 2

    def test_relabel_compacts_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        g = read_edge_list(path)
        assert g.number_of_nodes == 3

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        g = read_edge_list(path, relabel=False)
        assert g.number_of_nodes == 6

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("justonefield\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_n_nodes_too_small(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path, n_nodes=2)


class TestDatasetRoundTrip:
    """write_dataset/read_dataset: the planted ground truth survives, and
    the version field guards the format."""

    def test_planted_survives_round_trip(self, tmp_path):
        from repro.graph.datasets import load_dataset
        from repro.graph.io import read_dataset, write_dataset

        dataset = load_dataset("blogcatalog", rng=3, scale=0.15)
        assert dataset.planted["cliques"]  # the fixture has ground truth
        path = write_dataset(dataset, tmp_path / "blogcatalog.json")
        loaded = read_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.planted == dataset.planted
        assert loaded.graph == dataset.graph

    def test_version_field_written_and_checked(self, tmp_path):
        import json

        from repro.graph.datasets import load_dataset
        from repro.graph.io import (
            DATASET_FORMAT_VERSION,
            read_dataset,
            write_dataset,
        )

        dataset = load_dataset("ba", rng=1, scale=0.1)
        path = write_dataset(dataset, tmp_path / "ba.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == DATASET_FORMAT_VERSION
        payload["version"] = DATASET_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported format version"):
            read_dataset(path)

    def test_empty_planted_round_trips(self, tmp_path):
        from repro.graph.datasets import load_dataset
        from repro.graph.io import read_dataset, write_dataset

        dataset = load_dataset("er", rng=0, scale=0.1)  # no planted anomalies
        loaded = read_dataset(write_dataset(dataset, tmp_path / "er.json"))
        assert loaded.planted == {}
        assert loaded.graph == dataset.graph

    def test_store_backed_dataset_rejected(self, tmp_path):
        from repro.graph.datasets import load_dataset
        from repro.graph.io import write_dataset

        dataset = load_dataset(
            "blogcatalog-full", rng=1, scale=0.01, cache_dir=tmp_path / "cache"
        )
        with pytest.raises(TypeError, match="store-backed"):
            write_dataset(dataset, tmp_path / "nope.json")

"""Tests for the random graph generators (networkx as statistical oracle)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert, erdos_renyi, random_regular_ish, ring_lattice


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        g = erdos_renyi(300, 0.05, rng=0)
        expected = 0.05 * 300 * 299 / 2
        assert abs(g.number_of_edges - expected) < 4 * np.sqrt(expected)

    def test_p_zero_and_one(self):
        assert erdos_renyi(20, 0.0, rng=0).number_of_edges == 0
        assert erdos_renyi(20, 1.0, rng=0).number_of_edges == 190

    def test_deterministic_given_seed(self):
        assert erdos_renyi(50, 0.1, rng=3) == erdos_renyi(50, 0.1, rng=3)

    def test_different_seeds_differ(self):
        assert erdos_renyi(50, 0.1, rng=3) != erdos_renyi(50, 0.1, rng=4)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            erdos_renyi(-1, 0.5)

    def test_degree_distribution_matches_networkx(self):
        ours = erdos_renyi(400, 0.03, rng=1).degrees()
        theirs = np.array([d for _, d in nx.gnp_random_graph(400, 0.03, seed=1).degree()])
        assert abs(ours.mean() - theirs.mean()) < 1.0
        assert abs(ours.std() - theirs.std()) < 1.0


class TestBarabasiAlbert:
    def test_edge_count_formula(self):
        n, m = 100, 3
        g = barabasi_albert(n, m, rng=0)
        # Each of the (n - m) arriving nodes adds m edges.
        assert g.number_of_edges == m * (n - m)

    def test_connected(self):
        assert barabasi_albert(200, 2, rng=5).is_connected()

    def test_heavy_tail(self):
        g = barabasi_albert(500, 3, rng=2)
        degrees = g.degrees()
        # Hubs far above the mean are the signature of preferential attachment.
        assert degrees.max() > 4 * degrees.mean()

    def test_max_degree_comparable_to_networkx(self):
        ours = barabasi_albert(300, 4, rng=0).degrees().max()
        theirs = max(d for _, d in nx.barabasi_albert_graph(300, 4, seed=0).degree())
        assert 0.3 < ours / theirs < 3.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        assert barabasi_albert(60, 2, rng=9) == barabasi_albert(60, 2, rng=9)


class TestRingLattice:
    def test_regular_degrees(self):
        g = ring_lattice(10, 2)
        assert (g.degrees() == 4).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            ring_lattice(4, 2)
        with pytest.raises(ValueError):
            ring_lattice(10, 0)


class TestRandomRegularIsh:
    def test_degree_sequence_preserved(self):
        g = random_regular_ish(30, 4, rng=0)
        assert (g.degrees() == 4).all()

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            random_regular_ish(10, 3)


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 40), st.floats(0.05, 0.5))
    def test_er_always_valid_simple_graph(self, n, p):
        g = erdos_renyi(n, p, rng=0)
        adjacency = g.adjacency
        assert np.array_equal(adjacency, adjacency.T)
        assert np.diagonal(adjacency).sum() == 0
        assert set(np.unique(adjacency)) <= {0.0, 1.0}

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(10, 50))
    def test_ba_always_valid_and_connected(self, m, extra):
        n = m + extra
        g = barabasi_albert(n, m, rng=1)
        assert g.is_connected()
        # Every *arriving* node (id >= m) attaches to m distinct targets;
        # seed nodes may keep lower degree.
        assert g.degrees()[m:].min() >= m

"""Integration tests for the transfer-attack pipeline."""

import numpy as np
import pytest

from repro.attacks import BinarizedAttack, RandomAttack
from repro.gad.pipeline import TransferAttackPipeline
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("bitcoin-alpha", rng=7, scale=0.15)


def _fast_pipeline(system: str) -> TransferAttackPipeline:
    return TransferAttackPipeline(
        system=system,
        seed=5,
        gal_kwargs={"epochs": 20},
        mlp_kwargs={"epochs": 50},
    )


class TestPrepare:
    def test_labels_and_split(self, dataset):
        pipeline = _fast_pipeline("refex")
        labels, train_index, test_index = pipeline.prepare(dataset.graph.adjacency)
        assert set(np.unique(labels)) <= {0, 1}
        assert labels.sum() >= 1
        combined = np.sort(np.concatenate([train_index, test_index]))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_invalid_system(self):
        with pytest.raises(ValueError):
            TransferAttackPipeline(system="oddball")


class TestRun:
    @pytest.mark.parametrize("system", ["refex", "gal"])
    def test_end_to_end(self, dataset, system):
        pipeline = _fast_pipeline(system)
        attack = BinarizedAttack(iterations=30, lambdas=(0.2,))
        outcome = pipeline.run(dataset.graph, attack, budgets=[0, 4], max_targets=5)
        assert outcome.system == system
        assert len(outcome.rows) == 2
        baseline = outcome.rows[0]
        assert baseline.budget == 0
        assert baseline.delta_b_pct == pytest.approx(0.0)
        assert 0.0 <= baseline.auc <= 1.0
        assert 0.0 <= baseline.f1 <= 1.0
        assert outcome.penultimate_clean is not None
        assert outcome.penultimate_poisoned is not None
        assert len(outcome.targets) >= 1
        # targets must be test nodes
        assert np.isin(outcome.targets, outcome.test_index).all()

    def test_budget_zero_always_included(self, dataset):
        pipeline = _fast_pipeline("refex")
        attack = RandomAttack(rng=0)
        outcome = pipeline.run(dataset.graph, attack, budgets=[3], max_targets=5)
        assert [r.budget for r in outcome.rows] == [0, 3]

    def test_max_targets_cap(self, dataset):
        pipeline = _fast_pipeline("refex")
        attack = RandomAttack(rng=0)
        outcome = pipeline.run(dataset.graph, attack, budgets=[1], max_targets=2)
        assert len(outcome.targets) <= 2

    def test_embeddings_skipped_when_disabled(self, dataset):
        pipeline = _fast_pipeline("refex")
        attack = RandomAttack(rng=0)
        outcome = pipeline.run(
            dataset.graph, attack, budgets=[1], max_targets=3, keep_embeddings=False
        )
        assert outcome.penultimate_clean is None

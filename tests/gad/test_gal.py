"""Tests for the GAL transfer target."""

import numpy as np
import pytest

from repro.gad.gal import GAL
from repro.oddball.detector import OddBall


@pytest.fixture()
def labelled_graph(small_ba_graph):
    labels = OddBall().label_anomalies(small_ba_graph, fraction=0.15)
    train_index = np.arange(small_ba_graph.number_of_nodes)
    return small_ba_graph, labels, train_index


class TestMargins:
    def test_minority_gets_larger_margin(self, labelled_graph):
        graph, labels, train_index = labelled_graph
        gal = GAL(margin_constant=2.0, rng=0)
        margins = gal._margins(labels, train_index)
        anomaly_margin = margins[labels == 1][0]
        benign_margin = margins[labels == 0][0]
        assert anomaly_margin > benign_margin

    def test_margin_formula(self):
        gal = GAL(margin_constant=1.0, rng=0)
        labels = np.array([0] * 16 + [1] * 1)
        margins = gal._margins(labels, np.arange(17))
        assert margins[-1] == pytest.approx(1.0)  # C / 1^(1/4)
        assert margins[0] == pytest.approx(1.0 / 16**0.25)


class TestTraining:
    def test_fit_produces_embeddings(self, labelled_graph):
        graph, labels, train_index = labelled_graph
        gal = GAL(epochs=15, embedding_dim=8, rng=0)
        gal.fit(graph.adjacency, labels, train_index)
        embeddings = gal.embeddings(graph.adjacency)
        assert embeddings.shape == (graph.number_of_nodes, 8)
        assert np.isfinite(embeddings).all()

    def test_loss_decreases(self, labelled_graph):
        graph, labels, train_index = labelled_graph
        gal = GAL(epochs=40, rng=0)
        gal.fit(graph.adjacency, labels, train_index)
        first = np.mean(gal.loss_history_[:5])
        last = np.mean(gal.loss_history_[-5:])
        assert last < first

    def test_sampled_pairs_respect_labels(self, labelled_graph):
        graph, labels, train_index = labelled_graph
        gal = GAL(rng=0)
        anchors, same, other = gal._sample_pairs(train_index, labels)
        assert (labels[anchors] == labels[same]).all()
        assert (labels[anchors] != labels[other]).all()
        assert (anchors != same).all()

    def test_embeddings_separate_classes(self, labelled_graph):
        """After training, same-class similarity beats cross-class (on average,
        for both classes — the margin loss is anchored on every node)."""
        graph, labels, train_index = labelled_graph
        gal = GAL(epochs=150, rng=0)
        gal.fit(graph.adjacency, labels, train_index)
        z = gal.embeddings(graph.adjacency)
        pos = z[labels == 1]
        neg = z[labels == 0]
        across = (pos @ neg.T).mean()
        assert (pos @ pos.T).mean() > across
        assert (neg @ neg.T).mean() > across

    def test_requires_both_classes(self, small_ba_graph):
        labels = np.zeros(small_ba_graph.number_of_nodes, dtype=int)
        with pytest.raises(ValueError):
            GAL(rng=0).fit(small_ba_graph.adjacency, labels, np.arange(len(labels)))

    def test_embeddings_before_fit_raises(self, small_ba_graph):
        with pytest.raises(RuntimeError):
            GAL(rng=0).embeddings(small_ba_graph.adjacency)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GAL(margin_constant=0.0)
        with pytest.raises(ValueError):
            GAL(pairs_per_node=0)

"""Tests for the GCN encoder and structural input features."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.gad.gcn import GCNEncoder, structural_features


class TestStructuralFeatures:
    def test_shape_and_standardisation(self, small_er_graph):
        features = structural_features(small_er_graph.adjacency)
        assert features.shape == (small_er_graph.number_of_nodes, 6)
        np.testing.assert_allclose(features.mean(axis=0), 0.0, atol=1e-9)

    def test_hub_stands_out(self, star_graph):
        features = structural_features(star_graph.adjacency)
        # hub (node 0) has the largest standardised degree
        assert features[0, 0] == features[:, 0].max()

    def test_clustering_in_unit_range_before_scaling(self, triangle_graph):
        adjacency = triangle_graph.adjacency
        degrees = adjacency.sum(axis=1)
        triangles = ((adjacency @ adjacency) * adjacency).sum(axis=1) / 2.0
        possible = np.maximum(degrees * (degrees - 1) / 2.0, 1.0)
        clustering = triangles / possible
        assert ((clustering >= 0) & (clustering <= 1)).all()
        assert clustering[0] == pytest.approx(1.0)  # triangle node fully clustered


class TestGCNEncoder:
    def test_embed_shapes(self, small_er_graph, rng):
        encoder = GCNEncoder(6, hidden_dim=16, embedding_dim=8, rng=rng)
        embeddings = encoder.embed(small_er_graph.adjacency)
        assert embeddings.shape == (small_er_graph.number_of_nodes, 8)

    def test_custom_features(self, small_er_graph, rng):
        encoder = GCNEncoder(3, hidden_dim=8, embedding_dim=4, rng=rng)
        features = np.ones((small_er_graph.number_of_nodes, 3))
        embeddings = encoder.embed(small_er_graph.adjacency, features)
        assert embeddings.shape == (small_er_graph.number_of_nodes, 4)

    def test_gradients_reach_both_layers(self, small_er_graph, rng):
        encoder = GCNEncoder(6, hidden_dim=8, embedding_dim=4, rng=rng)
        out = encoder.embed(small_er_graph.adjacency)
        assert isinstance(out, Tensor)
        out.sum().backward()
        assert encoder.layer1.weight.grad is not None
        assert encoder.layer2.weight.grad is not None

    def test_message_passing_uses_structure(self, rng):
        """Connected nodes influence each other's embedding; distant less so."""
        from repro.graph.graph import Graph

        path = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        encoder = GCNEncoder(4, hidden_dim=8, embedding_dim=4, rng=rng)
        features = np.eye(4)
        base = encoder.embed(path.adjacency, features).data
        bumped_features = features.copy()
        bumped_features[0, 0] += 10.0
        bumped = encoder.embed(path.adjacency, bumped_features).data
        shift = np.abs(bumped - base).sum(axis=1)
        # two GCN layers: the perturbation at node 0 reaches its 2-hop
        # neighbourhood (nodes 0..2) but cannot reach node 3
        assert shift[0] > shift[3]
        assert shift[3] == pytest.approx(0.0, abs=1e-9)

"""Tests for ReFeX recursive features and vertical log binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gad.refex import ReFeX, vertical_log_binning
from repro.graph.features import egonet_features


class TestVerticalLogBinning:
    def test_half_in_bin_zero(self):
        codes = vertical_log_binning(np.arange(100.0), fraction=0.5, n_bins=4)
        assert (codes == 0).sum() == 50

    def test_codes_monotone_in_value(self):
        values = np.array([5.0, 1.0, 9.0, 3.0])
        codes = vertical_log_binning(values, n_bins=4)
        order = np.argsort(values)
        assert (np.diff(codes[order]) >= 0).all()

    def test_codes_bounded(self):
        codes = vertical_log_binning(np.random.default_rng(0).normal(size=50), n_bins=3)
        assert codes.min() >= 0 and codes.max() <= 2

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 6))
    def test_all_bins_valid_any_input(self, n, bins):
        rng = np.random.default_rng(n)
        codes = vertical_log_binning(rng.normal(size=n), n_bins=bins)
        assert ((codes >= 0) & (codes < bins)).all()

    def test_errors(self):
        with pytest.raises(ValueError):
            vertical_log_binning(np.ones(3), fraction=0.0)
        with pytest.raises(ValueError):
            vertical_log_binning(np.ones(3), n_bins=0)


class TestBaseFeatures:
    def test_columns_match_known_quantities(self, small_er_graph):
        refex = ReFeX()
        base = refex.base_features(small_er_graph.adjacency)
        degrees, e_within = egonet_features(small_er_graph.adjacency)
        np.testing.assert_allclose(base[:, 0], degrees)
        np.testing.assert_allclose(base[:, 1], e_within)
        assert (base[:, 2] >= 0).all()

    def test_star_boundary_edges(self, star_graph):
        """For the star hub the egonet covers everything: E_out = 0."""
        base = ReFeX().base_features(star_graph.adjacency)
        assert base[0, 2] == pytest.approx(0.0)

    def test_path_boundary_edges(self):
        from repro.graph.graph import Graph

        path = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        base = ReFeX().base_features(path.adjacency)
        # node 0's egonet = {0,1}: one outgoing edge (1->2)
        assert base[0, 2] == pytest.approx(1.0)


class TestRecursion:
    def test_feature_count_grows_per_level(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        base = ReFeX(levels=0).recursive_features(adjacency).shape[1]
        one = ReFeX(levels=1).recursive_features(adjacency).shape[1]
        two = ReFeX(levels=2).recursive_features(adjacency).shape[1]
        assert base == 3
        assert one == 3 + 6
        assert two == 3 + 6 + 12

    def test_isolated_nodes_safe(self):
        adjacency = np.zeros((4, 4))
        features = ReFeX(levels=2).recursive_features(adjacency)
        assert np.isfinite(features).all()


class TestTransform:
    def test_binary_output(self, small_ba_graph):
        embedding = ReFeX(levels=1, n_bins=4).transform(small_ba_graph.adjacency)
        assert set(np.unique(embedding)) <= {0.0, 1.0}
        assert embedding.shape[0] == small_ba_graph.number_of_nodes

    def test_one_hot_rowsum_equals_feature_count(self, small_ba_graph):
        refex = ReFeX(levels=1, n_bins=4)
        embedding = refex.transform(small_ba_graph.adjacency)
        retained = len(refex.retained_)
        np.testing.assert_allclose(embedding.sum(axis=1), retained)

    def test_pruning_drops_duplicate_features(self, small_ba_graph):
        refex = ReFeX(levels=2, n_bins=4)
        total = refex.recursive_features(small_ba_graph.adjacency).shape[1]
        refex.transform(small_ba_graph.adjacency)
        assert len(refex.retained_) <= total

    def test_pruning_keeps_distinct_features(self):
        """Features with genuinely different bin codes all survive."""
        from repro.graph.graph import Graph

        g = Graph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)])
        refex = ReFeX(levels=0, n_bins=3)
        refex.transform(g.adjacency)
        assert len(refex.retained_) >= 1

    def test_errors(self):
        with pytest.raises(ValueError):
            ReFeX(levels=-1)
        with pytest.raises(ValueError):
            ReFeX(prune_tolerance=-2)

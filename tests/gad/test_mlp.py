"""Tests for the MLP classification head."""

import numpy as np
import pytest

from repro.gad.mlp import MLPClassifier


def _moons_like(rng, n=200):
    """Two noisy concentric-ish clusters, not linearly separable."""
    angle = rng.uniform(0, 2 * np.pi, size=n)
    radius = np.where(np.arange(n) < n // 2, 1.0, 3.0)
    x = np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])
    x += rng.normal(0, 0.2, size=x.shape)
    y = (np.arange(n) >= n // 2).astype(int)
    return x, y


class TestMLPClassifier:
    def test_learns_nonlinear_boundary(self):
        rng = np.random.default_rng(0)
        x, y = _moons_like(rng)
        model = MLPClassifier(2, hidden=(16,), epochs=400, rng=0).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_loss_decreases(self):
        rng = np.random.default_rng(1)
        x, y = _moons_like(rng, n=100)
        model = MLPClassifier(2, hidden=(8,), epochs=100, rng=0).fit(x, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_penultimate_shape(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 5))
        y = rng.integers(0, 2, size=30)
        model = MLPClassifier(5, hidden=(12, 6), epochs=20, rng=0).fit(x, y)
        assert model.penultimate(x).shape == (30, 6)

    def test_soft_labels_bounded(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, size=40)
        model = MLPClassifier(3, epochs=30, rng=0).fit(x, y)
        proba = model.predict_proba(x)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_balanced_weights_sum_and_direction(self):
        model = MLPClassifier(2, rng=0)
        labels = np.array([1.0, 0.0, 0.0, 0.0])
        weights = model._sample_weights(labels)
        assert weights[0] > weights[1]  # minority up-weighted
        assert weights.mean() == pytest.approx(1.0)

    def test_uniform_weights_when_disabled(self):
        model = MLPClassifier(2, class_weight=None, rng=0)
        np.testing.assert_allclose(model._sample_weights(np.array([1.0, 0.0])), 1.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            MLPClassifier(2, hidden=())
        with pytest.raises(ValueError):
            MLPClassifier(2, class_weight="bogus")
        model = MLPClassifier(2, rng=0)
        with pytest.raises(ValueError):
            model.fit(np.ones((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            model.fit(np.ones((2, 2)), np.array([0, 2]))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(50, 3))
        y = (x[:, 0] > 0).astype(int)
        a = MLPClassifier(3, epochs=30, rng=11).fit(x, y).predict_proba(x)
        b = MLPClassifier(3, epochs=30, rng=11).fit(x, y).predict_proba(x)
        np.testing.assert_allclose(a, b)

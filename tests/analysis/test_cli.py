"""CLI behaviour: exit codes, formats, baseline workflow."""

from pathlib import Path

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def _run(argv):
    return main([str(a) for a in argv])


class TestExitCodes:
    def test_repo_is_clean(self):
        # THE acceptance criterion: the shipped tree passes its own gate
        assert main([]) == 0

    def test_bad_fixture_fails(self, tmp_path, capsys):
        code = _run(
            [BAD, "--root", BAD, "--no-audit",
             "--baseline", tmp_path / "empty.json"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "[no-densify]" in out
        assert "attacks/densify.py" in out

    def test_good_fixture_passes(self, tmp_path):
        code = _run(
            [GOOD, "--root", GOOD, "--no-audit",
             "--baseline", tmp_path / "empty.json"]
        )
        assert code == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "no-densify",
            "no-unseeded-random",
            "mmap-write-safety",
            "checkpoint-json-purity",
            "spec-picklability",
        ):
            assert rule_id in out


class TestGithubFormat:
    def test_error_annotations_emitted(self, tmp_path, capsys):
        code = _run(
            [BAD, "--root", BAD, "--no-audit", "--format", "github",
             "--baseline", tmp_path / "empty.json"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=attacks/densify.py" in out
        assert "title=repro.analysis no-densify" in out


class TestBaselineWorkflow:
    def test_write_then_gate_green(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        wrote = _run(
            [BAD, "--root", BAD, "--no-audit",
             "--baseline", baseline, "--write-baseline"]
        )
        assert wrote == 0
        assert baseline.exists()
        capsys.readouterr()
        gated = _run([BAD, "--root", BAD, "--no-audit", "--baseline", baseline])
        assert gated == 0
        err = capsys.readouterr().err
        assert "0 new finding(s)" in err
        assert "baselined" in err

    def test_new_finding_beyond_baseline_still_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        _run(
            [BAD, "--root", BAD, "--no-audit",
             "--baseline", baseline, "--write-baseline"]
        )
        extra_root = tmp_path / "tree"
        extra = extra_root / "attacks" / "fresh.py"
        extra.parent.mkdir(parents=True)
        extra.write_text("def f(csr):\n    return csr.toarray()\n")
        code = _run(
            [extra_root, "--root", extra_root, "--no-audit",
             "--baseline", baseline]
        )
        assert code == 1

"""Reflection audits: engine API parity and parity-test coverage."""

from repro.analysis import (
    audit_block_parity_coverage,
    audit_engine_api,
    audit_kernel_parity_coverage,
    audit_parity_coverage,
    run_audits,
)


class TestEngineApiAudit:
    def test_live_engines_expose_identical_apis(self):
        assert audit_engine_api() == []


class TestParityCoverageAudit:
    def test_live_test_suite_covers_every_shared_engine_attack(self):
        assert audit_parity_coverage() == []

    def test_empty_test_set_reports_every_attack(self):
        from repro.attacks.campaign import SHARED_ENGINE_ATTACKS

        findings = audit_parity_coverage(test_paths=[])
        assert len(findings) == len(SHARED_ENGINE_ATTACKS)
        assert all(f.rule == "parity-test-coverage" for f in findings)
        named = " ".join(f.message for f in findings)
        for attack_name in SHARED_ENGINE_ATTACKS:
            assert attack_name in named

    def test_partial_coverage_reports_only_the_missing(self, tmp_path):
        partial = tmp_path / "test_partial.py"
        partial.write_text(
            "class TestBinarizedBackendParity:\n"
            "    def test_it(self):\n"
            "        BinarizedAttack()\n"
        )
        findings = audit_parity_coverage(test_paths=[partial])
        missing = {f.message.split("'")[1] for f in findings}
        assert "binarizedattack" not in missing
        assert "random" in missing

    def test_class_without_parity_in_name_does_not_count(self, tmp_path):
        module = tmp_path / "test_other.py"
        module.write_text(
            "class TestSomethingElse:\n"
            "    def test_it(self):\n"
            "        BinarizedAttack()\n"
        )
        findings = audit_parity_coverage(test_paths=[module])
        named = " ".join(f.message for f in findings)
        assert "binarizedattack" in named


class TestKernelParityCoverageAudit:
    def test_live_test_suite_covers_every_registry_kernel(self):
        assert audit_kernel_parity_coverage() == []

    def test_empty_test_set_reports_every_kernel(self):
        from repro.kernels import KERNEL_REGISTRY

        findings = audit_kernel_parity_coverage(test_paths=[])
        assert len(findings) == len(KERNEL_REGISTRY)
        assert all(f.rule == "kernel-parity-coverage" for f in findings)
        named = " ".join(f.message for f in findings)
        for kernel_name in KERNEL_REGISTRY:
            assert kernel_name in named

    def test_partial_coverage_reports_only_the_missing(self, tmp_path):
        partial = tmp_path / "test_partial.py"
        partial.write_text(
            "class TestToggleBatchParity:\n"
            '    KERNEL = "toggle_batch"\n'
            "    def test_it(self):\n"
            "        pass\n"
        )
        findings = audit_kernel_parity_coverage(test_paths=[partial])
        missing = {f.message.split("'")[1] for f in findings}
        assert "toggle_batch" not in missing
        assert "scatter_gradient" in missing

    def test_class_without_parity_in_name_does_not_count(self, tmp_path):
        module = tmp_path / "test_other.py"
        module.write_text(
            "class TestToggleBatchSpeed:\n"
            '    KERNEL = "toggle_batch"\n'
            "    def test_it(self):\n"
            "        pass\n"
        )
        findings = audit_kernel_parity_coverage(test_paths=[module])
        named = " ".join(f.message for f in findings)
        assert "toggle_batch" in named


class TestBlockParityCoverageAudit:
    def test_live_test_suite_covers_every_shared_engine_attack(self):
        assert audit_block_parity_coverage() == []

    def test_empty_test_set_reports_every_attack(self):
        from repro.attacks.campaign import SHARED_ENGINE_ATTACKS

        findings = audit_block_parity_coverage(test_paths=[])
        assert len(findings) == len(SHARED_ENGINE_ATTACKS)
        assert all(f.rule == "block-parity-coverage" for f in findings)
        named = " ".join(f.message for f in findings)
        for attack_name in SHARED_ENGINE_ATTACKS:
            assert attack_name in named

    def test_plain_parity_class_does_not_count(self, tmp_path):
        """Backend-parity coverage must not satisfy the block gate."""
        module = tmp_path / "test_other.py"
        module.write_text(
            "class TestBinarizedBackendParity:\n"
            "    def test_it(self):\n"
            "        BinarizedAttack()\n"
        )
        findings = audit_block_parity_coverage(test_paths=[module])
        named = " ".join(f.message for f in findings)
        assert "binarizedattack" in named

    def test_block_parity_class_counts(self, tmp_path):
        partial = tmp_path / "test_partial.py"
        partial.write_text(
            "class TestBlockDegenerateParity:\n"
            "    def test_it(self):\n"
            "        BinarizedAttack()\n"
        )
        findings = audit_block_parity_coverage(test_paths=[partial])
        missing = {f.message.split("'")[1] for f in findings}
        assert "binarizedattack" not in missing
        assert "random" in missing


def test_run_audits_is_clean_on_this_repo():
    assert run_audits() == []

"""Fixture: every call here must fire ``no-unseeded-random``."""

import random

import numpy as np


def unseeded_everywhere(n):
    legacy = np.random.rand(n)
    np.random.seed(0)
    shuffled = np.random.permutation(n)
    rng = np.random.default_rng()
    stdlib = random.random()
    return legacy, shuffled, rng, stdlib

"""Fixture: every statement here must fire ``no-densify``."""

import numpy as np
from scipy import sparse


def densify_everywhere(graph):
    csr = sparse.csr_matrix(graph)
    dense_one = csr.toarray()
    dense_two = csr.todense()
    dense_three = np.asarray(csr)
    dense_four = np.array(graph.adjacency_csr())
    return dense_one, dense_two, dense_three, dense_four

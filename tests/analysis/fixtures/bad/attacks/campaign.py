"""Fixture: the ``to_dict`` below must fire ``checkpoint-json-purity``."""


class Outcome:
    metadata: dict
    extras: "list[str]"
    score: float

    def to_dict(self) -> dict:
        return {
            "score": float(self.score),
            "metadata": self.metadata,
            "extras": self.extras,
            "callback": lambda: 1,
        }

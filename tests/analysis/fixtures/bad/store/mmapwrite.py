"""Fixture: every statement marked below must fire ``mmap-write-safety``."""

import numpy as np


def write_through_mmaps(store, features, path, n):
    csr = store.adjacency_csr()
    csr.data[0] = 2.0
    csr.sort_indices()
    alias = csr
    alias.indices[0] = 1
    base, delta = features.csr_with_delta()
    base.eliminate_zeros()
    mapped = np.memmap(path, dtype=np.float64, mode="r", shape=(n,))
    mapped[0] = 1.0
    mapped += 1.0
    return csr, delta, mapped

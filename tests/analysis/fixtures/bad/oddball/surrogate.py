"""Fixture: the spec payloads below must fire ``spec-picklability``."""


class Engine:
    def _spec_payload(self) -> tuple:
        return (self.graph, {edge for edge in self.edges})

    def engine_spec(self, spec_cls):
        return spec_cls(payload=(lambda: self.graph,))

"""Fixture: nothing here may fire ``mmap-write-safety``."""

import numpy as np


def copy_before_mutating(store, features, path, n):
    csr = store.adjacency_csr()
    scratch = csr.copy()
    scratch.data[0] = 2.0
    scratch.sort_indices()
    writable = np.memmap(path, dtype=np.float64, mode="w+", shape=(n,))
    writable[0] = 1.0
    base, delta = features.csr_with_delta()
    keys = np.repeat(np.arange(n, dtype=np.intp), np.diff(base.indptr))
    rebound = csr
    rebound = scratch  # rebinding drops the taint
    rebound.data[0] = 3.0
    return scratch, writable, keys, delta, rebound

"""Fixture: the ``to_dict`` below must NOT fire ``checkpoint-json-purity``."""


def _jsonable_mapping(mapping):
    return {str(key): value for key, value in mapping.items()}


class Outcome:
    metadata: dict
    label: str
    score: float

    def to_dict(self) -> dict:
        return {
            "score": float(self.score),
            "label": self.label,
            "metadata": _jsonable_mapping(self.metadata),
            "flips": [[0, 1]],
        }

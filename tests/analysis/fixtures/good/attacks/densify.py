"""Fixture: nothing here may fire ``no-densify``."""

import numpy as np
from scipy import sparse


def stay_sparse(graph, adjacency):
    csr = sparse.csr_matrix(graph)
    row_sums = np.asarray(csr.sum(axis=1)).ravel()
    buffer = np.asarray(csr.data, dtype=np.float64)
    dense_input = np.asarray(adjacency, dtype=np.float64)
    # repro: allow-densify(fixture - a reviewed, justified densification)
    reference = csr.toarray()
    return row_sums, buffer, dense_input, reference

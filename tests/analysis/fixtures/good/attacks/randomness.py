"""Fixture: nothing here may fire ``no-unseeded-random``."""

import numpy as np


def seeded_everywhere(n, seed):
    rng = np.random.default_rng(seed)
    explicit = np.random.default_rng(12345)
    sequence = np.random.SeedSequence(seed)
    generator = np.random.Generator(np.random.PCG64(seed))
    draws = rng.random(n)
    picks = generator.integers(0, n, size=3)
    return explicit, sequence, draws, picks

"""Fixture: the spec payloads below must NOT fire ``spec-picklability``."""

import numpy as np


class Engine:
    def _spec_payload(self) -> tuple:
        csr = self.adjacency
        return (
            np.asarray(csr.data, dtype=np.float64),
            np.asarray(csr.indices),
            csr.shape,
            self._matrix.copy(),
        )

    def engine_spec(self, spec_cls, store):
        return spec_cls(payload=(str(store.path), float(self.floor)))

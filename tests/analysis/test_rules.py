"""Golden-file tests: each lint rule against fixture trees that must fire
(``fixtures/bad``) and must stay silent (``fixtures/good``)."""

from collections import Counter
from pathlib import Path

import repro.analysis  # noqa: F401 — registers the rules
from repro.analysis import RULE_REGISTRY, analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def _report(root):
    return analyze_paths([root], root=root)


class TestBadFixturesFire:
    def test_expected_rule_counts(self):
        report = _report(BAD)
        by_rule = Counter(f.rule for f in report.findings)
        assert by_rule["no-densify"] == 4
        assert by_rule["no-unseeded-random"] == 5
        assert by_rule["mmap-write-safety"] == 6
        assert by_rule["checkpoint-json-purity"] == 3
        assert by_rule["spec-picklability"] == 2
        assert not report.errors

    def test_densify_findings_point_at_the_right_lines(self):
        report = _report(BAD)
        densify = [f for f in report.findings if f.rule == "no-densify"]
        assert all(f.path == "attacks/densify.py" for f in densify)
        assert sorted(f.line for f in densify) == [9, 10, 11, 12]
        assert any(".toarray()" in f.snippet for f in densify)

    def test_unseeded_random_messages_name_the_call(self):
        report = _report(BAD)
        random_findings = [
            f for f in report.findings if f.rule == "no-unseeded-random"
        ]
        messages = " ".join(f.message for f in random_findings)
        assert "np.random.rand()" in messages
        assert "np.random.default_rng()" in messages
        assert "stdlib random" in messages

    def test_mmap_findings_cover_aliases_and_unpacks(self):
        report = _report(BAD)
        mmap_findings = [
            f for f in report.findings if f.rule == "mmap-write-safety"
        ]
        snippets = " ".join(f.snippet for f in mmap_findings)
        assert "alias.indices[0]" in snippets  # alias propagation
        assert "base.eliminate_zeros()" in snippets  # csr_with_delta unpack
        assert "mapped += 1.0" in snippets  # read-mode memmap augassign

    def test_checkpoint_purity_flags_bare_containers_and_lambdas(self):
        report = _report(BAD)
        purity = [
            f for f in report.findings if f.rule == "checkpoint-json-purity"
        ]
        messages = " ".join(f.message for f in purity)
        assert "self.metadata" in messages
        assert "self.extras" in messages
        assert "Lambda" in messages

    def test_spec_picklability_flags_lambda_and_set(self):
        report = _report(BAD)
        spec = [f for f in report.findings if f.rule == "spec-picklability"]
        kinds = " ".join(f.message for f in spec)
        assert "Lambda" in kinds
        assert "SetComp" in kinds


class TestGoodFixturesStaySilent:
    def test_no_findings_at_all(self):
        report = _report(GOOD)
        assert report.findings == []
        assert report.errors == []

    def test_pragma_in_good_fixture_counts_as_used(self):
        # the good densify fixture has a real .toarray() excused by pragma;
        # if the pragma were unused the audit would have flagged it above
        report = _report(GOOD)
        assert all(f.rule != "unused-pragma" for f in report.findings)


class TestScoping:
    def test_rules_ignore_files_outside_their_scope(self, tmp_path):
        driver = tmp_path / "experiments" / "driver.py"
        driver.parent.mkdir()
        driver.write_text(
            "def plot(matrix):\n"
            "    import numpy as np\n"
            "    dense = matrix.toarray()\n"
            "    noise = np.random.rand(3)\n"
            "    return dense, noise\n"
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert report.findings == []

    def test_every_rule_declares_scope_and_description(self):
        for rule_id, rule in RULE_REGISTRY.items():
            assert rule.id == rule_id
            assert rule.description
            assert rule.scope and rule.scope != ("*",)

    def test_json_purity_scope_covers_the_scheduler(self):
        # lease files, queue manifests and done markers must stay JSON-pure
        # (inspectable with cat, diffable across runs) just like checkpoints
        assert "attacks/scheduler.py" in RULE_REGISTRY[
            "checkpoint-json-purity"
        ].scope

    def test_json_purity_scope_covers_telemetry(self):
        # trace sinks are merged across processes and golden-compared, so
        # their records must stay JSON-pure exactly like checkpoint lines
        assert "telemetry/*.py" in RULE_REGISTRY[
            "checkpoint-json-purity"
        ].scope

    def test_unparseable_file_reported_not_crashed(self, tmp_path):
        broken = tmp_path / "attacks" / "broken.py"
        broken.parent.mkdir()
        broken.write_text("def oops(:\n")
        report = analyze_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in report.errors] == ["parse-error"]
        assert not report.ok

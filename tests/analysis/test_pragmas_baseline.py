"""Pragma parsing/auditing and baseline round-trip behaviour."""

from pathlib import Path

import pytest

import repro.analysis  # noqa: F401 — registers the rules
from repro.analysis import Baseline, Finding, analyze_paths, collect_pragmas


def _write_module(root: Path, source: str, name: str = "mod.py") -> Path:
    module = root / "attacks" / name
    module.parent.mkdir(exist_ok=True)
    module.write_text(source)
    return module


class TestPragmaParsing:
    def test_trailing_pragma_covers_its_own_line(self):
        pragmas = collect_pragmas(
            "x = 1\n"
            "y = csr.toarray()  # repro: allow-densify(reviewed)\n"
        )
        assert list(pragmas) == [2]
        assert pragmas[2][0].allow == "densify"
        assert pragmas[2][0].reason == "reviewed"

    def test_comment_only_line_covers_the_next_line(self):
        pragmas = collect_pragmas(
            "# repro: allow-densify(line too long for a trailing comment)\n"
            "y = csr.toarray()\n"
        )
        assert list(pragmas) == [2]

    def test_pragma_inside_string_literal_is_ignored(self):
        pragmas = collect_pragmas(
            '"""Example::\n'
            "\n"
            "    y = csr.toarray()  # repro: allow-densify(example)\n"
            '"""\n'
            "y = 1\n"
        )
        assert pragmas == {}

    def test_allow_matches_rule_with_and_without_no_prefix(self):
        pragmas = collect_pragmas("x = 1  # repro: allow-densify(ok)\n")
        pragma = pragmas[1][0]
        assert pragma.suppresses("no-densify")
        assert pragma.suppresses("densify")
        assert not pragma.suppresses("mmap-write-safety")


class TestPragmaSuppression:
    def test_pragma_suppresses_the_finding(self, tmp_path):
        _write_module(
            tmp_path,
            "def f(csr):\n"
            "    # repro: allow-densify(small-graph helper)\n"
            "    return csr.toarray()\n",
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert report.findings == []

    def test_pragma_without_reason_is_malformed_and_does_not_suppress(
        self, tmp_path
    ):
        _write_module(
            tmp_path,
            "def f(csr):\n"
            "    return csr.toarray()  # repro: allow-densify()\n",
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["malformed-pragma", "no-densify"]

    def test_pragma_naming_unknown_rule_is_malformed(self, tmp_path):
        _write_module(
            tmp_path,
            "x = 1  # repro: allow-no-such-rule(typo)\n",
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["malformed-pragma"]
        assert "no known rule" in report.findings[0].message

    def test_unused_pragma_is_reported(self, tmp_path):
        _write_module(
            tmp_path,
            "def f(x):\n"
            "    # repro: allow-densify(the densify below was removed)\n"
            "    return x\n",
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["unused-pragma"]

    def test_pragma_outside_rule_scope_is_reported(self, tmp_path):
        module = tmp_path / "experiments" / "driver.py"
        module.parent.mkdir()
        module.write_text("x = 1  # repro: allow-densify(not even in scope)\n")
        report = analyze_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["unused-pragma"]
        assert "outside that rule's scope" in report.findings[0].message


class TestBaseline:
    def _finding(self, snippet="y = csr.toarray()", line=3):
        return Finding(
            rule="no-densify",
            path="attacks/mod.py",
            line=line,
            message="densified",
            snippet=snippet,
        )

    def test_fingerprint_is_line_number_free(self):
        early, late = self._finding(line=3), self._finding(line=300)
        assert early.fingerprint() == late.fingerprint()
        changed = self._finding(snippet="y = other.toarray()")
        assert changed.fingerprint() != early.fingerprint()

    def test_round_trip_through_disk(self, tmp_path):
        findings = [self._finding(), self._finding(), self._finding(snippet="z")]
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.counts == baseline.counts
        assert len(loaded) == 3

    def test_filter_absorbs_up_to_the_recorded_count(self):
        baseline = Baseline.from_findings([self._finding()])
        new, absorbed = baseline.filter([self._finding(), self._finding()])
        assert len(absorbed) == 1
        assert len(new) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "missing.json")
        assert len(baseline) == 0
        assert Baseline.load(None).counts == {}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_baselined_finding_keeps_gate_green(self, tmp_path):
        _write_module(tmp_path, "def f(csr):\n    return csr.toarray()\n")
        report = analyze_paths([tmp_path], root=tmp_path)
        assert len(report.findings) == 1
        baseline = Baseline.from_findings(report.findings)
        again = analyze_paths([tmp_path], root=tmp_path, baseline=baseline)
        assert again.findings == []
        assert len(again.baselined) == 1
        assert again.ok

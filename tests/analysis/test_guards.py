"""Runtime sanitizer guards: densify tripwires and mmap write detection."""

import numpy as np
import pytest
from scipy import sparse

from repro.analysis import (
    DensifyError,
    MmapWriteError,
    assert_readonly_mmap,
    forbid_densify,
)
from repro.attacks import BinarizedAttack
from repro.graph.generators import barabasi_albert
from repro.graph.incremental import IncrementalEgonetFeatures


def _csr(n=6):
    graph = barabasi_albert(n, 2, rng=3)
    return sparse.csr_matrix(graph.adjacency)


class TestForbidDensify:
    def test_toarray_trips(self):
        csr = _csr()
        with forbid_densify():
            with pytest.raises(DensifyError, match="toarray"):
                csr.toarray()

    def test_todense_trips(self):
        csr = _csr()
        with forbid_densify(context="unit-test"):
            with pytest.raises(DensifyError, match="unit-test"):
                csr.todense()

    def test_other_formats_trip_too(self):
        coo = _csr().tocoo()
        lil = _csr().tolil()
        with forbid_densify():
            with pytest.raises(DensifyError):
                coo.toarray()
            with pytest.raises(DensifyError):
                lil.toarray()

    def test_methods_restored_after_exit(self):
        csr = _csr()
        with forbid_densify():
            pass
        dense = csr.toarray()
        assert dense.shape == csr.shape

    def test_methods_restored_after_exception(self):
        csr = _csr()
        with pytest.raises(RuntimeError, match="boom"):
            with forbid_densify():
                raise RuntimeError("boom")
        assert csr.toarray().shape == csr.shape

    def test_sparse_attack_run_passes_under_guard(self):
        """The sparse backend genuinely never densifies — and stays
        bit-identical to the same run without the guard."""
        graph = barabasi_albert(40, 3, rng=11)
        targets = [0, 1, 2]
        unguarded = BinarizedAttack(iterations=10, backend="sparse").attack(
            graph, targets, budget=3
        )
        with forbid_densify(context="parity"):
            guarded = BinarizedAttack(iterations=10, backend="sparse").attack(
                graph, targets, budget=3
            )
        assert guarded.flips_by_budget == unguarded.flips_by_budget
        assert guarded.surrogate_by_budget == unguarded.surrogate_by_budget

    def test_injected_densify_in_sparse_run_is_caught(self, monkeypatch):
        """The tripwire catches a .toarray() smuggled into the flip path."""
        original_flip = IncrementalEgonetFeatures.flip

        def leaky_flip(self, u, v):
            self.to_dense()  # the injected densification
            return original_flip(self, u, v)

        monkeypatch.setattr(IncrementalEgonetFeatures, "flip", leaky_flip)
        graph = barabasi_albert(40, 3, rng=11)
        with forbid_densify():
            with pytest.raises(DensifyError):
                BinarizedAttack(iterations=10, backend="sparse").attack(
                    graph, [0, 1, 2], budget=3
                )


class TestAssertReadonlyMmap:
    def test_unchanged_arrays_pass(self):
        array = np.arange(8, dtype=np.float64)
        with assert_readonly_mmap(array):
            _ = array.sum()

    def test_mutation_is_detected(self):
        array = np.arange(8, dtype=np.float64)
        with pytest.raises(MmapWriteError, match="changed"):
            with assert_readonly_mmap(array):
                array[0] = 99.0

    def test_sparse_matrix_buffers_are_guarded(self):
        csr = _csr()
        with pytest.raises(MmapWriteError):
            with assert_readonly_mmap(csr):
                csr.data[0] = 2.0

    def test_adjacency_csr_provider_is_guarded(self):
        csr = _csr()
        features = IncrementalEgonetFeatures(csr)
        with assert_readonly_mmap(features):
            _ = features.features()

    def test_writable_memmap_rejected_on_entry(self, tmp_path):
        path = tmp_path / "buffer.bin"
        writable = np.memmap(path, dtype=np.float64, mode="w+", shape=(4,))
        with pytest.raises(MmapWriteError, match="writable"):
            with assert_readonly_mmap(writable, context="store"):
                pass

    def test_readonly_memmap_passes(self, tmp_path):
        path = tmp_path / "buffer.bin"
        np.arange(4, dtype=np.float64).tofile(path)
        mapped = np.memmap(path, dtype=np.float64, mode="r", shape=(4,))
        with assert_readonly_mmap(mapped):
            _ = mapped.sum()

    def test_unsupported_source_raises_typeerror(self):
        with pytest.raises(TypeError, match="cannot guard"):
            with assert_readonly_mmap(object()):
                pass

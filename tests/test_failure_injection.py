"""Failure-injection tests: malformed inputs and pathological graphs.

Every entry point should fail loudly (clear exception) or degrade
gracefully (documented fallback), never crash with an internal error or
return silently-wrong numbers.
"""

import numpy as np
import pytest

from repro.attacks import BinarizedAttack, ContinuousA, GradMaxSearch, RandomAttack
from repro.gad.pipeline import TransferAttackPipeline
from repro.graph.graph import Graph
from repro.oddball.detector import OddBall
from repro.oddball.scores import anomaly_scores


def tiny_attacks():
    return [
        GradMaxSearch(),
        ContinuousA(max_iter=10),
        BinarizedAttack(iterations=10, lambdas=(0.2,)),
        RandomAttack(rng=0),
    ]


class TestMalformedGraphInputs:
    @pytest.mark.parametrize("attack", tiny_attacks(), ids=lambda a: a.name)
    def test_nonsymmetric_adjacency_rejected(self, attack):
        bad = np.zeros((5, 5))
        bad[0, 1] = 1.0
        with pytest.raises(ValueError):
            attack.attack(bad, [0], budget=1)

    @pytest.mark.parametrize("attack", tiny_attacks(), ids=lambda a: a.name)
    def test_weighted_adjacency_rejected(self, attack):
        bad = np.full((4, 4), 0.5)
        np.fill_diagonal(bad, 0.0)
        with pytest.raises(ValueError):
            attack.attack(bad, [0], budget=1)

    def test_detector_rejects_all_isolated(self):
        # OLS needs >= 2 nodes with N >= 1
        with pytest.raises(ValueError):
            OddBall().analyze(Graph.empty(5))


class TestPathologicalButValidGraphs:
    def test_scores_on_two_node_graph(self):
        g = Graph.from_edges(2, [(0, 1)])
        scores = anomaly_scores(g.adjacency)
        assert np.isfinite(scores).all()

    def test_regular_graph_degenerate_regression(self):
        """All nodes identical: ridge keeps OLS finite, scores ~uniform."""
        g = Graph.complete(8)
        scores = anomaly_scores(g.adjacency)
        assert np.isfinite(scores).all()
        assert scores.std() < 1e-6

    @pytest.mark.parametrize("attack", tiny_attacks(), ids=lambda a: a.name)
    def test_attack_on_near_empty_graph(self, attack):
        """One edge only: deletions are blocked by the singleton rule, the
        attack must still terminate within budget."""
        g = Graph.from_edges(4, [(0, 1)])
        result = attack.attack(g, [0], budget=3)
        assert len(result.flips()) <= 3
        # node 1 must not be isolated unless it already was
        poisoned = result.poisoned()
        assert poisoned.sum(axis=1)[1] >= 1 or poisoned.sum() == 0

    def test_attack_with_budget_exceeding_possible_flips(self):
        g = Graph.complete(4)  # only deletions possible, some blocked
        result = GradMaxSearch().attack(g, [0], budget=100)
        assert len(result.flips()) <= 100
        assert np.isfinite(anomaly_scores(result.poisoned())).all()

    def test_disconnected_graph_supported(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        targets = [1]
        result = BinarizedAttack(iterations=10, lambdas=(0.2,)).attack(g, targets, 2)
        assert np.isfinite(anomaly_scores(result.poisoned())).all()


class TestPipelineFailures:
    def test_pipeline_errors_when_no_targets(self):
        """A graph whose victim flags no anomalies raises a clear error."""
        pipeline = TransferAttackPipeline(
            system="refex", seed=0, anomaly_fraction=0.02, mlp_kwargs={"epochs": 10}
        )
        # A regular-ish ring lattice has no anomalous egonets to flag as
        # test-set positives under a tiny anomaly fraction — depending on
        # the split the pipeline either runs or raises the documented error.
        from repro.graph.generators import ring_lattice

        graph = ring_lattice(40, 3)
        try:
            pipeline.run(graph, RandomAttack(rng=0), budgets=[1], max_targets=3)
        except (RuntimeError, ValueError) as error:
            assert "anomal" in str(error).lower() or "class" in str(error).lower()

    def test_empty_budget_list_gets_baseline(self, small_ba_graph):
        pipeline = TransferAttackPipeline(
            system="refex", seed=0, mlp_kwargs={"epochs": 10}
        )
        outcome = pipeline.run(
            small_ba_graph, RandomAttack(rng=0), budgets=[], max_targets=3
        )
        assert [r.budget for r in outcome.rows] == [0]

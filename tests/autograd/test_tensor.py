"""Unit tests for the Tensor core: arithmetic, broadcasting, backward."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, as_tensor, grad_enabled, no_grad, unbroadcast


class TestConstruction:
    def test_data_is_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_leaf_flags(self):
        t = Tensor(1.0, requires_grad=True)
        assert t.is_leaf and t.requires_grad and t.grad is None

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_as_tensor_idempotent(self):
        t = Tensor(1.0)
        assert as_tensor(t) is t
        assert isinstance(as_tensor(2.0), Tensor)


class TestArithmetic:
    def test_add_and_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_radd_scalar(self):
        a = Tensor([1.0], requires_grad=True)
        (2.0 + a).backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [1.0])

    def test_sub_grads(self):
        a = Tensor(5.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        (a - b).backward()
        assert a.grad == 1.0 and b.grad == -1.0

    def test_rsub(self):
        a = Tensor(2.0, requires_grad=True)
        (10.0 - a).backward()
        assert a.grad == -1.0

    def test_mul_grads(self):
        a = Tensor(3.0, requires_grad=True)
        b = Tensor(4.0, requires_grad=True)
        (a * b).backward()
        assert a.grad == 4.0 and b.grad == 3.0

    def test_div_grads(self):
        a = Tensor(6.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        (a / b).backward()
        assert a.grad == pytest.approx(1 / 3)
        assert b.grad == pytest.approx(-6 / 9)

    def test_rtruediv(self):
        a = Tensor(4.0, requires_grad=True)
        (8.0 / a).backward()
        assert a.grad == pytest.approx(-8.0 / 16.0)

    def test_neg(self):
        a = Tensor(2.0, requires_grad=True)
        (-a).backward()
        assert a.grad == -1.0

    def test_pow_scalar(self):
        a = Tensor(3.0, requires_grad=True)
        (a**2).backward()
        assert a.grad == pytest.approx(6.0)

    def test_pow_tensor_exponent(self):
        a = Tensor(2.0, requires_grad=True)
        e = Tensor(3.0, requires_grad=True)
        (a**e).backward()
        assert a.grad == pytest.approx(3 * 2**2)
        assert e.grad == pytest.approx(2**3 * np.log(2.0))

    def test_value_correctness(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        np.testing.assert_allclose((a * b + a / b - b).data, [3 + 1 / 3 - 3, 8 + 0.5 - 4])


class TestBroadcasting:
    def test_unbroadcast_leading_axis(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(grad, (3,)), [4.0, 4.0, 4.0])

    def test_unbroadcast_kept_axis(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(grad, (1, 3)), [[4.0, 4.0, 4.0]])

    def test_unbroadcast_scalar(self):
        assert unbroadcast(np.ones((2, 2)), ()) == 4.0

    def test_bias_add_grad(self):
        x = Tensor(np.ones((5, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [5.0, 5.0, 5.0])
        np.testing.assert_allclose(x.grad, np.ones((5, 3)))

    def test_scalar_times_matrix(self):
        s = Tensor(2.0, requires_grad=True)
        m = Tensor(np.arange(6.0).reshape(2, 3))
        (s * m).sum().backward()
        assert s.grad == pytest.approx(15.0)


class TestMatmul:
    def test_matrix_matrix(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 2)))

    def test_matrix_vector(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        v = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(a.grad, np.outer(np.ones(2), v.data))
        np.testing.assert_allclose(v.grad, a.data.T @ np.ones(2))

    def test_vector_vector(self):
        u = Tensor([1.0, 2.0], requires_grad=True)
        v = Tensor([3.0, 4.0], requires_grad=True)
        (u @ v).backward()
        np.testing.assert_allclose(u.grad, v.data)
        np.testing.assert_allclose(v.grad, u.data)

    def test_vector_matrix(self):
        u = Tensor([1.0, 2.0], requires_grad=True)
        m = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]), requires_grad=True)
        (u @ m).sum().backward()
        np.testing.assert_allclose(u.grad, [1.0, 1.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.sum(axis=0, keepdims=True)
        assert y.shape == (1, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_max_grad_single(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_grad_ties_split(self):
        x = Tensor([5.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])

    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_flatten(self):
        x = Tensor(np.ones((2, 3)))
        assert x.flatten().shape == (6,)

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_diagonal_grad(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        x.diagonal().sum().backward()
        np.testing.assert_allclose(x.grad, np.eye(3))


class TestElementwise:
    @pytest.mark.parametrize(
        "method,value,expected_grad",
        [
            ("exp", 1.0, np.e),
            ("log", 2.0, 0.5),
            ("sqrt", 4.0, 0.25),
            ("abs", -3.0, -1.0),
            ("tanh", 0.0, 1.0),
        ],
    )
    def test_unary_grads(self, method, value, expected_grad):
        x = Tensor(value, requires_grad=True)
        getattr(x, method)().backward()
        assert x.grad == pytest.approx(expected_grad)

    def test_log1p(self):
        x = Tensor(0.0, requires_grad=True)
        x.log1p().backward()
        assert x.grad == pytest.approx(1.0)

    def test_sigmoid_stable_large_negative(self):
        x = Tensor(-800.0)
        assert np.isfinite(x.sigmoid().data)

    def test_sigmoid_grad(self):
        x = Tensor(0.0, requires_grad=True)
        x.sigmoid().backward()
        assert x.grad == pytest.approx(0.25)

    def test_relu(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clamp_grad_gates(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clamp(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(x.clamp(0.0, 1.0).data, [0.0, 0.5, 1.0])


class TestBackwardMachinery:
    def test_diamond_graph_accumulates(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * 3.0
        z = y + y  # two paths through y
        z.backward()
        assert x.grad == pytest.approx(6.0)

    def test_reused_leaf_accumulates(self):
        x = Tensor(3.0, requires_grad=True)
        (x * x).backward()
        assert x.grad == pytest.approx(6.0)

    def test_backward_twice_accumulates_into_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        assert x.grad == pytest.approx(4.0)

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()
        (x * 2).backward(np.ones(2))
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data == x.data

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert grad_enabled()

    def test_constants_do_not_join_graph(self):
        x = Tensor(1.0)
        y = x + 1.0
        assert not y.requires_grad and y.is_leaf

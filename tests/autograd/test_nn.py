"""Tests for the nn layer library."""

import numpy as np
import pytest

from repro.autograd import nn
from repro.autograd.tensor import Tensor


class TestModule:
    def test_parameter_discovery_nested(self, rng):
        class Inner(nn.Module):
            def __init__(self):
                self.linear = nn.Linear(2, 3, rng=rng)

        class Outer(nn.Module):
            def __init__(self):
                self.inner = Inner()
                self.extra = nn.Parameter(np.zeros(4))
                self.stack = [nn.Linear(3, 1, rng=rng)]

        model = Outer()
        params = list(model.parameters())
        # inner (W,b) + extra + stack linear (W,b)
        assert len(params) == 5

    def test_parameters_deduplicated(self, rng):
        shared = nn.Parameter(np.zeros(2))

        class Tied(nn.Module):
            def __init__(self):
                self.a = shared
                self.b = shared

        assert len(list(Tied().parameters())) == 1

    def test_zero_grad(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.ReLU())
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_num_parameters(self, rng):
        layer = nn.Linear(3, 4, rng=rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        snapshot = layer.state_dict()
        original = layer.weight.data.copy()
        layer.weight.data += 1.0
        layer.load_state_dict(snapshot)
        np.testing.assert_allclose(layer.weight.data, original)

    def test_load_state_dict_shape_mismatch(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        bad = {f"param_{i}": np.zeros((5, 5)) for i in range(2)}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(3, 5, rng=rng)
        out = layer(Tensor(np.ones((7, 3))))
        assert out.shape == (7, 5)

    def test_no_bias(self, rng):
        layer = nn.Linear(3, 5, rng=rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_affine_correct(self, rng):
        layer = nn.Linear(2, 1, rng=rng)
        layer.weight.data = np.array([[2.0], [3.0]])
        layer.bias.data = np.array([1.0])
        out = layer(Tensor(np.array([[1.0, 1.0]])))
        assert out.data[0, 0] == pytest.approx(6.0)

    def test_repr(self, rng):
        assert "Linear(2, 3" in repr(nn.Linear(2, 3, rng=rng))


class TestSequential:
    def test_composition(self, rng):
        model = nn.Sequential(nn.Linear(2, 4, rng=rng), nn.ReLU(), nn.Linear(4, 1, rng=rng))
        assert len(model) == 3
        assert model(Tensor(np.ones((5, 2)))).shape == (5, 1)
        assert isinstance(model[1], nn.ReLU)

    def test_activations(self):
        x = Tensor(np.array([[-1.0, 1.0]]))
        np.testing.assert_allclose(nn.ReLU()(x).data, [[0.0, 1.0]])
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh([[-1.0, 1.0]]))


class TestGraphConvolution:
    def test_shapes(self, rng, small_er_graph):
        adjacency = small_er_graph.adjacency
        propagation = Tensor(nn.normalized_adjacency(adjacency))
        features = Tensor(np.ones((adjacency.shape[0], 4)))
        layer = nn.GraphConvolution(4, 8, rng=rng)
        assert layer(propagation, features).shape == (adjacency.shape[0], 8)

    def test_normalized_adjacency_symmetric_with_self_loops(self, small_er_graph):
        normalized = nn.normalized_adjacency(small_er_graph.adjacency)
        np.testing.assert_allclose(normalized, normalized.T)
        assert (np.diagonal(normalized) > 0).all()

    def test_normalized_adjacency_spectrum_bounded(self, small_er_graph):
        normalized = nn.normalized_adjacency(small_er_graph.adjacency)
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_isolated_node_safe(self):
        adjacency = np.zeros((3, 3))
        normalized = nn.normalized_adjacency(adjacency)
        assert np.isfinite(normalized).all()
